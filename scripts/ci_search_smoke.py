"""CI policy-search smoke.

Drives ``tracer search`` end-to-end the way CI gates it:

1. synthesise a write-heavy cello-style trace (the paper's RMW-bound
   workload) and sweep a 288-base-cell RAID-5 matrix (6 loads × 48
   time-scales) under two energy policies with ``--verify`` — every
   cell re-derived per point and compared bit-for-bit, the run recorded
   in a ledger, the outcome exported as JSON.  RAID-5 writes plan as
   two-phase read-modify-write flights, so the whole matrix rides the
   fused RMW kernel — the smoke asserts no cell fell back to the event
   engine;
2. assert the exported outcome has the full matrix, a non-empty Pareto
   frontier, and a complete IOPS/Watt ranking;
3. round-trip the provenance: ``tracer runs list --origin search``
   names the parent row and the per-cell rows are all present.

Run from the repository root::

    PYTHONPATH=src python scripts/ci_search_smoke.py artifacts

Artifacts land under the given directory (default ``artifacts/``):
``search.replay``, ``search.json``, ``search.md``, ``runs.sqlite``.
"""

import json
import sys
from pathlib import Path

LOADS = "0.4,0.5,0.6,0.7,0.85,1.0"
TIME_SCALES = ",".join(str(round(0.5 + 3.5 * i / 47, 4)) for i in range(48))
POLICIES = "maid:idle_timeout=1,drpm:step_timeout=0.5"
BASE_CELLS = 6 * 48


def main(workdir: str = "artifacts") -> None:
    out = Path(workdir)
    out.mkdir(parents=True, exist_ok=True)

    from repro.cli import main as tracer
    from repro.host.ledger import RunLedger
    from repro.trace.blktrace import write_trace
    from repro.workload.cello import generate_cello_trace

    trace_path = out / "search.replay"
    write_trace(generate_cello_trace(duration=2.0, seed=13), trace_path)

    # 1. The full CLI path: fused search + per-point --verify + ledger.
    code = tracer(
        [
            "search",
            str(trace_path),
            "--device", "hdd-raid5",
            "--policies", POLICIES,
            "--loads", LOADS,
            "--time-scales", TIME_SCALES,
            "--verify",
            "--json", str(out / "search.json"),
            "--output", str(out / "search.md"),
            "--ledger", str(out / "runs.sqlite"),
        ]
    )
    assert code == 0, f"tracer search --verify exited {code}"

    # 2. The exported outcome carries the whole matrix.
    outcome = json.loads((out / "search.json").read_text())
    assert outcome["base_cells"] == BASE_CELLS, outcome["base_cells"]
    assert len(outcome["cells"]) == BASE_CELLS * 3  # baseline + 2 policies
    assert outcome["policies"] == ["baseline", "maid", "drpm"]
    assert outcome["frontier"], "empty Pareto frontier"
    assert len(outcome["ranking"]) == len(outcome["cells"])
    # Write-heavy RAID-5 cells must ride the fused RMW kernel, not the
    # per-point event fallback.
    assert outcome["engines"] == {"kernel": BASE_CELLS}, outcome["engines"]
    print(
        f"search smoke: {outcome['base_cells']} base cells x "
        f"{len(outcome['policies'])} policies verified per point; "
        f"frontier {len(outcome['frontier'])} cells; "
        f"engines {outcome['engines']}"
    )

    # 3. Provenance round-trip: parent + per-cell ledger rows.
    with RunLedger(out / "runs.sqlite") as ledger:
        searches = ledger.list(origin="search")
        assert len(searches) == 1, [r.run_id for r in searches]
        parent = searches[0]
        cells = ledger.list(origin=f"cell:{parent.run_id}")
        assert len(cells) == BASE_CELLS * 3, len(cells)
    code = tracer(
        ["runs", "list", str(out / "runs.sqlite"), "--origin", "search"]
    )
    assert code == 0, f"tracer runs list exited {code}"
    print(f"ledger: search run {parent.run_id} with {len(cells)} cell rows")


if __name__ == "__main__":
    main(*sys.argv[1:])

"""CI trace smoke: the observability plane under real fleet load.

Drives a 200-job multi-tenant fleet run with distributed tracing and
the heartbeat metrics plane both on, then audits what landed:

1. every job — executed, deduped, or retried after a chaos worker
   kill — owns exactly one rooted, orphan-free span tree in the
   ledger's ``spans`` table;
2. the chaos-killed job's tree shows both dispatch attempts as sibling
   spans under one root;
3. every surviving worker landed ≥1 heartbeat row in the
   ``fleet_metrics`` time series, alongside fleet- and tenant-scoped
   series;
4. tracing is bit-transparent: a traced job's result bytes equal an
   untraced serial replay of the same spec;
5. ``tracer trace show`` renders a tree for a real job id through the
   CLI.

Run from the repository root::

    PYTHONPATH=src python scripts/ci_trace_smoke.py artifacts

Artifacts land under the given directory (default ``artifacts/``):
``trace.sqlite`` (ledger + spans + fleet_metrics), ``spans.jsonl``
(every stored span), and ``fleet_metrics.jsonl`` (the full time
series).
"""

import asyncio
import json
import subprocess
import sys
from pathlib import Path

N_JOBS = 200
TENANTS = {"alice": 3, "bob": 2, "carol": 2, "dave": 1}
LOADS = [round(0.1 + 0.1 * i, 1) for i in range(8)]
SEEDS = list(range(4))
N_WORKERS = 4
HEARTBEAT_ROUNDS = 3


def main(workdir: str = "artifacts") -> None:
    out = Path(workdir)
    out.mkdir(parents=True, exist_ok=True)

    from repro.config import WorkloadMode
    from repro.errors import WorkerDied
    from repro.fleet import (
        EvaluationContext,
        FleetScheduler,
        JobSpec,
        TenantSpec,
        canonical_result_bytes,
        local_worker_pool,
    )
    from repro.host.ledger import RunLedger
    from repro.storage.array import build_hdd_raid5
    from repro.telemetry.dtrace import SPAN_ATTEMPT, build_tree
    from repro.workload.matrix import collect_trace

    # Two write-heavy RAID-5 workloads: all-write and mixed read/write.
    # Both plan as RAID-5 read-modify-write flights, so every fleet job
    # exercises the fused two-phase RMW kernel path under tracing.
    factory = lambda: build_hdd_raid5(6)  # noqa: E731
    mode = WorkloadMode(request_size=4096, random_ratio=0.5, read_ratio=0.0)
    mixed = WorkloadMode(request_size=4096, random_ratio=0.5, read_ratio=0.5)
    context = EvaluationContext({
        "smoke": collect_trace(factory, mode, 1.0, seed=23),
        "smoke-mixed": collect_trace(factory, mixed, 1.0, seed=27),
    })

    specs = [
        JobSpec(trace=label, load=load, seed=seed)
        for label in ("smoke", "smoke-mixed")
        for load in LOADS
        for seed in SEEDS
    ]
    unique = len(specs)

    killed = []

    def chaos(worker, job):
        if worker == f"local-{N_WORKERS - 1}" and not killed:
            killed.append(job.job_id)
            raise WorkerDied(f"{worker} chaos-killed mid-replay")

    ledger_path = out / "trace.sqlite"
    ledger_path.unlink(missing_ok=True)

    async def drive():
        ledger = RunLedger(ledger_path)
        workers = local_worker_pool(N_WORKERS, context, chaos=chaos)
        sched = FleetScheduler(
            workers, context=context, ledger=ledger, tracing=True,
            heartbeat_interval=0.0,  # rounds driven explicitly below
        )
        for name, quota in TENANTS.items():
            sched.register_tenant(TenantSpec(name, quota=quota))
        await sched.start()

        tenants = list(TENANTS)
        jobs = []
        for i in range(N_JOBS):
            jobs.append(
                await sched.submit(specs[i % unique],
                                   tenants[i % len(tenants)])
            )
        loop = asyncio.get_event_loop()
        # Interleave heartbeat rounds with the running jobs so the time
        # series sees the fleet busy, then drained.
        await sched._heartbeat_round(loop)
        results = await asyncio.gather(*(j.future for j in jobs))
        for _ in range(HEARTBEAT_ROUNDS - 1):
            await sched._heartbeat_round(loop)
        status = await sched.drain()
        await sched.stop()
        ledger.close()
        return jobs, results, status

    jobs, results, status = asyncio.run(drive())

    assert status["jobs"]["completed"] == N_JOBS, status["jobs"]
    assert status["jobs"]["failed"] == 0
    assert killed, "chaos never fired: no worker death induced"
    print(f"{N_JOBS} jobs completed, tracing on, 1 chaos death recovered")

    ledger = RunLedger(ledger_path)

    # 1. Every job owns exactly one rooted, orphan-free span tree.
    traced_jobs = ledger.span_jobs()
    assert len(traced_jobs) == N_JOBS, (
        f"{len(traced_jobs)} traced jobs, want {N_JOBS}"
    )
    attempt_counts = {}
    for job_id in traced_jobs:
        spans = ledger.spans_for_job(job_id)
        tree = build_tree(spans)
        assert len(tree["roots"]) == 1, (
            f"job {job_id}: {len(tree['roots'])} roots"
        )
        assert tree["orphans"] == [], (
            f"job {job_id}: {len(tree['orphans'])} orphan spans"
        )
        attempt_counts[job_id] = sum(
            1 for s in spans if s["name"] == SPAN_ATTEMPT
        )
    print(f"{len(traced_jobs)} span trees: all rooted, zero orphans "
          f"({ledger.spans_count()} spans total)")

    # 2. The chaos-killed job shows both attempts as siblings.
    assert attempt_counts[killed[0]] == 2, (
        f"killed job {killed[0]} has {attempt_counts[killed[0]]} "
        "attempt spans, want 2"
    )
    print(f"chaos-killed job {killed[0]}: retry is a sibling attempt span")

    # 3. Every surviving worker beat into the time series.
    for worker in status["workers"]:
        beats = ledger.metrics_series(metric="worker.beats",
                                      scope=worker["name"])
        assert beats, f"worker {worker['name']} landed no heartbeat rows"
    fleet_rows = ledger.metrics_series(scope="fleet")
    assert fleet_rows, "no fleet-scoped metric rows"
    tenant_scopes = [s for s in ledger.metrics_scopes()
                     if s.startswith("tenant:")]
    assert len(tenant_scopes) == len(TENANTS), tenant_scopes
    print(f"heartbeats: {ledger.metrics_count()} metric rows across "
          f"{len(ledger.metrics_scopes())} scopes")

    # 4. Tracing is bit-transparent to results.
    spec, result = jobs[0].spec, results[0]
    serial = canonical_result_bytes(context.execute(spec))
    assert result.result_bytes == serial, (
        "traced fleet result diverged from untraced serial replay"
    )
    print("traced result bit-identical to untraced serial replay")

    # 4b. The write-heavy RAID-5 jobs rode the fused RMW kernel: every
    # payload reports the analytical engine with no fallback reason.
    engines = {r.payload["metadata"].get("engine") for r in results}
    assert engines == {"kernel"}, engines
    assert not any(
        "engine_fallback" in r.payload["metadata"] for r in results
    )
    print(f"{len(results)} write-heavy RAID-5 jobs all fused "
          "(engine=kernel, zero fallbacks)")

    # Artifacts: full span and metric dumps.
    spans_file = out / "spans.jsonl"
    with spans_file.open("w") as fh:
        for job_id in traced_jobs:
            for span in ledger.spans_for_job(job_id):
                fh.write(json.dumps(span, sort_keys=True) + "\n")
    metrics_file = out / "fleet_metrics.jsonl"
    with metrics_file.open("w") as fh:
        for row in ledger.metrics_series():
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    ledger.close()
    print(f"artifacts: {spans_file}, {metrics_file}, {ledger_path}")

    # 5. The CLI renders a real tree.
    shown = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "show",
         str(ledger_path), killed[0]],
        check=True, capture_output=True, text=True,
    ).stdout
    assert "fleet.job" in shown and "fleet.attempt" in shown, shown
    listing = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "jobs",
         str(ledger_path)],
        check=True, capture_output=True, text=True,
    ).stdout
    assert str(N_JOBS) in listing, listing
    print("`tracer trace show` renders the killed job's tree via the CLI")
    print("trace smoke OK")


if __name__ == "__main__":
    main(*sys.argv[1:2])

"""CI fleet smoke: replay-as-a-service under multi-tenant load.

Drives the fleet the way CI does, end to end:

1. ≥1000 jobs from 4 tenants land on an asyncio :class:`FleetScheduler`
   over 5 local workers, one of which is chaos-killed on its first
   dispatch (the job is reassigned and completes);
2. per-tenant quotas hold at every instant (peak in-flight ≤ quota);
3. dedup collapses the job stream to its unique specs — the hit rate is
   asserted, not just reported;
4. fleet results are spot-checked bit-identical to serial replays of
   the same specs;
5. every job's provenance row round-trips through a
   ``tracer runs list --origin fleet`` subprocess.

Run from the repository root::

    PYTHONPATH=src python scripts/ci_fleet_smoke.py artifacts

Artifacts land under the given directory (default ``artifacts/``):
``fleet.sqlite`` (ledger + dedup cache) and
``frames/fleet-<job>.jsonl`` (streamed interval frames).
"""

import asyncio
import json
import subprocess
import sys
from pathlib import Path

N_JOBS = 1000
TENANTS = {"alice": 3, "bob": 2, "carol": 2, "dave": 1}
LOADS = [round(0.1 + 0.1 * i, 1) for i in range(8)]
SEEDS = list(range(6))


def main(workdir: str = "artifacts") -> None:
    out = Path(workdir)
    (out / "frames").mkdir(parents=True, exist_ok=True)

    from repro.errors import WorkerDied
    from repro.fleet import (
        EvaluationContext,
        FleetScheduler,
        JobSpec,
        TenantSpec,
        canonical_result_bytes,
        local_worker_pool,
    )
    from repro.host.ledger import RunLedger
    from repro.storage.array import build_hdd_raid5
    from repro.workload.matrix import collect_trace
    from repro.config import WorkloadMode

    mode = WorkloadMode(request_size=4096, random_ratio=0.5, read_ratio=0.0)
    trace = collect_trace(lambda: build_hdd_raid5(6), mode, 1.0, seed=23)
    context = EvaluationContext({"smoke": trace})

    specs = [
        JobSpec(trace="smoke", load=load, seed=seed)
        for load in LOADS
        for seed in SEEDS
    ]
    unique = len(specs)

    killed = []

    def chaos(worker, job):
        # Exactly one induced worker death, on the victim's first job.
        if worker == "local-4" and not killed:
            killed.append(job.job_id)
            raise WorkerDied(f"{worker} chaos-killed mid-replay")

    ledger_path = out / "fleet.sqlite"
    ledger_path.unlink(missing_ok=True)

    async def drive():
        ledger = RunLedger(ledger_path)
        workers = local_worker_pool(5, context, chaos=chaos)
        sched = FleetScheduler(workers, context=context, ledger=ledger)
        for name, quota in TENANTS.items():
            sched.register_tenant(TenantSpec(name, quota=quota))
        await sched.start()

        tenants = list(TENANTS)
        jobs = []
        frames = []
        for i in range(N_JOBS):
            job = await sched.submit(
                specs[i % unique],
                tenants[i % len(tenants)],
                stream_interval=0.2 if i == 0 else None,
            )
            if i == 0:
                sched.watch(frames.append, job_id=job.job_id)
            jobs.append(job)
        results = await asyncio.gather(*(j.future for j in jobs))
        status = await sched.drain()
        await sched.stop()
        ledger.close()
        return jobs, results, status, frames

    jobs, results, status, frames = asyncio.run(drive())

    # 1. Everything completed, including the chaos-killed job.
    assert status["jobs"]["completed"] == N_JOBS, status["jobs"]
    assert status["jobs"]["failed"] == 0
    assert killed, "chaos never fired: no worker death induced"
    assert status["jobs"]["worker_deaths"] == 1
    assert len(status["dead_workers"]) == 1
    assert len(status["workers"]) == 4
    victim = next(j for j in jobs if j.job_id == killed[0])
    assert victim.future.result().attempts == 2
    print(
        f"{N_JOBS} jobs from {len(TENANTS)} tenants completed on "
        f"{len(status['workers'])} surviving workers "
        f"(1 chaos death recovered, job {killed[0]} on attempt 2)"
    )

    # 2. Quotas held at every instant.
    for name, quota in TENANTS.items():
        peak = status["queue"]["tenants"][name]["peak_in_flight"]
        assert peak <= quota, f"{name} peaked at {peak} > quota {quota}"
        print(f"tenant {name}: quota {quota}, peak in-flight {peak}")

    # 3. Dedup collapsed the stream to its unique specs.
    executions = context.executions
    hits = status["dedup"]["cache_hits"] + status["dedup"]["inflight_hits"]
    assert executions == unique, (executions, unique)
    assert hits == N_JOBS - unique
    rate = hits / N_JOBS
    assert rate == status["dedup"]["hit_rate"]
    print(f"dedup: {executions} executions for {N_JOBS} jobs "
          f"(hit rate {rate:.1%})")

    # 4. Fleet results are bit-identical to serial replays.
    by_key = {}
    for job, result in zip(jobs, results):
        by_key.setdefault(job.spec.cache_key("x"), (job.spec, result))
    for spec, result in list(by_key.values())[:5]:
        serial = canonical_result_bytes(context.execute(spec))
        assert result.result_bytes == serial, (
            f"fleet result for {spec.to_dict()} diverged from serial replay"
        )
    print("5 fleet results spot-checked bit-identical to serial replays")

    # Streamed frames for the watched job become an artifact.
    assert frames, "no interval frames streamed for the watched job"
    frames_file = out / "frames" / f"fleet-{jobs[0].job_id}.jsonl"
    frames_file.write_text(
        "".join(
            json.dumps(f if isinstance(f, dict) else f.to_dict(),
                       sort_keys=True) + "\n"
            for f in frames
        )
    )
    print(f"streamed {len(frames)} frames -> {frames_file}")

    # 5. Provenance rows round-trip through the CLI.
    listing = subprocess.run(
        [sys.executable, "-m", "repro.cli", "runs", "list",
         str(ledger_path), "--origin", "fleet"],
        check=True, capture_output=True, text=True,
    ).stdout
    footer = listing.strip().splitlines()[-1]
    shown = int(footer.split(" of ")[0].rsplit(None, 1)[-1])
    assert shown == N_JOBS, f"CLI listed {shown} fleet rows, want {N_JOBS}"
    one = subprocess.run(
        [sys.executable, "-m", "repro.cli", "runs", "list",
         str(ledger_path), "--origin", f"fleet/job:{jobs[0].job_id}"],
        check=True, capture_output=True, text=True,
    ).stdout
    assert jobs[0].job_id[:16].strip() in one
    print(f"{shown} fleet rows round-trip through `tracer runs list "
          f"--origin fleet` ({ledger_path})")
    print("fleet smoke OK")


if __name__ == "__main__":
    main(*sys.argv[1:2])

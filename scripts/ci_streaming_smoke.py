"""CI streaming-observability smoke.

Exercises the full streaming stack end-to-end the way CI drives it:

1. a short **remote** replay (real TCP, in-process ``GeneratorNode``)
   streams live PROGRESS frames under ``TRACER_TELEMETRY_INTERVAL``,
   persisting the interval-frame JSONL and a run-ledger row;
2. the ledger row round-trips through a ``tracer runs show`` subprocess;
3. a fault-injected local replay fails a RAID-5 member mid-run, which
   autodumps the **armed** flight recorder (``TRACER_FLIGHTREC``).

Run from the repository root::

    TRACER_TELEMETRY_INTERVAL=1 TRACER_FLIGHTREC=artifacts/flightrec.jsonl \
        PYTHONPATH=src python scripts/ci_streaming_smoke.py artifacts

Artifacts land under the given directory (default ``artifacts/``):
``frames/run-<id>.jsonl``, ``runs.sqlite``, and the flightrec dump.
"""

import json
import os
import subprocess
import sys
from pathlib import Path


def main(workdir: str = "artifacts") -> None:
    out = Path(workdir)
    out.mkdir(parents=True, exist_ok=True)

    from repro.config import ReplayConfig, TestRequest, WorkloadMode
    from repro.distributed.generator_node import GeneratorNode
    from repro.distributed.host_node import RemoteEvaluationHost
    from repro.faults import DiskFailFault, FaultSchedule
    from repro.host.ledger import RunLedger
    from repro.replay.session import replay_trace
    from repro.storage.array import build_hdd_raid5
    from repro.telemetry.stream import resolve_interval
    from repro.trace.repository import TraceName, TraceRepository
    from repro.workload.matrix import collect_trace

    interval = resolve_interval(None) or 1.0
    mode = WorkloadMode(request_size=4096, random_ratio=0.5, read_ratio=0.0)
    trace = collect_trace(lambda: build_hdd_raid5(6), mode, 2.0, seed=23)

    repo = TraceRepository(out / "repo")
    repo.store(TraceName("hdd-raid5", 4096, 0.5, 0.0), trace, overwrite=True)

    # 1. Remote streamed replay: live frames + frames file + ledger row.
    ledger_path = out / "runs.sqlite"
    live = []
    with GeneratorNode(
        lambda: build_hdd_raid5(6), "hdd-raid5", repo, node_id="ci-gen"
    ) as node:
        with RemoteEvaluationHost(
            "127.0.0.1",
            node.port,
            ledger=RunLedger(ledger_path),
            frames_dir=out / "frames",
        ) as host:
            record = host.run_test(
                TestRequest(
                    mode=mode.at_load(0.5),
                    replay=ReplayConfig(seed=23),
                    label="ci-smoke",
                ),
                on_progress=live.append,
                stream_interval=interval,
            )
    assert live, "no live PROGRESS frames delivered"
    assert record.iops > 0, "remote replay produced no throughput"

    with RunLedger(ledger_path) as ledger:
        assert ledger.count() == 1, "remote run did not land in the ledger"
        row = ledger.list()[0]
    frames_file = Path(row.frames_path)
    assert frames_file.exists() and frames_file.read_text().strip(), (
        "interval-frame JSONL missing or empty"
    )
    print(
        f"streamed {len(live)} live frames from {row.origin}; "
        f"persisted {frames_file}"
    )

    # 2. The ledger row round-trips through the CLI (unique prefix).
    shown = json.loads(
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "runs", "show",
             str(ledger_path), row.run_id[:8]],
            check=True, capture_output=True, text=True,
        ).stdout
    )
    assert shown["run_id"] == row.run_id
    assert shown["summary"]["iops"] == row.summary["iops"]
    assert shown["config_hash"] == row.config_hash
    print(f"ledger row {row.run_id} round-trips through `tracer runs show`")

    # 3. Armed flight recorder autodumps on a mid-replay disk failure.
    dump_path = os.environ.get("TRACER_FLIGHTREC", "").strip()
    assert dump_path, "run with TRACER_FLIGHTREC=<path> to arm the recorder"
    faults = FaultSchedule(
        seed=1, disk_failures=(DiskFailFault(at=0.3, member=1),)
    )
    replay_trace(
        trace, build_hdd_raid5(6), 0.5,
        config=ReplayConfig(seed=23), faults=faults,
    )
    dump = Path(dump_path)
    assert dump.exists(), "armed flight recorder did not dump on disk failure"
    header = json.loads(dump.read_text().splitlines()[0])
    assert header.get("reason") == "disk_failure", header
    print(f"flight recorder dumped {dump} (reason={header['reason']})")
    print("streaming smoke OK")


if __name__ == "__main__":
    main(*sys.argv[1:2])

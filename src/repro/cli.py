"""Command-line interface: ``python -m repro`` / ``tracer``.

Subcommands mirror the evaluation workflow of §III-B:

* ``collect``  — build (part of) the synthetic trace matrix into a repository;
* ``convert``  — transform an HP ``.srt`` text trace to ``.replay``;
* ``stats``    — print Table-III-style statistics of a trace file;
* ``replay``   — replay a trace at a load proportion (``--live`` streams
  per-cycle rows, the GUI stand-in);
* ``sweep``    — full load sweep (10 %..100 %) with a results database;
* ``repo``     — list a trace repository;
* ``profile``  — distributional workload characterisation;
* ``compare``  — statistical similarity of two traces;
* ``headroom`` — SLO-bounded intensity bisection (the Fig. 2 knob);
* ``telemetry`` — instrumented replay with a metrics dump (JSONL /
  Prometheus exports, see ``docs/observability.md``);
* ``serve``    — run a workload-generator node (Fig. 3);
* ``watch``    — live view of a remote replay (streamed interval frames);
* ``flightrec`` — dump the in-process flight recorder;
* ``runs``     — query the run ledger (``list`` / ``show`` / ``diff``);
* ``search``   — energy-policy Pareto search: one fused replay grid,
  every cell re-scored under each policy, ranked by IOPS/Watt
  (``--verify`` re-derives every cell per point and diffs bit-for-bit);
* ``report`` / ``export`` — markdown report / CSV from a results database.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, List, Optional

from .config import ReplayConfig, TestRequest, WorkloadMode, LOAD_LEVELS
from .host.database import ResultsDatabase
from .host.evaluation import EvaluationHost
from .metrics.summary import format_table, summarize
from .replay.session import ReplaySession
from .storage.array import build_hdd_raid5, build_ssd_raid5
from .trace.blktrace import read_trace
from .trace.repository import TraceRepository
from .trace.srt import convert_srt_file
from .trace.stats import compute_stats
from .workload.matrix import build_matrix, matrix_modes


def _device_factory(kind: str, n_disks: int) -> Callable:
    # functools.partial, not a lambda: grid/pool paths ship the factory
    # across process boundaries.
    from functools import partial

    from .storage.array import RaidLevel

    if kind == "hdd-raid5":
        return partial(build_hdd_raid5, n_disks)
    if kind == "ssd-raid5":
        return partial(build_ssd_raid5, n_disks)
    if kind == "hdd-raid0":
        return partial(
            build_hdd_raid5, n_disks, name="hdd-raid0", level=RaidLevel.RAID0
        )
    if kind == "ssd-raid0":
        return partial(
            build_ssd_raid5, n_disks, name="ssd-raid0", level=RaidLevel.RAID0
        )
    raise SystemExit(
        f"unknown device type {kind!r} "
        "(hdd-raid5 | ssd-raid5 | hdd-raid0 | ssd-raid0)"
    )


def _add_device_args(parser: argparse.ArgumentParser, default_disks: int = 6) -> None:
    parser.add_argument(
        "--device",
        default="hdd-raid5",
        choices=["hdd-raid5", "ssd-raid5", "hdd-raid0", "ssd-raid0"],
        help="simulated device under test",
    )
    parser.add_argument(
        "--disks", type=int, default=default_disks, help="member disk count"
    )


def cmd_collect(args: argparse.Namespace) -> int:
    repo = TraceRepository(args.repository)
    modes = matrix_modes()
    if args.limit:
        modes = modes[: args.limit]
    results = build_matrix(
        _device_factory(args.device, args.disks),
        repo,
        args.device,
        duration=args.duration,
        modes=modes,
        overwrite=args.overwrite,
    )
    for name, bunches in results:
        print(f"{name.filename}: {bunches} bunches")
    print(f"repository now holds {len(repo)} traces at {repo.root}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    trace = convert_srt_file(args.src, args.dst, device=args.srt_device)
    print(f"converted {args.src} -> {args.dst}: {len(trace)} bunches, "
          f"{trace.package_count} packages")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    st = compute_stats(trace)
    print(f"trace           : {args.trace}")
    print(f"bunches         : {st.bunch_count}")
    print(f"packages        : {st.package_count}")
    print(f"duration        : {st.duration:.3f} s")
    print(f"total data      : {st.total_bytes / 1e6:.2f} MB")
    print(f"dataset         : {st.dataset_gib:.3f} GiB")
    print(f"read ratio      : {st.read_ratio * 100:.2f} %")
    print(f"random ratio    : {st.random_ratio * 100:.2f} %")
    print(f"mean req size   : {st.mean_request_kib:.2f} KiB")
    print(f"mean bunch size : {st.mean_bunch_size:.2f}")
    print(f"offered IOPS    : {st.iops:.1f}")
    print(f"offered MBPS    : {st.mbps:.2f}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .replay.console import ConsoleReporter, LiveFrameRenderer
    from .telemetry.flightrec import arm_autodump
    from .telemetry.stream import write_frames_jsonl

    if args.flightrec:
        arm_autodump(args.flightrec)
    if args.engine == "event":
        trace = read_trace(args.trace)
    else:
        # The analytical kernel only runs over the columnar layout;
        # the packed load is also the faster path for auto.
        from .trace.blktrace import read_trace_packed

        trace = read_trace_packed(args.trace)
    device = _device_factory(args.device, args.disks)()
    interval = args.stream_interval if args.stream_interval > 0 else None
    renderer = (
        LiveFrameRenderer() if interval is not None and args.live else None
    )
    session = ReplaySession(
        device,
        config=ReplayConfig(
            sampling_cycle=args.cycle,
            time_scale=args.time_scale,
            engine=args.engine,
        ),
        reporter=ConsoleReporter() if args.live and renderer is None else None,
        stream_interval=interval,
        on_frame=renderer.on_frame if renderer is not None else None,
    )
    result = session.run(trace, load_proportion=args.load / 100.0)
    print(format_table(summarize([result]), title=f"replay of {args.trace}"))
    engine = result.metadata.get("engine", "event")
    fallback = result.metadata.get("engine_fallback")
    print(f"engine: {engine}" + (f" (fell back: {fallback})" if fallback else ""))
    if args.frames and result.interval_frames:
        write_frames_jsonl(result.interval_frames, args.frames)
        print(f"interval frames written to {args.frames}")
    return 0


def _parse_axis(text: str, flag: str) -> list:
    try:
        values = [float(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated numbers: {text!r}")
    if not values:
        raise SystemExit(f"{flag} expects at least one value")
    return values


def cmd_sweep_grid(args: argparse.Namespace) -> int:
    from .trace.blktrace import read_trace_packed
    from .workload.parallel import run_grid

    trace = read_trace_packed(args.trace)
    loads = _parse_axis(args.loads, "--loads")
    time_scales = _parse_axis(args.time_scales, "--time-scales")
    factory = _device_factory(args.device, args.disks)
    outcome = run_grid(
        {Path(args.trace).stem: trace},
        {args.device: factory},
        loads=loads,
        time_scales=time_scales,
        config=ReplayConfig(engine=args.engine),
        engine=args.engine,
    )
    print(f"{'load%':>6} {'scale':>6} {'IOPS':>10} {'MBPS':>9} "
          f"{'Watts':>8} {'IOPS/W':>8} {'engine':>7}")
    for cell in outcome.cells:
        r = cell.result
        print(
            f"{cell.load * 100:>5.0f}% {cell.time_scale:>6g} "
            f"{r.iops:>10.1f} {r.mbps:>9.2f} {r.mean_watts:>8.2f} "
            f"{r.iops_per_watt:>8.2f} {cell.engine:>7}"
        )
    d, t, l, s = outcome.shape
    mix = ", ".join(f"{k}={v}" for k, v in sorted(outcome.engines.items()))
    print(f"grid {d}x{t}x{l}x{s} ({len(outcome.cells)} cells, "
          f"{outcome.fused_cells} fused) in {outcome.elapsed_seconds:.2f}s; "
          f"engines: {mix}")
    for key, reason in outcome.fallback_reasons.items():
        print(f"  fallback {key}: {reason}")
    if args.ledger:
        from .host.ledger import RunLedger, record_grid_run

        with RunLedger(args.ledger) as ledger:
            run_id = record_grid_run(
                ledger, outcome, config=ReplayConfig(engine=args.engine)
            )
        print(f"recorded as run {run_id} (+{len(outcome.cells)} cell rows) "
              f"in {args.ledger}")
    return 0


def _split_policy_specs(text: str) -> List[str]:
    """Split ``--policies`` into specs, keeping params with their policy.

    Commas separate policies *and* parameters, so a segment containing
    ``=`` but no ``:`` continues the previous spec:
    ``maid:idle_timeout=5,drpm:step_timeout=1,transition_time=0.5``
    is two specs, the second with two parameters.
    """
    specs: List[str] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if specs and "=" in part and ":" not in part:
            specs[-1] += "," + part
        else:
            specs.append(part)
    return specs


def cmd_search(args: argparse.Namespace) -> int:
    from .analysis.export import render_json
    from .analysis.report import search_report
    from .energysaving.policy import PolicyError
    from .search import build_policies, verify_search
    from .trace.blktrace import read_trace_packed
    from .workload.parallel import run_policy_search

    trace = read_trace_packed(args.trace)
    loads = _parse_axis(args.loads, "--loads")
    time_scales = _parse_axis(args.time_scales, "--time-scales")
    try:
        policies = build_policies(_split_policy_specs(args.policies))
    except PolicyError as exc:
        raise SystemExit(str(exc))
    if not policies:
        raise SystemExit("--policies expects at least one policy spec")
    traces = {Path(args.trace).stem: trace}
    devices = {args.device: _device_factory(args.device, args.disks)}
    config = ReplayConfig(sampling_cycle=args.cycle, engine=args.engine)
    try:
        outcome = run_policy_search(
            traces,
            devices,
            policies,
            loads=loads,
            time_scales=time_scales,
            config=config,
            engine=args.engine,
        )
    except PolicyError as exc:
        raise SystemExit(str(exc))

    if args.frontier:
        # Machine-friendly frontier listing instead of the full report.
        for cell in outcome.frontier():
            m = cell.metrics
            print(f"{cell.key} energy={m.energy_joules:.3f}J "
                  f"resp={m.mean_response * 1000:.3f}ms "
                  f"iops_per_watt={m.iops_per_watt:.3f}")
    else:
        print(search_report(outcome, top=args.top))
    if args.output:
        Path(args.output).write_text(search_report(outcome, top=args.top))
        print(f"report written to {args.output}")
    if args.json:
        Path(args.json).write_text(render_json(outcome.to_dict()))
        print(f"search outcome written to {args.json}")
    if args.ledger:
        from .host.ledger import RunLedger, record_search_run

        with RunLedger(args.ledger) as ledger:
            run_id = record_search_run(ledger, outcome, config=config)
        print(f"recorded as run {run_id} (+{len(outcome.cells)} cell rows) "
              f"in {args.ledger}")
    if args.verify:
        mismatches = verify_search(
            outcome, traces, devices, policies, config=config
        )
        if mismatches:
            print(f"VERIFY FAILED: {len(mismatches)} mismatch(es)")
            for line in mismatches:
                print(f"  {line}")
            return 1
        print(f"verified: {outcome.base_cells} base cell(s) x "
              f"{len(outcome.policies)} policies re-derived per point, "
              "bit-identical")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.grid:
        return cmd_sweep_grid(args)
    trace = read_trace(args.trace)
    db = ResultsDatabase(args.database) if args.database else ResultsDatabase()
    repo = TraceRepository(args.repository) if args.repository else TraceRepository(
        Path(args.trace).parent
    )
    host = EvaluationHost(
        _device_factory(args.device, args.disks),
        args.device,
        repository=repo,
        database=db,
    )
    st = compute_stats(trace)
    mode = WorkloadMode(
        request_size=max(int(st.mean_request_bytes), 512),
        random_ratio=min(max(st.random_ratio, 0.0), 1.0),
        read_ratio=min(max(st.read_ratio, 0.0), 1.0),
    )
    records = host.run_load_sweep(mode, trace=trace, label=Path(args.trace).stem)
    print(f"{'load%':>6} {'IOPS':>10} {'MBPS':>9} {'Watts':>8} "
          f"{'IOPS/W':>8} {'MBPS/kW':>9}")
    for rec in records:
        print(
            f"{rec.mode.load_proportion * 100:>5.0f}% {rec.iops:>10.1f} "
            f"{rec.mbps:>9.2f} {rec.mean_watts:>8.2f} "
            f"{rec.iops_per_watt:>8.2f} {rec.mbps_per_kilowatt:>9.1f}"
        )
    if args.database:
        print(f"records stored in {args.database}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .analysis.profile import format_profile, profile_trace

    trace = read_trace(args.trace)
    profile = profile_trace(trace)
    print(format_profile(profile, title=f"workload profile — {args.trace}"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import database_report

    with ResultsDatabase(args.database) as db:
        text = database_report(db, title=args.title)
    if args.output:
        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .analysis.export import export_records_csv

    with ResultsDatabase(args.database) as db:
        records = db.query()
        count = export_records_csv(records, args.csv)
    print(f"exported {count} records to {args.csv}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.similarity import compare_traces, format_similarity

    original = read_trace(args.original)
    manipulated = read_trace(args.manipulated)
    sim = compare_traces(original, manipulated)
    print(f"similarity of {args.manipulated} vs {args.original}:")
    print(format_similarity(sim))
    return 0


def cmd_slice(args: argparse.Namespace) -> int:
    """Cut a time window out of a trace and rebase it to t=0."""
    from .trace.blktrace import write_trace
    from .trace.ops import rebase, time_window

    trace = read_trace(args.trace)
    window = rebase(time_window(trace, args.start, args.end))
    if len(window) == 0:
        print(f"window [{args.start}, {args.end}) selects no bunches")
        return 1
    write_trace(window, args.output)
    print(f"{args.output}: {len(window)} bunches / "
          f"{window.package_count} packages "
          f"({window.duration:.3f} s)")
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    """Remap a trace's addresses into a smaller device's range."""
    from .trace.blktrace import write_trace
    from .trace.ops import fit_to_capacity

    trace = read_trace(args.trace)
    fitted = fit_to_capacity(trace, args.capacity_sectors, mode=args.mode)
    write_trace(fitted, args.output)
    print(f"{args.output}: fitted to {args.capacity_sectors} sectors "
          f"({args.mode} mode), {fitted.package_count} packages")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a workload-generator node (Fig. 3's generator machine)."""
    import threading

    from .distributed.generator_node import GeneratorNode

    repo = TraceRepository(args.repository)
    node = GeneratorNode(
        _device_factory(args.device, args.disks),
        args.device,
        repo,
        host=args.bind,
        port=args.port,
        node_id=args.node_id,
    )
    node.start()
    print(f"generator node {args.node_id!r} serving {args.device} "
          f"on {args.bind}:{node.port} "
          f"({len(repo)} traces in {repo.root})")
    try:
        if args.max_tests:
            # Scriptable mode: exit once N tests have been served.
            while node.tests_served < args.max_tests:
                threading.Event().wait(0.05)
        else:  # pragma: no cover - interactive mode
            threading.Event().wait()
    except KeyboardInterrupt:  # pragma: no cover
        pass
    finally:
        node.stop()
    print(f"served {node.tests_served} tests; shutting down")
    return 0


def cmd_headroom(args: argparse.Namespace) -> int:
    from .analysis.headroom import HeadroomError, find_headroom

    trace = read_trace(args.trace)
    factory = _device_factory(args.device, args.disks)
    try:
        result = find_headroom(
            trace,
            factory,
            response_slo=args.slo_ms / 1000.0,
            metric=args.metric,
            max_intensity=args.max_intensity,
        )
    except HeadroomError as exc:
        print(f"headroom search failed: {exc}")
        return 1
    print(f"{'intensity':>10} {'resp ms':>9} {'IOPS':>9} {'Watts':>8}")
    for p in sorted(result.probes, key=lambda p: p.intensity):
        print(
            f"{p.intensity:>9.2f}x {p.mean_response * 1000:>9.2f} "
            f"{p.iops:>9.1f} {p.mean_watts:>8.2f}"
        )
    if result.first_violation == float("inf"):
        print(f"sustains >= {result.saturation_intensity:.1f}x the recorded "
              f"load (search cap {args.max_intensity:g}x reached)")
    else:
        print(f"headroom: {result.saturation_intensity:.1f}x "
              f"(SLO violated at {result.first_violation:.1f}x)")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Replay a trace with instrumentation on and print/export metrics."""
    from .telemetry import enabled_telemetry
    from .telemetry.exporters import (
        format_table as telemetry_table,
        to_prometheus,
        write_jsonl,
    )

    trace = read_trace(args.trace)
    with enabled_telemetry() as reg:
        device = _device_factory(args.device, args.disks)()
        session = ReplaySession(
            device,
            config=ReplayConfig(
                sampling_cycle=args.cycle, time_scale=args.time_scale
            ),
        )
        result = session.run(trace, load_proportion=args.load / 100.0)
        snapshot = reg.snapshot(include_timers=args.timers)
    print(format_table(summarize([result]), title=f"replay of {args.trace}"))
    print()
    print(telemetry_table(snapshot))
    if args.jsonl:
        write_jsonl(snapshot, args.jsonl)
        print(f"telemetry written to {args.jsonl}")
    if args.prometheus:
        Path(args.prometheus).write_text(to_prometheus(snapshot))
        print(f"prometheus text written to {args.prometheus}")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Live view of a remote replay: streamed interval frames."""
    from .distributed.host_node import RemoteEvaluationHost
    from .host.ledger import RunLedger
    from .replay.console import LiveFrameRenderer

    mode = WorkloadMode(
        request_size=args.request_size,
        random_ratio=args.random,
        read_ratio=args.read,
    ).at_load(args.load / 100.0)
    request = TestRequest(
        mode=mode,
        replay=ReplayConfig(seed=args.seed),
        label=args.label,
    )
    ledger = RunLedger(args.ledger) if args.ledger else None
    renderer = LiveFrameRenderer()
    with RemoteEvaluationHost(
        args.host,
        args.port,
        ledger=ledger,
        frames_dir=args.frames_dir or None,
    ) as host:
        print(f"watching {host.device_label} on node {host.node_id} "
              f"({args.host}:{args.port}), interval {args.interval}s")
        record = host.run_test(
            request,
            on_progress=renderer.on_frame,
            stream_interval=args.interval,
        )
    print(f"\n{renderer.frames_rendered} frames; final: "
          f"{record.iops:.1f} IOPS, {record.mbps:.2f} MBPS, "
          f"{record.mean_watts:.2f} W, "
          f"{record.iops_per_watt:.2f} IOPS/W")
    if ledger is not None:
        latest = ledger.list(limit=1)
        if latest:
            print(f"ledger: run {latest[0].run_id} recorded in {args.ledger}")
        ledger.close()
    return 0


def cmd_flightrec_dump(args: argparse.Namespace) -> int:
    """Dump the in-process flight recorder to JSONL."""
    from .telemetry.flightrec import get_flight_recorder

    recorder = get_flight_recorder()
    path = recorder.dump(args.output, reason="manual")
    print(f"{len(recorder)} events ({recorder.total_recorded} recorded) "
          f"dumped to {path}")
    return 0


def _open_ledger(path: str):
    from .host.ledger import RunLedger

    if not Path(path).exists():
        raise SystemExit(f"no ledger at {path}")
    return RunLedger(path)


def cmd_runs_list(args: argparse.Namespace) -> int:
    with _open_ledger(args.ledger) as ledger:
        records = ledger.list(
            trace_label=args.trace or None,
            origin=args.origin or None,
            limit=args.limit or None,
        )
        total = ledger.count()
    print(f"{'run_id':<16} {'origin':<18} {'trace':<34} "
          f"{'seed':>6} {'IOPS':>9} {'Watts':>8}")
    for rec in records:
        print(
            f"{rec.run_id:<16} {rec.origin:<18} {rec.trace_label:<34.34} "
            f"{rec.seed if rec.seed is not None else '-':>6} "
            f"{rec.summary.get('iops', 0.0):>9.1f} "
            f"{rec.summary.get('mean_watts', 0.0):>8.2f}"
        )
    print(f"{len(records)} of {total} runs in {args.ledger}")
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    from .analysis.export import render_json

    with _open_ledger(args.ledger) as ledger:
        record = ledger.get(args.run_id)
    print(render_json(record.to_dict()))
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    with _open_ledger(args.ledger) as ledger:
        diff = ledger.diff(args.run_a, args.run_b)
    print(f"{diff['a']} vs {diff['b']}  "
          f"(same config: {diff['same_config']}, "
          f"same trace: {diff['same_trace']})")
    print(f"{'metric':<18} {'a':>12} {'b':>12} {'delta':>12} {'pct':>8}")
    for key, row in diff["metrics"].items():
        if "equal" in row:
            # Non-numeric provenance (e.g. engine): equality, not delta.
            marker = "same" if row["equal"] else "DIFFERS"
            print(
                f"{key:<18} {str(row['a']):>12} {str(row['b']):>12} "
                f"{marker:>12}"
            )
            continue
        print(
            f"{key:<18} {row['a']:>12.4f} {row['b']:>12.4f} "
            f"{row['delta']:>12.4f} {row['pct']:>7.2f}%"
        )
    return 0


def cmd_repo(args: argparse.Namespace) -> int:
    repo = TraceRepository(args.repository)
    names = list(repo.names())
    for name in names:
        print(name.filename)
    print(f"{len(names)} traces in {repo.root}")
    return 0


def _fleet_request(args: argparse.Namespace, kind: str, body: dict):
    from .host.communicator import Communicator
    from .host.protocol import Frame

    comm = Communicator(args.host, args.port, timeout=args.timeout)
    try:
        return comm.request(Frame(kind, body))
    finally:
        comm.close()


def cmd_fleet_serve(args: argparse.Namespace) -> int:
    """Run the replay-as-a-service fleet endpoint."""
    import threading

    from .fleet import (
        EvaluationContext,
        FleetScheduler,
        FleetService,
        TenantSpec,
        local_worker_pool,
    )
    from .host.ledger import RunLedger
    from .trace.blktrace import read_trace_packed

    context = EvaluationContext()
    for path in args.trace:
        context.add_trace(Path(path).stem, read_trace_packed(path))
    if not context.labels():
        raise SystemExit("fleet serve needs at least one --trace")
    ledger = RunLedger(args.db if args.db else ":memory:")
    workers = local_worker_pool(
        args.workers, context, mode=args.worker_mode
    )
    scheduler = FleetScheduler(
        workers,
        context=context,
        ledger=ledger,
        aging_rate=args.aging_rate,
        default_quota=args.quota,
        tracing=True if args.tracing else None,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    for entry in args.tenant:
        parts = entry.split(":")
        if not 1 <= len(parts) <= 3:
            raise SystemExit(
                f"bad --tenant {entry!r} (name[:quota[:priority]])"
            )
        scheduler.register_tenant(TenantSpec(
            name=parts[0],
            quota=int(parts[1]) if len(parts) > 1 else args.quota,
            priority=float(parts[2]) if len(parts) > 2 else 0.0,
        ))
    service = FleetService(scheduler, host=args.bind, port=args.port)
    service.start()
    print(f"fleet serving {len(workers)} {args.worker_mode} workers, "
          f"traces {context.labels()} on {args.bind}:{service.port} "
          f"(ledger: {args.db or 'in-memory'})")
    try:
        if args.max_jobs:
            # Scriptable mode: exit once N jobs have completed.
            while scheduler.completed + scheduler.failed < args.max_jobs:
                threading.Event().wait(0.05)
        else:  # pragma: no cover - interactive mode
            threading.Event().wait()
    except KeyboardInterrupt:  # pragma: no cover
        pass
    finally:
        service.close()
        ledger.close()
    print(f"fleet served {scheduler.completed} jobs "
          f"({scheduler.failed} failed); shutting down")
    return 0


def cmd_fleet_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running fleet endpoint."""
    import json as _json
    import uuid as _uuid

    from .analysis.export import render_json
    from .host.protocol import KIND_ERROR, KIND_FLEET_SUBMIT

    if args.spec_json:
        spec = _json.loads(args.spec_json)
    else:
        spec = {
            "kind": args.kind,
            "trace": args.job_trace,
            "device": args.device,
            "n_disks": args.disks,
            "load": args.load,
            "seed": args.seed,
            "engine": args.engine,
        }
        if args.policies:
            spec["policies"] = [
                p.strip() for p in args.policies.split(";") if p.strip()
            ]
    reply = _fleet_request(args, KIND_FLEET_SUBMIT, {
        "spec": spec,
        "tenant": args.tenant,
        "priority": args.priority,
        "wait": args.wait,
        "submit_id": _uuid.uuid4().hex,
    })
    if reply.kind == KIND_ERROR:
        raise SystemExit(f"fleet refused: {reply.body.get('message')}")
    if not args.wait:
        print(reply.body.get("job_id", "?"))
        return 0
    body = dict(reply.body)
    if not args.full:
        # The full result payload can be large; default to provenance
        # plus the flat metrics.
        result = body.get("result") or {}
        body["result"] = {
            k: v for k, v in result.items() if not isinstance(v, (dict, list))
        }
    print(render_json(body))
    return 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    from .analysis.export import render_json
    from .host.protocol import KIND_ERROR, KIND_FLEET_STATUS

    reply = _fleet_request(args, KIND_FLEET_STATUS, {})
    if reply.kind == KIND_ERROR:
        raise SystemExit(f"fleet error: {reply.body.get('message')}")
    print(render_json(reply.body))
    return 0


def cmd_fleet_drain(args: argparse.Namespace) -> int:
    from .analysis.export import render_json
    from .host.protocol import KIND_ERROR, KIND_FLEET_DRAIN

    reply = _fleet_request(args, KIND_FLEET_DRAIN, {})
    if reply.kind == KIND_ERROR:
        raise SystemExit(f"fleet error: {reply.body.get('message')}")
    print(render_json(reply.body))
    return 0


def cmd_fleet_top(args: argparse.Namespace) -> int:
    """Live fleet view: poll fleet_status and repaint."""
    import time as _time

    from .fleet.top import render_top, status_snapshot
    from .host.protocol import KIND_ERROR, KIND_FLEET_STATUS
    from .telemetry.exporters import to_jsonl, to_prometheus

    iterations = args.iterations if args.iterations > 0 else None
    shown = 0
    while True:
        reply = _fleet_request(args, KIND_FLEET_STATUS, {})
        if reply.kind == KIND_ERROR:
            raise SystemExit(f"fleet error: {reply.body.get('message')}")
        status = reply.body
        if shown and iterations is None:  # pragma: no cover - interactive
            print("\033[2J\033[H", end="")
        print(render_top(status), end="")
        if args.prometheus or args.jsonl:
            snapshot = status_snapshot(status)
            if args.prometheus:
                Path(args.prometheus).write_text(to_prometheus(snapshot))
            if args.jsonl:
                Path(args.jsonl).write_text(to_jsonl(snapshot))
        shown += 1
        if iterations is not None and shown >= iterations:
            return 0
        _time.sleep(args.interval)


def cmd_trace_show(args: argparse.Namespace) -> int:
    """Render one fleet job's distributed-trace span tree."""
    from .host.ledger import RunLedger
    from .telemetry.dtrace import build_tree, render_tree

    ledger = RunLedger(args.ledger)
    try:
        spans = ledger.spans_for_job(args.job_id)
    finally:
        ledger.close()
    if not spans:
        print(f"no spans recorded for job {args.job_id!r}", file=sys.stderr)
        return 1
    print(render_tree(spans), end="")
    tree = build_tree(spans)
    if tree["orphans"]:
        print(f"warning: {len(tree['orphans'])} orphan span(s)",
              file=sys.stderr)
    return 0


def cmd_trace_jobs(args: argparse.Namespace) -> int:
    """List jobs that have recorded span trees."""
    from .host.ledger import RunLedger

    ledger = RunLedger(args.ledger)
    try:
        jobs = ledger.span_jobs()
        count = ledger.spans_count()
    finally:
        ledger.close()
    for job_id in jobs:
        print(job_id)
    print(f"{len(jobs)} traced jobs, {count} spans")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tracer",
        description="TRACER: load-controllable trace replay for storage "
        "energy-efficiency evaluation (CLUSTER 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="collect synthetic traces into a repository")
    _add_device_args(p)
    p.add_argument("repository", help="repository directory")
    p.add_argument("--duration", type=float, default=2.0, help="seconds per trace")
    p.add_argument("--limit", type=int, default=0, help="collect only first N modes")
    p.add_argument("--overwrite", action="store_true")
    p.set_defaults(func=cmd_collect)

    p = sub.add_parser("convert", help="convert HP .srt text trace to .replay")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("--srt-device", type=int, default=None,
                   help="keep only this SRT device number")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("stats", help="print trace statistics (Table III style)")
    p.add_argument("trace")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("replay", help="replay a trace at a load proportion")
    _add_device_args(p)
    p.add_argument("trace")
    p.add_argument("--load", type=float, default=100.0, help="load percent (10..100)")
    p.add_argument("--cycle", type=float, default=1.0, help="sampling cycle seconds")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="inter-arrival intensity scale (e.g. 2.0 = 200%%)")
    p.add_argument("--engine", choices=("auto", "event", "kernel"),
                   default="auto",
                   help="replay engine: auto picks the analytical kernel "
                   "when the run qualifies, else the event engine")
    p.add_argument("--live", action="store_true",
                   help="stream one line per sampling cycle (GUI stand-in)")
    p.add_argument("--stream-interval", type=float, default=0.0,
                   help="emit interval frames every N sim seconds "
                   "(0 = off; with --live, frames replace cycle rows)")
    p.add_argument("--frames", default="",
                   help="write streamed interval frames to this JSONL file")
    p.add_argument("--flightrec", default="",
                   help="arm the flight recorder to dump here on failure")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("sweep", help="replay a trace at 10%%..100%% load levels")
    _add_device_args(p)
    p.add_argument("trace")
    p.add_argument("--database", default="", help="sqlite file for records")
    p.add_argument("--repository", default="", help="trace repository directory")
    p.add_argument("--grid", action="store_true",
                   help="grid-fused sweep: evaluate the whole "
                   "(load x time-scale) matrix as one batched kernel "
                   "computation")
    p.add_argument("--loads", default="0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0",
                   help="comma-separated load proportions (with --grid)")
    p.add_argument("--time-scales", default="1.0",
                   help="comma-separated time-scale factors (with --grid)")
    p.add_argument("--engine", choices=("auto", "event", "kernel"),
                   default="auto", help="engine for grid cells (with --grid)")
    p.add_argument("--ledger", default="",
                   help="record the grid run (parent + per-cell rows) in "
                   "this sqlite ledger (with --grid)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("repo", help="list a trace repository")
    p.add_argument("repository")
    p.set_defaults(func=cmd_repo)

    p = sub.add_parser("profile", help="characterise a trace (distributions)")
    p.add_argument("trace")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "compare", help="statistical similarity of two traces (e.g. "
        "original vs filtered)"
    )
    p.add_argument("original")
    p.add_argument("manipulated")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("slice", help="cut a time window out of a trace")
    p.add_argument("trace")
    p.add_argument("output")
    p.add_argument("--start", type=float, default=0.0, help="window start (s)")
    p.add_argument("--end", type=float, required=True, help="window end (s)")
    p.set_defaults(func=cmd_slice)

    p = sub.add_parser(
        "fit", help="remap trace addresses into a smaller device"
    )
    p.add_argument("trace")
    p.add_argument("output")
    p.add_argument("capacity_sectors", type=int)
    p.add_argument("--mode", choices=["scale", "wrap"], default="scale")
    p.set_defaults(func=cmd_fit)

    p = sub.add_parser(
        "serve", help="run a workload-generator node (TCP server, Fig. 3)"
    )
    _add_device_args(p)
    p.add_argument("repository", help="trace repository to serve from")
    p.add_argument("--bind", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed on start)")
    p.add_argument("--node-id", default="generator-0")
    p.add_argument("--max-tests", type=int, default=0,
                   help="exit after serving N tests (0 = run until Ctrl-C)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "headroom",
        help="bisect the intensity a device sustains under a response SLO",
    )
    _add_device_args(p)
    p.add_argument("trace")
    p.add_argument("--slo-ms", type=float, default=50.0,
                   help="mean-response SLO in milliseconds")
    p.add_argument("--metric", choices=["mean", "p95"], default="mean")
    p.add_argument("--max-intensity", type=float, default=64.0)
    p.set_defaults(func=cmd_headroom)

    p = sub.add_parser(
        "telemetry",
        help="replay a trace with instrumentation on and dump metrics",
    )
    _add_device_args(p)
    p.add_argument("trace")
    p.add_argument("--load", type=float, default=100.0, help="load percent (10..100)")
    p.add_argument("--cycle", type=float, default=1.0, help="sampling cycle seconds")
    p.add_argument("--time-scale", type=float, default=1.0)
    p.add_argument("--timers", action="store_true",
                   help="include wall-clock profiling timers (non-deterministic)")
    p.add_argument("--jsonl", default="", help="write JSON-lines metrics here")
    p.add_argument("--prometheus", default="",
                   help="write Prometheus text-format metrics here")
    p.set_defaults(func=cmd_telemetry)

    p = sub.add_parser(
        "watch",
        help="live view of a remote replay (streamed interval frames)",
    )
    p.add_argument("host", help="generator node address")
    p.add_argument("port", type=int, help="generator node port")
    p.add_argument("--request-size", type=int, default=4096)
    p.add_argument("--random", type=float, default=0.0,
                   help="random ratio (0..1)")
    p.add_argument("--read", type=float, default=0.5,
                   help="read ratio (0..1)")
    p.add_argument("--load", type=float, default=100.0,
                   help="load percent (10..100)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="interval-frame cadence in sim seconds")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--label", default="watch")
    p.add_argument("--ledger", default="",
                   help="append this run to a sqlite run ledger")
    p.add_argument("--frames-dir", default="",
                   help="persist streamed frames as JSONL in this directory")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "flightrec", help="flight recorder (bounded event ring)"
    )
    fr_sub = p.add_subparsers(dest="flightrec_command", required=True)
    fp = fr_sub.add_parser("dump", help="dump the in-process ring to JSONL")
    fp.add_argument("--output", default="flightrec.jsonl")
    fp.set_defaults(func=cmd_flightrec_dump)

    p = sub.add_parser("runs", help="query the run ledger")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    rp = runs_sub.add_parser("list", help="list runs, newest first")
    rp.add_argument("ledger", help="ledger sqlite file")
    rp.add_argument("--trace", default="", help="filter by trace label")
    rp.add_argument("--origin", default="",
                    help="filter by origin, exact or prefix "
                         "(local / remote:<node> / fleet / "
                         "fleet/job:<id>)")
    rp.add_argument("--limit", type=int, default=0)
    rp.set_defaults(func=cmd_runs_list)
    rp = runs_sub.add_parser("show", help="print one run record as JSON")
    rp.add_argument("ledger")
    rp.add_argument("run_id", help="run id (or unique prefix)")
    rp.set_defaults(func=cmd_runs_show)
    rp = runs_sub.add_parser("diff", help="compare two runs' summary metrics")
    rp.add_argument("ledger")
    rp.add_argument("run_a")
    rp.add_argument("run_b")
    rp.set_defaults(func=cmd_runs_diff)

    p = sub.add_parser(
        "fleet", help="replay-as-a-service: multi-tenant evaluation fleet"
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    fp = fleet_sub.add_parser("serve", help="run a fleet endpoint")
    fp.add_argument("--trace", action="append", default=[],
                    help=".replay trace file to serve (repeatable; "
                         "the label is the file stem)")
    fp.add_argument("--workers", type=int, default=4)
    fp.add_argument("--worker-mode", default="thread",
                    choices=("thread", "process"))
    fp.add_argument("--bind", default="127.0.0.1")
    fp.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral, printed on start)")
    fp.add_argument("--db", default="",
                    help="run-ledger sqlite file (default: in-memory)")
    fp.add_argument("--quota", type=int, default=4,
                    help="default per-tenant in-flight quota")
    fp.add_argument("--aging-rate", type=float, default=0.1,
                    help="priority gained per tick while waiting")
    fp.add_argument("--tenant", action="append", default=[],
                    help="pre-register name[:quota[:priority]] (repeatable)")
    fp.add_argument("--max-jobs", type=int, default=0,
                    help="exit after N jobs complete (0 = until Ctrl-C)")
    fp.add_argument("--tracing", action="store_true",
                    help="record a distributed span tree per job "
                         "(also TRACER_DTRACE=1)")
    fp.add_argument("--heartbeat-interval", type=float, default=0.0,
                    help="probe workers every N seconds (0 = off); silent "
                         "workers go suspect, then dead")
    fp.add_argument("--heartbeat-timeout", type=float, default=5.0,
                    help="per-probe reply deadline in seconds")
    fp.set_defaults(func=cmd_fleet_serve)
    fp = fleet_sub.add_parser(
        "top", help="live fleet view (queue, workers, rolling IOPS/W)"
    )
    fp.add_argument("--host", default="127.0.0.1")
    fp.add_argument("--port", type=int, required=True)
    fp.add_argument("--timeout", type=float, default=30.0)
    fp.add_argument("--interval", type=float, default=2.0,
                    help="poll cadence in seconds")
    fp.add_argument("--iterations", type=int, default=0,
                    help="exit after N repaints (0 = until Ctrl-C)")
    fp.add_argument("--prometheus", default="",
                    help="also write the snapshot in Prometheus text "
                         "format to this file each repaint")
    fp.add_argument("--jsonl", default="",
                    help="also write the snapshot as JSONL to this file "
                         "each repaint")
    fp.set_defaults(func=cmd_fleet_top)
    for name, fn in (("submit", cmd_fleet_submit),
                     ("status", cmd_fleet_status),
                     ("drain", cmd_fleet_drain)):
        fp = fleet_sub.add_parser(name, help=f"{name} against a fleet endpoint")
        fp.add_argument("--host", default="127.0.0.1")
        fp.add_argument("--port", type=int, required=True)
        fp.add_argument("--timeout", type=float, default=120.0)
        if name == "submit":
            fp.add_argument("--spec-json", default="",
                            help="full job spec as JSON (overrides flags)")
            fp.add_argument("--kind", default="replay",
                            choices=("replay", "grid", "search"))
            fp.add_argument("--job-trace", default="",
                            help="trace label on the fleet")
            _add_device_args(fp)
            fp.add_argument("--load", type=float, default=1.0)
            fp.add_argument("--seed", type=int, default=0)
            fp.add_argument("--engine", default="auto",
                            choices=("auto", "event", "analytical"))
            fp.add_argument("--policies", default="",
                            help="';'-separated policy specs (search jobs)")
            fp.add_argument("--tenant", default="default")
            fp.add_argument("--priority", type=float, default=0.0)
            fp.add_argument("--wait", action="store_true",
                            help="block until the result and print it")
            fp.add_argument("--full", action="store_true",
                            help="print the full result payload")
        fp.set_defaults(func=fn)

    p = sub.add_parser(
        "trace", help="distributed traces recorded by a tracing fleet"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    tp = trace_sub.add_parser("show", help="render one job's span tree")
    tp.add_argument("ledger", help="run-ledger sqlite file")
    tp.add_argument("job_id", help="fleet job id (or unique prefix)")
    tp.set_defaults(func=cmd_trace_show)
    tp = trace_sub.add_parser("jobs", help="list jobs with recorded spans")
    tp.add_argument("ledger", help="run-ledger sqlite file")
    tp.set_defaults(func=cmd_trace_jobs)

    p = sub.add_parser(
        "search",
        help="energy-policy Pareto search over a fused replay grid",
    )
    _add_device_args(p)
    p.add_argument("trace")
    p.add_argument("--policies", default="maid,drpm",
                   help="comma-separated policy specs, e.g. "
                   "'maid:idle_timeout=5,drpm,pdc' (a baseline is always "
                   "evaluated implicitly)")
    p.add_argument("--loads", default="0.5,1.0",
                   help="comma-separated load proportions")
    p.add_argument("--time-scales", default="1.0",
                   help="comma-separated time-scale factors")
    p.add_argument("--cycle", type=float, default=1.0,
                   help="sampling cycle seconds")
    p.add_argument("--engine", choices=("auto", "event", "kernel"),
                   default="auto", help="engine for the base replay grid")
    p.add_argument("--top", type=int, default=10,
                   help="ranking rows in the report")
    p.add_argument("--frontier", action="store_true",
                   help="print only the Pareto-frontier cells, one per line")
    p.add_argument("--verify", action="store_true",
                   help="re-derive every cell per point (kernel/event) and "
                   "fail on any bitwise metric difference")
    p.add_argument("--output", default="",
                   help="write the full markdown report to this file")
    p.add_argument("--json", default="",
                   help="write the full search outcome as JSON to this file")
    p.add_argument("--ledger", default="",
                   help="record the search (parent + per-cell rows) in this "
                   "sqlite ledger")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("report", help="markdown report from a results database")
    p.add_argument("database")
    p.add_argument("--output", default="", help="write to file instead of stdout")
    p.add_argument("--title", default="TRACER evaluation")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("export", help="export database records to CSV")
    p.add_argument("database")
    p.add_argument("csv")
    p.set_defaults(func=cmd_export)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .telemetry.flightrec import install_excepthook

    # A crash in any subcommand dumps the flight recorder when armed
    # (TRACER_FLIGHTREC=<path> or a --flightrec flag).
    install_excepthook()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

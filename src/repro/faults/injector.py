"""The fault injector: a transparent faulty wrapper for any device.

:class:`FaultInjector` sits between the replay engine and the device
under test.  The clean path is untouched — submissions (including the
packed ``submit_slice`` fast path) are delegated to the wrapped device —
and faults act on *completions*: a completion that a fault affects is
re-delivered later with its ``finish_time`` moved, so injected latency
shows up in every downstream measurement (monitor samples, response
times, the power window of the run) exactly as a real fault would.

Determinism: every injected delay is a pure function of the schedule and
of simulation state that is itself deterministic, so two runs with the
same seed produce byte-identical results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import FaultConfigError
from ..sim.engine import Simulator
from ..storage.array import DiskArray
from ..storage.base import Completion, CompletionCallback, StorageDevice
from ..trace.record import READ
from .schedule import FaultEvent, FaultKind, FaultSchedule

#: Cap on the per-run event log; counters stay exact beyond it.
MAX_LOGGED_EVENTS = 1000


class FaultInjector(StorageDevice):
    """Wrap ``inner`` and apply a :class:`FaultSchedule` to its traffic.

    Parameters
    ----------
    inner:
        The device under test.  Disk-failure faults additionally require
        it to be a :class:`~repro.storage.array.DiskArray`.
    schedule:
        What to inject.  An empty schedule makes the wrapper a strict
        pass-through (no per-request overhead beyond one ``if``).
    """

    def __init__(
        self,
        inner: StorageDevice,
        schedule: FaultSchedule,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name if name is not None else f"faulty:{inner.name}")
        self.inner = inner
        self.schedule = schedule
        self.fault_events: List[FaultEvent] = []
        self.counters: Dict[str, int] = {
            "sector_errors": 0,
            "slowdown_delayed": 0,
            "stuck_held": 0,
            "disk_failures": 0,
        }
        self._bad_starts: Optional[np.ndarray] = None
        self._bad_ends: Optional[np.ndarray] = None
        self._armed_for: Optional[Simulator] = None
        self._windows_logged: set = set()
        self._last_cb: Optional[CompletionCallback] = None
        self._last_wrapped: Optional[CompletionCallback] = None
        # Flight recording is always on (the ring is bounded and costs
        # nothing while empty): every injected occurrence lands in the
        # forensic record even when telemetry is disabled.  Event ids
        # are a per-run counter so identically seeded runs log
        # identical ids.
        from ..telemetry.flightrec import get_flight_recorder

        self._flightrec = get_flight_recorder()
        self._event_seq = 0
        # Construction-time telemetry gate; the fault path is never on
        # the perf-gated clean path, so guarded increments suffice here.
        from ..telemetry import get_registry

        reg = get_registry()
        self._tele = reg if reg.enabled else None
        if self._tele is not None:
            self._tele_delays = reg.counter("fault.delays", device=self.name)
            self._tele_disk_failures = reg.counter(
                "fault.disk_failures", device=self.name
            )
            self._tele_delay_hist = reg.histogram(
                "fault.delay_seconds", device=self.name
            )

    # -- Device interface --------------------------------------------------

    @property
    def capacity_sectors(self) -> int:
        return self.inner.capacity_sectors

    def energy_between(self, t0: float, t1: float) -> float:
        return self.inner.energy_between(t0, t1)

    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        self.inner.attach(sim)
        if self._armed_for is sim:
            return
        self._armed_for = sim
        self._last_cb = None
        self._last_wrapped = None
        self._event_seq = 0
        spec = self.schedule.sector_errors
        if spec is not None and spec.count:
            starts = self.schedule.resolve_bad_extents(self.capacity_sectors)
            self._bad_starts = starts
            self._bad_ends = starts + spec.extent_sectors
        for fault in self.schedule.disk_failures:
            if not isinstance(self.inner, DiskArray):
                raise FaultConfigError(
                    f"{self.name}: disk-failure faults need a DiskArray "
                    f"target, not {type(self.inner).__name__}"
                )
            if not 0 <= fault.member < len(self.inner.disks):
                raise FaultConfigError(
                    f"{self.name}: no member {fault.member} to fail"
                )
            sim.schedule(fault.at, self._fire_disk_fail, fault, priority=0)

    def submit(self, package, on_complete: CompletionCallback) -> None:
        if self.schedule.empty:
            self.inner.submit(package, on_complete)
        else:
            self.inner.submit(package, self._wrapped(on_complete))

    def submit_slice(self, packed, start, stop, on_complete) -> None:
        # The packed fast path stays fast: the slice goes to the inner
        # device's vectorised submission unchanged; faults only add a
        # constant amount of work per *completion*.
        if self.schedule.empty:
            self.inner.submit_slice(packed, start, stop, on_complete)
        else:
            self.inner.submit_slice(
                packed, start, stop, self._wrapped(on_complete)
            )

    # -- Fault machinery ---------------------------------------------------

    def _wrapped(self, cb: CompletionCallback) -> CompletionCallback:
        if cb is self._last_cb:
            return self._last_wrapped  # type: ignore[return-value]

        def deliver(completion: Completion) -> None:
            self._deliver(completion, cb)

        self._last_cb = cb
        self._last_wrapped = deliver
        return deliver

    def _deliver(self, completion: Completion, cb: CompletionCallback) -> None:
        sim = self._require_sim()
        now = completion.finish_time
        extra = 0.0
        pkg = completion.package
        if (
            self._bad_starts is not None
            and len(self._bad_starts)
            and pkg.op == READ
        ):
            hit = self._bad_extent_hit(pkg.sector, pkg.end_sector)
            if hit is not None:
                spec = self.schedule.sector_errors
                assert spec is not None
                extra += spec.retry_penalty
                self.counters["sector_errors"] += 1
                self._log(
                    FaultKind.SECTOR_ERROR,
                    now,
                    {"sector": int(pkg.sector), "extent_start": int(hit)},
                )
        for idx, window in enumerate(self.schedule.slowdowns):
            if window.start <= now < window.end:
                extra += (window.factor - 1.0) * completion.service_time
                self.counters["slowdown_delayed"] += 1
                self._log_window(("slowdown", idx), FaultKind.SLOWDOWN, window)
        target = now + extra
        for idx, window in enumerate(self.schedule.stuck_windows):
            if window.start <= target < window.end:
                target = window.end
                self.counters["stuck_held"] += 1
                self._log_window(("stuck", idx), FaultKind.STUCK, window)
        if target <= now:
            cb(completion)
        else:
            if self._tele is not None:
                self._tele_delays.inc()
                self._tele_delay_hist.observe(target - now)
                self._tele.spans.record(
                    "fault.delay", now, target, device=self.name
                )
            sim.schedule(target, self._deliver_late, completion, target, cb,
                         priority=1)

    def _deliver_late(
        self, completion: Completion, target: float, cb: CompletionCallback
    ) -> None:
        cb(replace(completion, finish_time=target))

    def _bad_extent_hit(self, sector: int, end_sector: int) -> Optional[int]:
        """Return the start of a bad extent overlapping [sector, end)."""
        assert self._bad_starts is not None and self._bad_ends is not None
        i = int(np.searchsorted(self._bad_starts, end_sector, side="left"))
        # Extents are fixed-length and sorted, so only the nearest extent
        # starting before ``end_sector`` can overlap.
        if i and self._bad_ends[i - 1] > sector:
            return int(self._bad_starts[i - 1])
        return None

    def _fire_disk_fail(self, fault) -> None:
        array = self.inner
        assert isinstance(array, DiskArray)
        if array.failed_disk == fault.member:
            return  # re-armed schedule on a device that already failed
        array.fail_disk(fault.member)
        self.counters["disk_failures"] += 1
        if self._tele is not None:
            self._tele_disk_failures.inc()
        sim = self._require_sim()
        self._log(
            FaultKind.DISK_FAIL,
            sim.now,
            {"member": fault.member, "device": array.disks[fault.member].name},
        )
        # A dead member is the canonical forensic moment: flush the
        # flight recorder (if armed) so what led up to the failure is
        # on disk before degraded service even begins.
        from ..telemetry.flightrec import autodump

        autodump("disk_failure")

    def _log_window(self, key, kind: FaultKind, window) -> None:
        """Log a window fault once, on its first affected completion."""
        if key in self._windows_logged:
            return
        self._windows_logged.add(key)
        detail = {"start": window.start, "duration": window.duration}
        if kind is FaultKind.SLOWDOWN:
            detail["factor"] = window.factor
        sim = self._require_sim()
        self._log(kind, sim.now, detail)

    def _log(self, kind: FaultKind, time: float, detail: Dict) -> int:
        """Record one occurrence; returns its per-run event id.

        The flight recorder always sees the event (its ring is bounded);
        the per-run ``fault_events`` list caps at
        :data:`MAX_LOGGED_EVENTS` while counters stay exact.
        """
        event_id = self._event_seq
        self._event_seq += 1
        self._flightrec.record(
            f"fault.{kind.value}", time,
            event_id=event_id, device=self.name, detail=dict(detail),
        )
        if len(self.fault_events) < MAX_LOGGED_EVENTS:
            self.fault_events.append(
                FaultEvent(
                    time=time, kind=kind, device=self.name, detail=detail,
                    event_id=event_id,
                )
            )
        return event_id


def unwrap(device: StorageDevice) -> StorageDevice:
    """Peel fault injectors off a device (for power/thermal plumbing)."""
    while isinstance(device, FaultInjector):
        device = device.inner
    return device

"""Deterministic fault injection for replay runs.

TRACER's numbers are only trustworthy if the harness can be validated
against known-ground-truth behaviour, including behaviour under partial
failure.  This package provides:

* :mod:`repro.faults.schedule` — seeded, declarative fault schedules
  (:class:`FaultSchedule`) describing latent sector errors, transient
  slowdowns, stuck-busy windows, and whole-disk failures at a fixed
  simulated time;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, a transparent
  :class:`~repro.storage.base.StorageDevice` wrapper that applies a
  schedule to any device (including :class:`~repro.storage.array.DiskArray`)
  and logs every injected fault as a :class:`FaultEvent`;
* :mod:`repro.faults.network` — :class:`FlakyLink`, a deterministic TCP
  fault proxy for exercising the distributed protocol's retry paths.

All injection is a pure function of the schedule's seed and the
simulation clock, so a faulty run is exactly as reproducible as a clean
one.
"""

from .injector import FaultInjector
from .network import FlakyLink, LinkFault
from .schedule import (
    DiskFailFault,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    SectorErrorFault,
    SlowdownFault,
    StuckFault,
)

__all__ = [
    "DiskFailFault",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FlakyLink",
    "LinkFault",
    "SectorErrorFault",
    "SlowdownFault",
    "StuckFault",
]

"""Seeded fault schedules.

A :class:`FaultSchedule` is a declarative, immutable description of every
fault a run will inject.  Where a fault needs randomness (the placement
of latent bad sectors, the composition of a generated schedule), that
randomness is drawn from streams derived from the schedule's seed via
:func:`repro.rng.spawn` — two schedules built from the same seed are
equal, and two runs driven by equal schedules are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import FaultConfigError
from ..rng import spawn


class FaultKind(Enum):
    """Categories of injected faults (the ``kind`` of a logged event)."""

    SECTOR_ERROR = "sector_error"
    SLOWDOWN = "slowdown"
    STUCK = "stuck"
    DISK_FAIL = "disk_fail"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence, logged on the simulation clock."""

    time: float
    kind: FaultKind
    device: str
    detail: Dict[str, Any] = field(default_factory=dict)
    event_id: int = -1
    """Per-run injection sequence number, matching the ``event_id``
    field of the flight-recorder entry for the same occurrence (so a
    result's fault log joins against a forensic dump).  ``-1`` for
    events constructed outside an injector."""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (stored in results, crosses the wire protocol)."""
        return {
            "time": self.time,
            "kind": self.kind.value,
            "device": self.device,
            "detail": dict(self.detail),
            "event_id": self.event_id,
        }


@dataclass(frozen=True)
class SectorErrorFault:
    """Latent sector errors: seeded bad extents that penalise reads.

    ``count`` bad extents of ``extent_sectors`` sectors each are placed
    uniformly (from the schedule seed) over the device's address space.
    A read overlapping a bad extent completes, but only after the drive's
    internal retry/ECC recovery — modelled as ``retry_penalty`` extra
    seconds of response time.  Writes are unaffected (drives remap on
    write).
    """

    count: int
    extent_sectors: int = 8
    retry_penalty: float = 0.05

    def __post_init__(self) -> None:
        if self.count < 0:
            raise FaultConfigError(f"count must be >= 0, got {self.count}")
        if self.extent_sectors < 1:
            raise FaultConfigError(
                f"extent_sectors must be >= 1, got {self.extent_sectors}"
            )
        if self.retry_penalty < 0:
            raise FaultConfigError(
                f"retry_penalty must be >= 0, got {self.retry_penalty}"
            )


@dataclass(frozen=True)
class SlowdownFault:
    """A transient slowdown window.

    Requests whose service completes inside ``[start, start + duration)``
    take ``factor`` times their service time (the extra delay is added to
    the delivered completion).  Models thermal throttling, background
    media scans, and neighbour interference.
    """

    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultConfigError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise FaultConfigError(f"duration must be > 0, got {self.duration}")
        if self.factor < 1.0:
            raise FaultConfigError(f"factor must be >= 1, got {self.factor}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class StuckFault:
    """A stuck-busy window: the device freezes, then recovers.

    Any request that would complete inside ``[start, start + duration)``
    is held and completes at the window's end — the classic firmware
    stall / bus reset timeout.
    """

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultConfigError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise FaultConfigError(f"duration must be > 0, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class DiskFailFault:
    """Whole-disk failure of one array member at simulated time ``at``.

    Only meaningful when the injected device is a
    :class:`~repro.storage.array.DiskArray`: at ``at`` the member is
    marked failed and the array plans all subsequent I/O in degraded
    reconstruct-read mode (RAID-5).  Requests already in flight complete
    normally, as they would against a controller that detects the
    failure on the next dispatch.
    """

    at: float
    member: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultConfigError(f"at must be >= 0, got {self.at}")
        if self.member < 0:
            raise FaultConfigError(f"member must be >= 0, got {self.member}")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything one run will inject, reproducible from ``seed``.

    The seed drives both the randomised parts of the schedule itself
    (bad-extent placement) and nothing else — timed faults are explicit,
    so a schedule is fully inspectable before the run.
    """

    seed: int = 0
    sector_errors: Optional[SectorErrorFault] = None
    slowdowns: Tuple[SlowdownFault, ...] = ()
    stuck_windows: Tuple[StuckFault, ...] = ()
    disk_failures: Tuple[DiskFailFault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        object.__setattr__(self, "stuck_windows", tuple(self.stuck_windows))
        object.__setattr__(self, "disk_failures", tuple(self.disk_failures))
        members = [f.member for f in self.disk_failures]
        if len(set(members)) != len(members):
            raise FaultConfigError(
                "at most one DiskFailFault per member is supported"
            )

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing (wrapper is a no-op)."""
        return (
            (self.sector_errors is None or self.sector_errors.count == 0)
            and not self.slowdowns
            and not self.stuck_windows
            and not self.disk_failures
        )

    def resolve_bad_extents(self, capacity_sectors: int) -> np.ndarray:
        """Place the latent bad extents on a device of the given size.

        Returns the sorted int64 array of extent start sectors (each
        extent spans ``extent_sectors`` sectors).  Deterministic: the
        placement depends only on the schedule seed, the spec, and the
        capacity.
        """
        spec = self.sector_errors
        if spec is None or spec.count == 0:
            return np.empty(0, dtype=np.int64)
        if capacity_sectors <= spec.extent_sectors:
            raise FaultConfigError(
                f"device of {capacity_sectors} sectors cannot hold a "
                f"{spec.extent_sectors}-sector bad extent"
            )
        rng = spawn(self.seed, "faults", "sector-errors")
        starts = rng.integers(
            0, capacity_sectors - spec.extent_sectors, size=spec.count
        )
        return np.sort(starts.astype(np.int64))

    @classmethod
    def generate(
        cls,
        seed: int,
        duration: float,
        n_members: int = 0,
        max_slowdowns: int = 2,
        sector_error_count: int = 4,
    ) -> "FaultSchedule":
        """Draw a random-but-reproducible schedule for a run of ``duration``.

        The composition (how many windows, where, which member fails) is
        a pure function of ``seed``; calling twice with the same
        arguments returns equal schedules.  ``n_members > 0`` enables a
        possible member failure (for array targets).
        """
        if duration <= 0:
            raise FaultConfigError(f"duration must be > 0, got {duration}")
        if n_members < 0:
            raise FaultConfigError(f"n_members must be >= 0, got {n_members}")
        rng = spawn(seed, "faults", "generate")
        slowdowns = tuple(
            SlowdownFault(
                start=float(rng.uniform(0.0, duration * 0.8)),
                duration=float(rng.uniform(duration * 0.05, duration * 0.25)),
                factor=float(rng.uniform(1.5, 4.0)),
            )
            for _ in range(int(rng.integers(0, max_slowdowns + 1)))
        )
        stuck: Tuple[StuckFault, ...] = ()
        if rng.random() < 0.5:
            stuck = (
                StuckFault(
                    start=float(rng.uniform(0.0, duration * 0.8)),
                    duration=float(rng.uniform(duration * 0.05, duration * 0.2)),
                ),
            )
        failures: Tuple[DiskFailFault, ...] = ()
        if n_members > 0 and rng.random() < 0.5:
            failures = (
                DiskFailFault(
                    at=float(rng.uniform(duration * 0.2, duration * 0.8)),
                    member=int(rng.integers(0, n_members)),
                ),
            )
        sector = (
            SectorErrorFault(
                count=sector_error_count,
                retry_penalty=float(rng.uniform(0.01, 0.05)),
            )
            if sector_error_count
            else None
        )
        return cls(
            seed=seed,
            sector_errors=sector,
            slowdowns=slowdowns,
            stuck_windows=stuck,
            disk_failures=failures,
        )

"""Deterministic TCP fault proxy for the host↔generator channel.

:class:`FlakyLink` listens on an ephemeral loopback port and forwards
byte streams to a real target (typically a
:class:`~repro.distributed.generator_node.GeneratorNode`), injecting one
:class:`LinkFault` per accepted connection, in order.  Because a
retrying client dials connections strictly sequentially, the fault a
given attempt sees is deterministic — which is what lets the fuzz tests
assert exact retry budgets.

After the plan is exhausted every further connection is forwarded
cleanly, so "drop the first N attempts" scenarios converge.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import FaultConfigError


@dataclass(frozen=True)
class LinkFault:
    """Behaviour of one proxied connection.

    Parameters
    ----------
    refuse:
        Close the client connection immediately, before forwarding
        anything (connection-refused-like failure).
    drop_c2s_after:
        Kill the connection after this many client→server bytes.
    drop_s2c_after:
        Kill the connection after this many server→client bytes (lets a
        request reach — and execute on — the server, then loses the
        reply: the idempotent-retry case).
    garble_reply:
        XOR-corrupt the first 4 bytes of the server's reply (the frame
        length prefix), turning it into a malformed/oversized frame.
    """

    refuse: bool = False
    drop_c2s_after: Optional[int] = None
    drop_s2c_after: Optional[int] = None
    garble_reply: bool = False

    def __post_init__(self) -> None:
        for label, value in (
            ("drop_c2s_after", self.drop_c2s_after),
            ("drop_s2c_after", self.drop_s2c_after),
        ):
            if value is not None and value < 0:
                raise FaultConfigError(f"{label} must be >= 0, got {value}")


CLEAN = LinkFault()


class FlakyLink:
    """A fault-injecting TCP proxy in front of one target address."""

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: Sequence[LinkFault] = (),
        host: str = "127.0.0.1",
    ) -> None:
        self.target = (target_host, target_port)
        self.plan = list(plan)
        self.connections_served = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "FlakyLink":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "FlakyLink":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- Proxying ----------------------------------------------------------

    def _next_fault(self) -> LinkFault:
        with self._lock:
            index = self.connections_served
            self.connections_served += 1
        return self.plan[index] if index < len(self.plan) else CLEAN

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                break
            if self._stop.is_set():
                client.close()
                break
            fault = self._next_fault()
            if fault.refuse:
                client.close()
                continue
            threading.Thread(
                target=self._serve, args=(client, fault), daemon=True
            ).start()

    def _serve(self, client: socket.socket, fault: LinkFault) -> None:
        try:
            upstream = socket.create_connection(self.target, timeout=5.0)
        except OSError:
            client.close()
            return
        dead = threading.Event()

        def kill() -> None:
            dead.set()
            for sock in (client, upstream):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()

        def pump(
            src: socket.socket,
            dst: socket.socket,
            budget: Optional[int],
            garble_first: bool,
        ) -> None:
            forwarded = 0
            first = True
            while not dead.is_set():
                try:
                    data = src.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                if garble_first and first:
                    head = bytes(b ^ 0xFF for b in data[:4])
                    data = head + data[4:]
                    first = False
                if budget is not None and forwarded + len(data) > budget:
                    take = budget - forwarded
                    if take > 0:
                        try:
                            dst.sendall(data[:take])
                        except OSError:
                            pass
                    kill()
                    return
                try:
                    dst.sendall(data)
                except OSError:
                    break
                forwarded += len(data)
            kill()

        c2s = threading.Thread(
            target=pump,
            args=(client, upstream, fault.drop_c2s_after, False),
            daemon=True,
        )
        s2c = threading.Thread(
            target=pump,
            args=(upstream, client, fault.drop_s2c_after, fault.garble_reply),
            daemon=True,
        )
        c2s.start()
        s2c.start()

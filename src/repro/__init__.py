"""TRACER — a load-controllable trace replay framework for evaluating the
energy efficiency of mass storage systems.

Reproduction of Liu et al., *TRACER: A Trace Replay Tool to Evaluate
Energy-Efficiency of Mass Storage Systems*, IEEE CLUSTER 2010.

Quickstart::

    from repro import (
        WorkloadMode, build_hdd_raid5, IometerGenerator, TraceCollector,
        Simulator, replay_trace,
    )

    mode = WorkloadMode(request_size=4096, random_ratio=0.5, read_ratio=0.0)
    sim = Simulator()
    array = build_hdd_raid5(6)
    array.attach(sim)
    collector = TraceCollector(label="demo")
    IometerGenerator(mode, seed=1).run(sim, array, 2.0, collector=collector)
    trace = collector.finish()

    result = replay_trace(trace, build_hdd_raid5(6), load_proportion=0.4)
    print(result.iops_per_watt, result.mbps_per_kilowatt)

See ``DESIGN.md`` for the subsystem inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every table and figure.
"""

from .config import (
    LOAD_LEVELS,
    MATRIX_RANDOM_RATIOS,
    MATRIX_READ_RATIOS,
    MATRIX_REQUEST_SIZES,
    ReplayConfig,
    TestRequest,
    WorkloadMode,
)
from .errors import TracerError
from .sim import Simulator
from .trace import (
    Bunch,
    IOPackage,
    READ,
    Trace,
    TraceRepository,
    TraceName,
    WRITE,
    compute_stats,
    read_trace,
    write_trace,
)
from .core import (
    LoadController,
    ProportionalFilter,
    TimeScaler,
    control_accuracy,
    filter_trace,
    load_proportion,
    scale_trace,
)
from .storage import (
    DiskArray,
    HardDiskDrive,
    RaidLevel,
    SolidStateDrive,
    build_hdd_raid5,
    build_ssd_raid5,
)
from .power import HallSensor, MultiChannelMeter, PowerAnalyzer, SensorSpec
from .workload import (
    IometerGenerator,
    TraceCollector,
    build_matrix,
    generate_cello_trace,
    generate_webserver_trace,
    matrix_modes,
)
from .faults import (
    DiskFailFault,
    FaultInjector,
    FaultSchedule,
    SectorErrorFault,
    SlowdownFault,
    StuckFault,
)
from .replay import ReplayResult, ReplaySession, replay_trace
from .metrics import iops_per_watt, mbps_per_kilowatt
from .host import EvaluationHost, ResultsDatabase, TestRecord

__version__ = "1.0.0"

__all__ = [
    "LOAD_LEVELS",
    "MATRIX_RANDOM_RATIOS",
    "MATRIX_READ_RATIOS",
    "MATRIX_REQUEST_SIZES",
    "ReplayConfig",
    "TestRequest",
    "WorkloadMode",
    "TracerError",
    "Simulator",
    "Bunch",
    "IOPackage",
    "READ",
    "WRITE",
    "Trace",
    "TraceRepository",
    "TraceName",
    "compute_stats",
    "read_trace",
    "write_trace",
    "LoadController",
    "ProportionalFilter",
    "TimeScaler",
    "control_accuracy",
    "filter_trace",
    "load_proportion",
    "scale_trace",
    "DiskArray",
    "HardDiskDrive",
    "RaidLevel",
    "SolidStateDrive",
    "build_hdd_raid5",
    "build_ssd_raid5",
    "HallSensor",
    "MultiChannelMeter",
    "PowerAnalyzer",
    "SensorSpec",
    "IometerGenerator",
    "TraceCollector",
    "build_matrix",
    "generate_cello_trace",
    "generate_webserver_trace",
    "matrix_modes",
    "DiskFailFault",
    "FaultInjector",
    "FaultSchedule",
    "SectorErrorFault",
    "SlowdownFault",
    "StuckFault",
    "ReplayResult",
    "ReplaySession",
    "replay_trace",
    "iops_per_watt",
    "mbps_per_kilowatt",
    "EvaluationHost",
    "ResultsDatabase",
    "TestRecord",
    "__version__",
]

"""The paper's combined energy-efficiency metrics.

Zero power reads as zero efficiency rather than a division error: a
device reporting 0 W is a sensor fault, and efficiency curves should
show the hole, not crash the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import WATTS_PER_KILOWATT


def iops_per_watt(iops: float, watts: float) -> float:
    """IO operations per second per Watt (§V-B)."""
    if watts <= 0:
        return 0.0
    return iops / watts


def mbps_per_kilowatt(mbps: float, watts: float) -> float:
    """Megabytes per second per Kilowatt (§V-B)."""
    if watts <= 0:
        return 0.0
    return mbps / (watts / WATTS_PER_KILOWATT)


@dataclass(frozen=True)
class EfficiencyPoint:
    """One (throughput, power) observation with derived efficiencies."""

    iops: float
    mbps: float
    watts: float

    @property
    def iops_per_watt(self) -> float:
        return iops_per_watt(self.iops, self.watts)

    @property
    def mbps_per_kilowatt(self) -> float:
        return mbps_per_kilowatt(self.mbps, self.watts)

"""Cross-run summaries: sweep tables over load levels and workload modes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class RunSummary:
    """One row of a sweep table."""

    label: str
    load_proportion: float
    iops: float
    mbps: float
    mean_response: float
    mean_watts: float
    iops_per_watt: float
    mbps_per_kilowatt: float


def summarize(results: Sequence) -> List[RunSummary]:
    """Convert :class:`~repro.replay.results.ReplayResult`s to summary rows."""
    rows = []
    for r in results:
        rows.append(
            RunSummary(
                label=r.trace_label,
                load_proportion=r.load_proportion,
                iops=r.iops,
                mbps=r.mbps,
                mean_response=r.mean_response,
                mean_watts=r.mean_watts,
                iops_per_watt=r.iops_per_watt,
                mbps_per_kilowatt=r.mbps_per_kilowatt,
            )
        )
    return rows


def format_table(rows: Sequence[RunSummary], title: str = "") -> str:
    """Render summary rows as a fixed-width text table (bench output)."""
    header = (
        f"{'label':<28} {'load%':>6} {'IOPS':>10} {'MBPS':>9} "
        f"{'resp(ms)':>9} {'Watts':>8} {'IOPS/W':>8} {'MBPS/kW':>9}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            f"{r.label:<28} {r.load_proportion * 100:>5.0f}% {r.iops:>10.1f} "
            f"{r.mbps:>9.2f} {r.mean_response * 1000:>9.3f} {r.mean_watts:>8.2f} "
            f"{r.iops_per_watt:>8.2f} {r.mbps_per_kilowatt:>9.1f}"
        )
    return "\n".join(lines)


def linearity(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation — used to verify 'efficiency is linearly
    proportional to I/O load' claims (Fig. 9)."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size < 2 or np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])

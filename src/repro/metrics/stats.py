"""Repeated-run statistics.

The paper replays every trace once per configuration; a careful
evaluation repeats runs across seeds and reports confidence intervals.
This module aggregates repeated measurements — Student-t intervals for
means, plus the paired-comparison helper an A-vs-B experiment needs
(policy comparisons, cache on/off, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from ..errors import TracerError


class StatsError(TracerError):
    """Not enough data for the requested statistic."""


@dataclass(frozen=True)
class MeasurementSummary:
    """Mean with a Student-t confidence interval."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_ci(self) -> float:
        """Half-width over mean (0.05 = ±5 %); inf for a zero mean."""
        if self.mean == 0:
            return math.inf
        return self.ci_halfwidth / abs(self.mean)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.4g} ± {self.ci_halfwidth:.2g} "
            f"({self.confidence * 100:.0f} % CI, n={self.n})"
        )


def summarize_measurements(
    values: Sequence[float], confidence: float = 0.95
) -> MeasurementSummary:
    """Student-t mean CI over repeated measurements."""
    if not 0.0 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0,1), got {confidence}")
    data = np.asarray(values, dtype=np.float64)
    if data.size < 2:
        raise StatsError("need >= 2 measurements for an interval")
    mean = float(data.mean())
    std = float(data.std(ddof=1))
    sem = std / math.sqrt(data.size)
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    return MeasurementSummary(
        n=int(data.size),
        mean=mean,
        std=std,
        ci_low=mean - t * sem,
        ci_high=mean + t * sem,
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """A-vs-B over paired (same-seed) measurements."""

    n: int
    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float

    @property
    def significant(self) -> bool:
        """CI excludes zero (difference is real at the chosen level)."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def compare_paired(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired-t comparison of A minus B (positive = A larger)."""
    xa = np.asarray(a, dtype=np.float64)
    xb = np.asarray(b, dtype=np.float64)
    if xa.size != xb.size:
        raise StatsError("paired comparison needs equal-length samples")
    if xa.size < 2:
        raise StatsError("need >= 2 pairs")
    diff = xa - xb
    summary = summarize_measurements(diff, confidence)
    if np.allclose(diff, diff[0]):
        # Degenerate: zero variance; p-value is 0 or 1 by sign.
        p = 0.0 if diff[0] != 0 else 1.0
    else:
        p = float(_scipy_stats.ttest_rel(xa, xb).pvalue)
    return PairedComparison(
        n=int(xa.size),
        mean_difference=summary.mean,
        ci_low=summary.ci_low,
        ci_high=summary.ci_high,
        p_value=p,
    )


def repeat_experiment(
    run: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Tuple[MeasurementSummary, List[float]]:
    """Run ``run(seed)`` per seed; return (summary, raw values)."""
    if len(seeds) < 2:
        raise StatsError("need >= 2 seeds")
    values = [float(run(seed)) for seed in seeds]
    return summarize_measurements(values, confidence), values

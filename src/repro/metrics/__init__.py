"""Evaluation metrics (paper §V-B).

Throughput (IOPS, MBPS), power (Watt), and the paper's two combined
energy-efficiency metrics: **IOPS/Watt** ("within one second, how many
IO requests can be processed per Watt") and **MBPS/Kilowatt** ("the
amount of data processed per Kilowatt").
"""

from .throughput import ThroughputStats, throughput_from_completions
from .efficiency import iops_per_watt, mbps_per_kilowatt, EfficiencyPoint
from .summary import RunSummary, summarize

__all__ = [
    "ThroughputStats",
    "throughput_from_completions",
    "iops_per_watt",
    "mbps_per_kilowatt",
    "EfficiencyPoint",
    "RunSummary",
    "summarize",
]

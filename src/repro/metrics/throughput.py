"""Throughput aggregation from completion records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..storage.base import Completion


@dataclass(frozen=True)
class ThroughputStats:
    """Aggregate throughput over a measurement window."""

    duration: float
    completed: int
    total_bytes: int
    mean_response: float
    p95_response: float
    max_response: float

    @property
    def iops(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mbps(self) -> float:
        return (self.total_bytes / 1e6) / self.duration if self.duration > 0 else 0.0


def throughput_from_completions(
    completions: Sequence[Completion],
    window_start: float | None = None,
    window_end: float | None = None,
) -> ThroughputStats:
    """Compute throughput over [window_start, window_end].

    Defaults to the span from first submit to last finish.  Completions
    finishing outside the window are excluded.
    """
    if not completions:
        return ThroughputStats(0.0, 0, 0, 0.0, 0.0, 0.0)
    finishes = np.array([c.finish_time for c in completions])
    submits = np.array([c.submit_time for c in completions])
    start = window_start if window_start is not None else float(submits.min())
    end = window_end if window_end is not None else float(finishes.max())
    keep = (finishes >= start) & (finishes <= end)
    kept = [c for c, k in zip(completions, keep) if k]
    if not kept:
        return ThroughputStats(max(end - start, 0.0), 0, 0, 0.0, 0.0, 0.0)
    responses = np.array([c.response_time for c in kept])
    return ThroughputStats(
        duration=max(end - start, 0.0),
        completed=len(kept),
        total_bytes=int(sum(c.package.nbytes for c in kept)),
        mean_response=float(responses.mean()),
        p95_response=float(np.percentile(responses, 95)),
        max_response=float(responses.max()),
    )

"""Device power states.

Only two states matter for the baseline TRACER experiments (disks spin
continuously), but the MAID/DRPM energy-saving extensions transition
through the full set, so the enumeration lives in the power substrate.
"""

from __future__ import annotations

from enum import Enum


class PowerState(Enum):
    """Operational power state of a storage device."""

    ACTIVE = "active"
    """Spinning (HDD) / powered (SSD); can serve I/O immediately."""

    IDLE = "idle"
    """Spinning but not serving I/O.  Same readiness as ACTIVE; devices
    report this distinction for accounting only."""

    STANDBY = "standby"
    """Spun down (HDD): heads parked, spindle stopped.  Serving I/O first
    requires a spin-up transition."""

    SPINNING_UP = "spinning_up"
    """In transition from STANDBY to ACTIVE; draws peak current."""

    @property
    def ready(self) -> bool:
        """Whether a request can start service without a transition."""
        return self in (PowerState.ACTIVE, PowerState.IDLE)

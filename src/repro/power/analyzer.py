"""The sampling power analyzer.

Wraps one measured target (anything exposing ``energy_between``) behind
the interface of the paper's power analyzer: arm it, let it sample every
cycle (default 1 s), stop it, and read back the per-cycle records of
current, voltage, and power (Section III-A1 lists exactly these fields
in the database records).

The analyzer lives on the simulation clock: it schedules its own sampling
events, so replay sessions get synchronised performance/power records
without any polling loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

from ..errors import PowerAnalyzerError
from ..sim.engine import Simulator
from .sensor import HallSensor, SensorSpec, IDEAL_SENSOR


class EnergySource(Protocol):
    """Anything whose energy can be integrated over a window."""

    def energy_between(self, t0: float, t1: float) -> float: ...


@dataclass(frozen=True)
class PowerSample:
    """One sampling cycle's record."""

    start: float
    end: float
    amperes: float
    volts: float
    watts: float
    """Power as the meter reports it (amperes × volts, after sensor error)."""
    true_watts: float
    """Ground-truth mean power over the cycle (simulation only)."""
    energy_joules: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class PowerAnalyzer:
    """Sampled power measurement of one target.

    Parameters
    ----------
    source:
        The measured device (a :class:`~repro.power.model.PowerTimeline`
        or :class:`~repro.power.model.EnergyMeter`).
    sampling_cycle:
        Seconds per sample; the paper's default is 1 s.
    sensor:
        Optional imperfect sensor; default is ideal (exact readings).
    """

    def __init__(
        self,
        source: EnergySource,
        sampling_cycle: float = 1.0,
        sensor: Optional[HallSensor] = None,
    ) -> None:
        if sampling_cycle <= 0:
            raise PowerAnalyzerError(
                f"sampling_cycle must be > 0, got {sampling_cycle}"
            )
        self.source = source
        self.sampling_cycle = float(sampling_cycle)
        self.sensor = sensor if sensor is not None else HallSensor(IDEAL_SENSOR)
        self.samples: List[PowerSample] = []
        self._armed = False
        self._start_time: float | None = None
        self._sim: Simulator | None = None
        self._pending_event = None

    def start(self, sim: Simulator) -> None:
        """Arm the analyzer; first sample completes one cycle from now."""
        if self._armed:
            raise PowerAnalyzerError("analyzer already started")
        self._armed = True
        self._sim = sim
        self._start_time = sim.now
        self.samples = []
        self._schedule_next(sim.now)

    def _schedule_next(self, cycle_start: float) -> None:
        assert self._sim is not None
        self._pending_event = self._sim.schedule(
            cycle_start + self.sampling_cycle, self._take_sample, cycle_start,
            priority=10,
        )

    def _take_sample(self, cycle_start: float) -> None:
        assert self._sim is not None
        now = self._sim.now
        self._record_window(cycle_start, now)
        if self._armed:
            self._schedule_next(now)

    def _record_window(self, t0: float, t1: float) -> None:
        if t1 <= t0:
            return
        energy = self.source.energy_between(t0, t1)
        true_watts = energy / (t1 - t0)
        amps, volts = self.sensor.read(true_watts)
        self.samples.append(
            PowerSample(
                start=t0,
                end=t1,
                amperes=amps,
                volts=volts,
                watts=amps * volts,
                true_watts=true_watts,
                energy_joules=energy,
            )
        )

    def stop(self) -> None:
        """Disarm; a final partial-cycle sample is recorded if non-empty."""
        if not self._armed:
            raise PowerAnalyzerError("analyzer not started")
        self._armed = False
        if self._pending_event is not None:
            # Record the partial window between the last full cycle and now.
            assert self._sim is not None
            cycle_start = self._pending_event.args[0]
            self._pending_event.cancel()
            self._pending_event = None
            if self._sim.now > cycle_start:
                self._record_window(cycle_start, self._sim.now)

    # -- Aggregates ------------------------------------------------------

    @property
    def total_energy(self) -> float:
        """Joules across all recorded samples."""
        return sum(s.energy_joules for s in self.samples)

    @property
    def mean_watts(self) -> float:
        """Time-weighted mean reported power across samples."""
        total_t = sum(s.duration for s in self.samples)
        if total_t == 0:
            return 0.0
        return sum(s.watts * s.duration for s in self.samples) / total_t

    @property
    def mean_true_watts(self) -> float:
        """Time-weighted mean ground-truth power across samples."""
        total_t = sum(s.duration for s in self.samples)
        if total_t == 0:
            return 0.0
        return sum(s.true_watts * s.duration for s in self.samples) / total_t

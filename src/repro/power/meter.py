"""Multichannel power meter (the Kingsin KS706 stand-in).

"The power analyzer has multiple channels that allow the energy
efficiency of multiple storage systems to be tested simultaneously"
(Section III-A3).  :class:`MultiChannelMeter` hosts one
:class:`~repro.power.analyzer.PowerAnalyzer` per channel and exposes the
start/stop/read command surface the evaluation host's messenger module
drives over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import PowerAnalyzerError
from ..sim.engine import Simulator
from .analyzer import EnergySource, PowerAnalyzer, PowerSample
from .sensor import HallSensor


@dataclass(frozen=True)
class ChannelReading:
    """Aggregate result for one channel after a measurement run."""

    channel: int
    sample_count: int
    mean_watts: float
    total_energy_joules: float


class MultiChannelMeter:
    """A bank of independently armed power-measurement channels."""

    def __init__(self, n_channels: int = 4, sampling_cycle: float = 1.0) -> None:
        if n_channels < 1:
            raise PowerAnalyzerError(f"need >= 1 channel, got {n_channels}")
        self.n_channels = n_channels
        self.sampling_cycle = sampling_cycle
        self._sources: Dict[int, EnergySource] = {}
        self._sensors: Dict[int, HallSensor] = {}
        self._analyzers: Dict[int, PowerAnalyzer] = {}
        self._last_samples: Dict[int, List[PowerSample]] = {}
        from ..obslog import get_logger
        from ..telemetry import get_registry

        self._slog = get_logger("power.meter")
        reg = get_registry()
        self._tele = reg if reg.enabled else None
        if self._tele is not None:
            self._tele_starts = reg.counter("meter.channel_starts")
            self._tele_stops = reg.counter("meter.channel_stops")

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self.n_channels:
            raise PowerAnalyzerError(
                f"channel {channel} out of range [0, {self.n_channels})"
            )

    def connect(
        self,
        channel: int,
        source: EnergySource,
        sensor: Optional[HallSensor] = None,
    ) -> None:
        """Clip a channel's sensor loop around a device's supply."""
        self._check_channel(channel)
        if channel in self._analyzers:
            raise PowerAnalyzerError(f"channel {channel} is measuring; stop it first")
        self._sources[channel] = source
        if sensor is not None:
            self._sensors[channel] = sensor

    def start(self, channel: int, sim: Simulator) -> None:
        """Begin sampling on a connected channel."""
        self._check_channel(channel)
        if channel not in self._sources:
            raise PowerAnalyzerError(f"channel {channel} has no connected source")
        if channel in self._analyzers:
            raise PowerAnalyzerError(f"channel {channel} already started")
        analyzer = PowerAnalyzer(
            self._sources[channel],
            sampling_cycle=self.sampling_cycle,
            sensor=self._sensors.get(channel),
        )
        analyzer.start(sim)
        self._analyzers[channel] = analyzer
        self._slog.event("channel_start", time=sim.now, channel=channel)
        if self._tele is not None:
            self._tele_starts.inc()

    def start_all(self, sim: Simulator) -> None:
        """Start every connected, idle channel."""
        for channel in list(self._sources):
            if channel not in self._analyzers:
                self.start(channel, sim)

    def stop(self, channel: int) -> ChannelReading:
        """Stop a channel and return its aggregate reading."""
        self._check_channel(channel)
        analyzer = self._analyzers.pop(channel, None)
        if analyzer is None:
            raise PowerAnalyzerError(f"channel {channel} not started")
        analyzer.stop()
        reading = ChannelReading(
            channel=channel,
            sample_count=len(analyzer.samples),
            mean_watts=analyzer.mean_watts,
            total_energy_joules=analyzer.total_energy,
        )
        self._last_samples[channel] = analyzer.samples
        self._slog.event(
            "channel_stop",
            channel=channel,
            samples=reading.sample_count,
            mean_watts=reading.mean_watts,
            energy_joules=reading.total_energy_joules,
        )
        if self._tele is not None:
            self._tele_stops.inc()
            ch = str(channel)
            self._tele.gauge("meter.mean_watts", channel=ch).set(
                reading.mean_watts
            )
            self._tele.gauge("meter.energy_joules", channel=ch).set(
                reading.total_energy_joules
            )
            self._tele.gauge("meter.sample_count", channel=ch).set(
                reading.sample_count
            )
        return reading

    def stop_all(self) -> List[ChannelReading]:
        """Stop every running channel."""
        return [self.stop(ch) for ch in sorted(self._analyzers)]

    def samples(self, channel: int) -> List[PowerSample]:
        """Per-cycle samples of a running or most recently stopped channel."""
        if channel in self._analyzers:
            return list(self._analyzers[channel].samples)
        stored = self._last_samples.get(channel)
        if stored is None:
            raise PowerAnalyzerError(f"channel {channel} has no samples")
        return list(stored)

"""Power substrate: device power accounting and the simulated analyzer.

Devices record *busy segments* (time interval × power draw) into a
:class:`~repro.power.model.PowerTimeline`; anything outside a busy
segment draws the device's idle power.  The
:class:`~repro.power.analyzer.PowerAnalyzer` samples average power per
cycle exactly the way the paper's Kingsin KS706 meter does — by
integrating energy over the sampling window — and the
:class:`~repro.power.sensor.HallSensor` adds the measurement
imperfections (gain error, offset, noise) of a real magnetic-loop probe.
"""

from .states import PowerState
from .model import PowerTimeline, EnergyMeter
from .sensor import HallSensor, SensorSpec
from .analyzer import PowerAnalyzer, PowerSample
from .meter import MultiChannelMeter, ChannelReading

__all__ = [
    "PowerState",
    "PowerTimeline",
    "EnergyMeter",
    "HallSensor",
    "SensorSpec",
    "PowerAnalyzer",
    "PowerSample",
    "MultiChannelMeter",
    "ChannelReading",
]

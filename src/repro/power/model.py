"""Power/energy accounting primitives.

:class:`PowerTimeline` is how every simulated device reports its power
draw: the device appends *busy segments* — ``(start, end, watts)`` — as
it serves requests, and time not covered by a segment is billed at a
(piecewise-constant) baseline power.  Queries integrate energy over
arbitrary windows, which is exactly the operation a sampling power meter
performs.

Segments must be appended in non-decreasing start order and must not
overlap (devices serve serially); this keeps queries O(log n) via
prefix sums, per the HPC guide's advice to precompute instead of
re-scanning.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Tuple

import numpy as np

from ..errors import PowerAnalyzerError


class PowerTimeline:
    """Append-only record of busy power segments over a baseline.

    Parameters
    ----------
    baseline_watts:
        Power drawn whenever no busy segment covers an instant (idle
        power).  Can be changed over time with :meth:`set_baseline`
        (used by spin-down policies).
    """

    def __init__(self, baseline_watts: float) -> None:
        if baseline_watts < 0:
            raise PowerAnalyzerError(
                f"baseline power must be >= 0, got {baseline_watts}"
            )
        # Busy segments, time-ordered and non-overlapping.
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._watts: List[float] = []
        self._cum_excess: List[float] = [0.0]  # prefix sums of (w - baseline)*dt
        # Baseline power changes: (time, watts); first entry covers -inf.
        self._base_times: List[float] = [0.0]
        self._base_watts: List[float] = [baseline_watts]

    @property
    def segment_count(self) -> int:
        return len(self._starts)

    def set_baseline(self, time: float, watts: float) -> None:
        """Change the baseline power from ``time`` onward."""
        if watts < 0:
            raise PowerAnalyzerError(f"baseline power must be >= 0, got {watts}")
        if time < self._base_times[-1]:
            raise PowerAnalyzerError(
                f"baseline change at {time} precedes previous at "
                f"{self._base_times[-1]}"
            )
        if time == self._base_times[-1]:
            self._base_watts[-1] = watts
        else:
            self._base_times.append(time)
            self._base_watts.append(watts)

    def _baseline_energy(self, t0: float, t1: float) -> float:
        """Integral of the piecewise-constant baseline over [t0, t1]."""
        energy = 0.0
        times = self._base_times
        watts = self._base_watts
        # Index of the baseline level in force at t0.
        i = bisect.bisect_right(times, t0) - 1
        i = max(i, 0)
        cursor = t0
        while cursor < t1:
            seg_end = times[i + 1] if i + 1 < len(times) else t1
            upto = min(seg_end, t1)
            energy += watts[i] * (upto - cursor)
            cursor = upto
            i += 1
        return energy

    def _baseline_at(self, time: float) -> float:
        i = bisect.bisect_right(self._base_times, time) - 1
        return self._base_watts[max(i, 0)]

    def baseline_watts_at(self, time: float) -> float:
        """Baseline (idle) power in force at ``time``."""
        return self._baseline_at(time)

    def add_segment(self, start: float, end: float, watts: float) -> None:
        """Append a busy segment drawing ``watts`` total during [start, end].

        ``watts`` is *total* device power during the segment (not an
        increment over idle); zero-length segments are ignored.
        """
        if end < start:
            raise PowerAnalyzerError(f"segment end {end} precedes start {start}")
        if watts < 0:
            raise PowerAnalyzerError(f"segment power must be >= 0, got {watts}")
        if end == start:
            return
        if self._starts and start < self._ends[-1] - 1e-12:
            raise PowerAnalyzerError(
                f"segment at {start} overlaps previous ending {self._ends[-1]}"
            )
        self._starts.append(start)
        self._ends.append(end)
        self._watts.append(watts)
        base = self._baseline_energy(start, end)
        excess = watts * (end - start) - base
        self._cum_excess.append(self._cum_excess[-1] + excess)

    def extend_segments(self, starts, ends, watts) -> None:
        """Bulk-append many busy segments (the analytical kernel's path).

        Semantically identical to calling :meth:`add_segment` once per
        row in order — same validation, same arithmetic (the prefix-sum
        chain is seeded with the current cumulative excess, so every
        float matches the sequential path bit for bit).  Requires a
        single-level baseline; timelines whose baseline has changed
        (spin-down) fall back to the per-segment loop.
        """
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        watts = np.asarray(watts, dtype=np.float64)
        if len(self._base_times) > 1:
            for s, e, w in zip(starts.tolist(), ends.tolist(), watts.tolist()):
                self.add_segment(s, e, w)
            return
        if starts.size == 0:
            return
        durations = ends - starts
        if np.any(durations < 0):
            i = int(np.argmax(durations < 0))
            raise PowerAnalyzerError(
                f"segment end {ends[i]} precedes start {starts[i]}"
            )
        if np.any(watts < 0):
            raise PowerAnalyzerError(
                f"segment power must be >= 0, got {watts[watts < 0][0]}"
            )
        keep = durations > 0  # zero-length segments are ignored
        if not keep.all():
            starts = starts[keep]
            ends = ends[keep]
            watts = watts[keep]
            durations = durations[keep]
            if starts.size == 0:
                return
        if self._starts and starts[0] < self._ends[-1] - 1e-12:
            raise PowerAnalyzerError(
                f"segment at {starts[0]} overlaps previous ending "
                f"{self._ends[-1]}"
            )
        if np.any(starts[1:] < ends[:-1] - 1e-12):
            i = int(np.argmax(starts[1:] < ends[:-1] - 1e-12)) + 1
            raise PowerAnalyzerError(
                f"segment at {starts[i]} overlaps previous ending {ends[i - 1]}"
            )
        # Single-level baseline: per-segment baseline energy is exactly
        # ``0.0 + base_watts * (end - start)`` — the one-iteration walk
        # _baseline_energy performs.
        base = self._base_watts[0] * durations
        excess = watts * durations - base
        cum = np.cumsum(np.concatenate(([self._cum_excess[-1]], excess)))
        self._starts.extend(starts.tolist())
        self._ends.extend(ends.tolist())
        self._watts.extend(watts.tolist())
        self._cum_excess.extend(cum[1:].tolist())

    def _excess_upto(self, t: float) -> float:
        """Cumulative excess energy of segments (or parts) before time t."""
        idx = bisect.bisect_right(self._starts, t)
        total = self._cum_excess[idx]
        # The segment at idx-1 may extend past t; subtract the tail.
        if idx > 0 and self._ends[idx - 1] > t:
            start = self._starts[idx - 1]
            end = self._ends[idx - 1]
            watts = self._watts[idx - 1]
            tail_base = self._baseline_energy(t, end)
            tail_excess = watts * (end - t) - tail_base
            total -= tail_excess
        return total

    def energy_between(self, t0: float, t1: float) -> float:
        """Energy in Joules consumed during [t0, t1]."""
        if t1 < t0:
            raise PowerAnalyzerError(f"window end {t1} precedes start {t0}")
        if t1 == t0:
            return 0.0
        base = self._baseline_energy(t0, t1)
        return base + self._excess_upto(t1) - self._excess_upto(t0)

    def power_at(self, time: float) -> float:
        """Instantaneous Watts at ``time``: segment power if a busy
        segment covers the instant, the baseline otherwise."""
        idx = bisect.bisect_right(self._starts, time)
        if idx > 0 and self._ends[idx - 1] > time:
            return self._watts[idx - 1]
        return self._baseline_at(time)

    def mean_power(self, t0: float, t1: float) -> float:
        """Average Watts over [t0, t1]."""
        if t1 <= t0:
            return self._baseline_at(t0)
        if t1 - t0 < 16.0 * math.ulp(max(abs(t0), abs(t1), 1.0)):
            # The excess-energy difference in energy_between carries
            # ~1 ULP of the *cumulative* totals; divided by a window at
            # float resolution that is watts-scale noise (it can even
            # go negative).  The honest answer at that width is the
            # instantaneous power.
            return self.power_at(t0)
        return self.energy_between(t0, t1) / (t1 - t0)

    def busy_time(self, t0: float, t1: float) -> float:
        """Total busy-segment time overlapping [t0, t1] (utilisation)."""
        if not self._starts or t1 <= t0:
            return 0.0
        starts = np.asarray(self._starts)
        ends = np.asarray(self._ends)
        overlap = np.minimum(ends, t1) - np.maximum(starts, t0)
        return float(np.clip(overlap, 0.0, None).sum())


class EnergyMeter:
    """Aggregates several timelines plus a constant overhead into one view.

    A disk array's power is the sum of its disks' timelines plus the
    non-disk components (controller, fans, backplane) — Section VI-A.
    """

    def __init__(self, timelines: List[PowerTimeline], overhead_watts: float = 0.0):
        if overhead_watts < 0:
            raise PowerAnalyzerError(
                f"overhead power must be >= 0, got {overhead_watts}"
            )
        self.timelines = list(timelines)
        self.overhead_watts = float(overhead_watts)

    def energy_between(self, t0: float, t1: float) -> float:
        total = self.overhead_watts * (t1 - t0)
        for timeline in self.timelines:
            total += timeline.energy_between(t0, t1)
        return total

    def mean_power(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return self.overhead_watts + sum(
                tl.mean_power(t0, t1) for tl in self.timelines
            )
        if t1 - t0 < 16.0 * math.ulp(max(abs(t0), abs(t1), 1.0)):
            # Same degenerate-window guard as PowerTimeline.mean_power.
            return self.overhead_watts + sum(
                tl.power_at(t0) for tl in self.timelines
            )
        return self.energy_between(t0, t1) / (t1 - t0)

"""Hall-effect current sensor model.

The paper's power analyzer "uses a magnetic loop to enclose the 220 V AC
power supply ... measures current values by analyzing magnetic changes"
(Section V-A).  Real Hall loops have a gain (calibration) error, a DC
offset, and sample noise.  The simulated sensor converts true power into
the current/voltage pair the meter would report, applying those
imperfections, so the analyzer pipeline processes realistic readings —
and so experiments can quantify how measurement error propagates into the
efficiency metrics (an ablation the real paper could not run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PowerAnalyzerError
from ..rng import make_rng


@dataclass(frozen=True)
class SensorSpec:
    """Imperfection parameters of a Hall-effect current probe.

    Parameters
    ----------
    gain_error:
        Multiplicative calibration error, e.g. ``0.01`` reads 1 % high.
    offset_amperes:
        Additive DC offset on the current reading.
    noise_amperes:
        Standard deviation of zero-mean Gaussian sample noise.
    supply_voltage:
        Nominal supply voltage (the paper's array runs on 220 V AC).
    voltage_ripple:
        Relative std-dev of the voltage reading (mains fluctuation).
    """

    gain_error: float = 0.0
    offset_amperes: float = 0.0
    noise_amperes: float = 0.0
    supply_voltage: float = 220.0
    voltage_ripple: float = 0.0

    def __post_init__(self) -> None:
        if self.supply_voltage <= 0:
            raise PowerAnalyzerError(
                f"supply voltage must be > 0, got {self.supply_voltage}"
            )
        if self.noise_amperes < 0 or self.voltage_ripple < 0:
            raise PowerAnalyzerError("noise parameters must be >= 0")


IDEAL_SENSOR = SensorSpec()


class HallSensor:
    """Convert true power draw into (current, voltage) meter readings."""

    def __init__(self, spec: SensorSpec = IDEAL_SENSOR, seed: int | None = None):
        self.spec = spec
        self._rng = make_rng(seed)

    def read(self, true_watts: float) -> tuple:
        """One sample: returns ``(amperes, volts)`` as the meter sees them.

        The true current is ``P / V_nominal``; the reading applies gain,
        offset, and noise.  Negative readings clamp to zero (a real meter
        rectifies).
        """
        if true_watts < 0:
            raise PowerAnalyzerError(f"true power must be >= 0, got {true_watts}")
        spec = self.spec
        true_amps = true_watts / spec.supply_voltage
        amps = true_amps * (1.0 + spec.gain_error) + spec.offset_amperes
        if spec.noise_amperes:
            amps += self._rng.normal(0.0, spec.noise_amperes)
        volts = spec.supply_voltage
        if spec.voltage_ripple:
            volts *= 1.0 + self._rng.normal(0.0, spec.voltage_ripple)
        return max(amps, 0.0), max(volts, 0.0)

    def power_from_reading(self, amperes: float, volts: float) -> float:
        """Apparent power implied by a reading (what the meter reports)."""
        return amperes * volts

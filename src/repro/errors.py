"""Exception hierarchy for the TRACER reproduction.

Every error raised by the library derives from :class:`TracerError`, so
callers can catch one type at the API boundary.  Subclasses are grouped by
subsystem; each carries a human-readable message and, where useful,
structured context attributes.
"""

from __future__ import annotations


class TracerError(Exception):
    """Base class for all TRACER errors."""


class TraceFormatError(TracerError):
    """A trace file is malformed or not in the expected format.

    Attributes
    ----------
    offset:
        Byte offset in the source file at which the problem was detected,
        or ``None`` when not applicable.
    """

    def __init__(self, message: str, *, offset: int | None = None) -> None:
        super().__init__(message)
        self.offset = offset


class TraceValidationError(TracerError):
    """A trace violates a semantic invariant (e.g. non-monotone timestamps)."""


class RepositoryError(TracerError):
    """Trace repository problems: bad names, missing entries, collisions."""


class FilterError(TracerError):
    """Invalid load-control configuration (proportion out of range, etc.)."""


class StorageConfigError(TracerError):
    """Invalid storage device / RAID geometry configuration."""


class StorageIOError(TracerError):
    """A replayed request fell outside the device's addressable range."""


class FaultConfigError(TracerError):
    """Invalid fault-injection schedule or injector configuration."""


class PowerAnalyzerError(TracerError):
    """Power analyzer misuse: unknown channel, sampling before arming, ..."""


class WorkloadError(TracerError):
    """Invalid synthetic workload parameters."""


class ReplayError(TracerError):
    """Replay engine failures (empty trace, monitor misconfiguration, ...)."""


class ProtocolError(TracerError):
    """Malformed frames or unexpected messages on the host wire protocol."""


class DatabaseError(TracerError):
    """Evaluation-host result database failures."""


class SimulationError(TracerError):
    """Discrete-event engine misuse (scheduling into the past, ...)."""


class FleetError(TracerError):
    """Fleet scheduler misuse: bad job specs, draining admission, ..."""


class WorkerDied(FleetError):
    """An evaluation worker died before delivering its job's result.

    The scheduler catches this to requeue the job onto a surviving
    worker; it never reaches API callers unless every retry is
    exhausted.
    """

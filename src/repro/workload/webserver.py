"""Synthetic re-creation of the FIU web-server trace (paper Table III).

The paper replays "web requests for a week on the O4 machine of a web
server in the Department of Computer Science, Florida International
University" (the BORG trace collection).  We do not have the trace, so
this module synthesises a workload matching its published statistics:

==============================  =======================
File system size                169.54 GB
Dataset (unique bytes touched)  23.31 GB
Read ratio                      90.39 %
Average request size            21.5 KB
==============================  =======================

plus the qualitative properties the accuracy experiment depends on:
variable request sizes (log-normal around the mean), Zipf object
popularity over the dataset, diurnal intensity waves (what makes the
Fig. 12 time-series shape non-flat), and occasional multi-request
bunches (concurrent client fetches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError
from ..rng import make_rng
from ..trace.record import READ, WRITE, Bunch, IOPackage, Trace
from ..units import GB, KiB, SECTOR_BYTES
from .arrivals import diurnal_rate, inhomogeneous_poisson


@dataclass(frozen=True)
class WebServerModel:
    """Parameters of the synthetic web-server workload."""

    filesystem_bytes: int = int(169.54 * GB)
    dataset_bytes: int = int(23.31 * GB)
    read_ratio: float = 0.9039
    mean_request_bytes: float = 21.5 * KiB
    sigma_log: float = 0.9
    """Log-normal shape for request sizes (web objects are heavy-tailed)."""
    zipf_exponent: float = 0.85
    burst_fraction: float = 0.25
    """Fraction of arrivals that bring 2-6 concurrent requests."""
    base_iops: float = 120.0
    peak_iops: float = 360.0
    diurnal_period: float = 600.0
    """Intensity wave period.  The real trace waves daily; for replayable
    30-minute experiment windows we compress the wave to 10 minutes so a
    replay sees multiple crests (Fig. 12 plots exactly these waves)."""

    def __post_init__(self) -> None:
        if not 0 < self.dataset_bytes <= self.filesystem_bytes:
            raise WorkloadError("dataset must fit within the filesystem")
        if not 0 <= self.read_ratio <= 1:
            raise WorkloadError("read_ratio must be in [0,1]")


def _sample_sizes(
    model: WebServerModel, rng: np.random.Generator, n: int
) -> np.ndarray:
    """Log-normal request sizes, sector-aligned, mean-matched.

    A log-normal with median m and shape sigma has mean
    m*exp(sigma^2/2); we pick the median so the mean hits the target,
    then clip to [512 B, 1 MiB] (block-level requests are bounded).
    """
    median = model.mean_request_bytes / np.exp(model.sigma_log**2 / 2.0)
    raw = rng.lognormal(np.log(median), model.sigma_log, size=n)
    sizes = np.clip(raw, 512, 1024 * KiB)
    sectors = np.maximum(1, np.round(sizes / SECTOR_BYTES)).astype(np.int64)
    return sectors * SECTOR_BYTES


def generate_webserver_trace(
    duration: float = 1800.0,
    model: Optional[WebServerModel] = None,
    seed: Optional[int] = None,
    label: str = "webserver",
) -> Trace:
    """Synthesise a web-server trace of ``duration`` seconds.

    The address space is a catalogue of dataset "objects" placed across
    the filesystem extent; requests pick objects Zipf-popularly and read
    them from their start (large objects arrive as multi-sector
    requests already sized by the log-normal draw).
    """
    model = model or WebServerModel()
    rng = make_rng(seed)

    rate_fn = diurnal_rate(
        model.base_iops, model.peak_iops, period=model.diurnal_period
    )
    arrivals = inhomogeneous_poisson(
        rate_fn, model.peak_iops, duration, seed=int(rng.integers(2**31))
    )
    if arrivals.size == 0:
        return Trace([], label=label)

    n = arrivals.size
    sizes = _sample_sizes(model, rng, n)

    # Object catalogue: dataset_bytes of unique content spread uniformly
    # over the filesystem extent, in 64 KiB slots.
    slot_bytes = 64 * KiB
    n_objects = max(1, model.dataset_bytes // slot_bytes)
    fs_sectors = model.filesystem_bytes // SECTOR_BYTES
    slot_sectors = slot_bytes // SECTOR_BYTES
    max_slot_start = fs_sectors - slot_sectors
    object_starts = np.sort(
        rng.choice(max_slot_start // slot_sectors, size=n_objects, replace=False)
        * slot_sectors
    )

    # Zipf popularity over objects.
    ranks = np.arange(1, n_objects + 1, dtype=np.float64)
    weights = ranks ** (-model.zipf_exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    chosen = object_starts[np.searchsorted(cdf, rng.random(n))]

    ops = np.where(rng.random(n) < model.read_ratio, READ, WRITE)

    # Group arrivals into bunches: most are singletons; a burst brings
    # the next few arrivals along at the same timestamp.
    bunches: List[Bunch] = []
    i = 0
    while i < n:
        if rng.random() < model.burst_fraction:
            fan = int(rng.integers(2, 7))
        else:
            fan = 1
        j = min(i + fan, n)
        packages = [
            IOPackage(int(chosen[k]), int(sizes[k]), int(ops[k]))
            for k in range(i, j)
        ]
        bunches.append(Bunch(float(arrivals[i]), packages))
        i = j
    return Trace(bunches, label=label)

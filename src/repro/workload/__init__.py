"""Workload substrate: synthetic generators, collectors, real-world synthesisers.

* :mod:`~repro.workload.patterns` — address/op streams with IOmeter's
  three knobs (request size, random ratio, read ratio);
* :mod:`~repro.workload.arrivals` — open arrival processes (Poisson,
  bursty MMPP, diurnal modulation) for the real-world synthesisers;
* :mod:`~repro.workload.iometer` — closed-loop peak-load generator
  (the paper uses IOmeter to produce peak workloads, §III-B);
* :mod:`~repro.workload.collector` — block-level trace collector that
  records a running workload into a ``.replay`` trace (blktrace role);
* :mod:`~repro.workload.webserver` / :mod:`~repro.workload.cello` —
  statistical re-syntheses of the FIU web-server trace (Table III) and
  the HP cello99 trace used in §VI-F;
* :mod:`~repro.workload.matrix` — the 125-trace synthetic matrix
  builder (§V-C1).
"""

from .patterns import AccessPattern
from .arrivals import poisson_arrivals, mmpp_arrivals, diurnal_rate, constant_arrivals
from .iometer import IometerGenerator, PeakResult
from .collector import TraceCollector
from .webserver import WebServerModel, generate_webserver_trace
from .cello import CelloModel, generate_cello_trace
from .matrix import build_matrix, matrix_modes

__all__ = [
    "AccessPattern",
    "poisson_arrivals",
    "mmpp_arrivals",
    "diurnal_rate",
    "constant_arrivals",
    "IometerGenerator",
    "PeakResult",
    "TraceCollector",
    "WebServerModel",
    "generate_webserver_trace",
    "CelloModel",
    "generate_cello_trace",
    "build_matrix",
    "matrix_modes",
]

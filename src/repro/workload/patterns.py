"""Block address / operation pattern generation.

Implements IOmeter's access-specification semantics: a stream of
requests of fixed size where a configurable fraction start at a random
aligned address (the rest continue sequentially from the previous
request's end), and a configurable fraction are reads.

The generator is stateful (the sequential cursor persists across calls)
and draws from a seeded stream, so identical parameters reproduce
identical workloads.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..config import WorkloadMode
from ..errors import WorkloadError
from ..rng import make_rng
from ..trace.record import READ, WRITE, IOPackage
from ..units import SECTOR_BYTES


class AccessPattern:
    """Stateful request-stream generator with IOmeter's three knobs.

    Parameters
    ----------
    mode:
        Request size / random ratio / read ratio (load proportion is
        ignored here — it belongs to the replay side).
    capacity_sectors:
        Addressable range; random starts are uniform over it and the
        sequential cursor wraps at the end.
    align_sectors:
        Alignment of random starts (default: request size, IOmeter's
        convention).
    """

    def __init__(
        self,
        mode: WorkloadMode,
        capacity_sectors: int,
        seed: Optional[int] = None,
        align_sectors: Optional[int] = None,
    ) -> None:
        if capacity_sectors <= 0:
            raise WorkloadError(f"capacity_sectors must be > 0, got {capacity_sectors}")
        self.mode = mode
        self.capacity_sectors = capacity_sectors
        self.request_sectors = max(1, -(-mode.request_size // SECTOR_BYTES))
        if self.request_sectors > capacity_sectors:
            raise WorkloadError(
                f"request size {mode.request_size} exceeds device capacity"
            )
        self.align = align_sectors if align_sectors else self.request_sectors
        self._rng = make_rng(seed)
        self._cursor = 0
        self._max_start = capacity_sectors - self.request_sectors

    def _random_start(self) -> int:
        slots = self._max_start // self.align + 1
        return int(self._rng.integers(0, slots)) * self.align

    def next_package(self) -> IOPackage:
        """Generate the next request in the stream."""
        is_random = self._rng.random() < self.mode.random_ratio
        if is_random:
            start = self._random_start()
        else:
            start = self._cursor
            if start > self._max_start:
                start = 0
        op = READ if self._rng.random() < self.mode.read_ratio else WRITE
        pkg = IOPackage(start, self.mode.request_size, op)
        self._cursor = pkg.end_sector
        return pkg

    def take(self, n: int) -> List[IOPackage]:
        """Generate ``n`` requests."""
        return [self.next_package() for _ in range(n)]

    def __iter__(self) -> Iterator[IOPackage]:
        while True:
            yield self.next_package()


def zipf_popularity(
    n_items: int, exponent: float, rng: np.random.Generator, size: int
) -> np.ndarray:
    """Sample ``size`` item indices with Zipf(``exponent``) popularity.

    Used by the web-server synthesiser: web object popularity is the
    canonical Zipf workload.  Implemented by inverse-CDF over the finite
    support (SciPy's ``zipf`` is unbounded; we need a bounded catalogue).
    """
    if n_items <= 0:
        raise WorkloadError(f"n_items must be > 0, got {n_items}")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(size)
    return np.searchsorted(cdf, u)

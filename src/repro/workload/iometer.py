"""Closed-loop peak-load generator (the IOmeter role).

"We leveraged the IOmeter tool to generate peak synthetic workloads with
specified request sizes, random/sequential ratios, and read/write
ratios" (§III-A2).  IOmeter's engine is closed-loop: it keeps a fixed
number of I/Os outstanding against the target, so the achieved rate *is*
the device's peak rate for that workload mode.

:class:`IometerGenerator` reproduces that loop on the simulation clock,
optionally feeding a :class:`~repro.workload.collector.TraceCollector`
so the run doubles as trace collection (§III-B step 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import WorkloadMode
from ..errors import WorkloadError
from ..sim.engine import Simulator
from ..storage.base import Completion, StorageDevice
from .collector import TraceCollector
from .patterns import AccessPattern


@dataclass(frozen=True)
class PeakResult:
    """Aggregate outcome of a closed-loop run."""

    duration: float
    completed: int
    total_bytes: int
    mean_response: float

    @property
    def iops(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mbps(self) -> float:
        return (self.total_bytes / 1e6) / self.duration if self.duration > 0 else 0.0


class IometerGenerator:
    """Closed-loop workload driver.

    Parameters
    ----------
    mode:
        Workload mode (request size / random ratio / read ratio).
    outstanding:
        Queue depth maintained against the target (IOmeter's
        "# of Outstanding I/Os"; 16 is a typical peak-seeking setting).
    """

    def __init__(
        self,
        mode: WorkloadMode,
        outstanding: int = 16,
        seed: Optional[int] = None,
    ) -> None:
        if outstanding < 1:
            raise WorkloadError(f"outstanding must be >= 1, got {outstanding}")
        self.mode = mode
        self.outstanding = outstanding
        self.seed = seed

    def run(
        self,
        sim: Simulator,
        device: StorageDevice,
        duration: float,
        collector: Optional[TraceCollector] = None,
        warmup: float = 0.0,
    ) -> PeakResult:
        """Drive ``device`` at peak for ``duration`` simulated seconds.

        Issuing stops at ``sim.now + warmup + duration``; in-flight
        requests then drain.  Statistics (and the collector) cover only
        the measured window after ``warmup`` — warm-up lets the
        sequential cursor and queues reach steady state.
        """
        if duration <= 0:
            raise WorkloadError(f"duration must be > 0, got {duration}")
        pattern = AccessPattern(self.mode, device.capacity_sectors, seed=self.seed)
        start = sim.now
        measure_start = start + warmup
        stop_at = measure_start + duration

        completions: List[Completion] = []
        state = {"issued": 0, "stopped": False}

        def issue_one() -> None:
            pkg = pattern.next_package()
            now = sim.now
            if collector is not None and now >= measure_start:
                collector.record(now, pkg)
            state["issued"] += 1
            device.submit(pkg, on_done)

        def on_done(completion: Completion) -> None:
            if completion.submit_time >= measure_start:
                completions.append(completion)
            if sim.now < stop_at:
                issue_one()
            else:
                state["stopped"] = True

        for _ in range(self.outstanding):
            issue_one()
        sim.run()

        measured = [c for c in completions if c.finish_time <= stop_at]
        if not measured:
            measured = completions
        total_bytes = sum(c.package.nbytes for c in measured)
        mean_rt = (
            sum(c.response_time for c in measured) / len(measured)
            if measured
            else 0.0
        )
        return PeakResult(
            duration=duration,
            completed=len(measured),
            total_bytes=total_bytes,
            mean_response=mean_rt,
        )

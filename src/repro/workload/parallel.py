"""Process-parallel trace-matrix collection.

The 125-cell synthetic matrix is embarrassingly parallel: each cell is
an independent simulation (fresh device, fresh clock, own seed).  A
process pool sidesteps the GIL entirely — the standard recipe for
CPU-bound fan-out in Python — and typically collects the matrix
``min(cells, cores)``× faster than :func:`repro.workload.matrix.build_matrix`.

Cells are *collected* in workers and *stored* in the parent (sqlite and
the repository directory stay single-writer); results are byte-identical
to the serial builder because seeds derive from cell identity, not
worker identity.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import WorkloadMode
from ..rng import DEFAULT_SEED, derive_seed
from ..storage.base import StorageDevice
from ..trace.blktrace import dumps, loads
from ..trace.repository import TraceName, TraceRepository
from .matrix import collect_trace, matrix_modes

DeviceFactory = Callable[[], StorageDevice]

#: A sweep worker: ``worker(point, seed) -> result``.  Must be picklable
#: (module-level function), like every process-pool entry point here.
SweepWorker = Callable[[Any, int], Any]

#: The trace published for the current sweep, visible to workers via
#: :func:`get_shared_trace`.  In a pool worker it is attached from
#: shared memory by the initializer; in serial mode the parent's own
#: object is installed directly.
_SHARED_TRACE = None
#: Attached shared-memory blocks backing ``_SHARED_TRACE`` in a worker
#: (kept referenced so the mapped pages outlive the arrays).
_SHARED_BLOCKS: List[Any] = []


def get_shared_trace():
    """The sweep's published trace (inside a worker or a serial run).

    Raises when the current sweep published nothing — workers that need
    a trace must be launched through ``run_sweep(..., shared_trace=...)``.
    """
    if _SHARED_TRACE is None:
        raise RuntimeError(
            "no shared trace published; pass shared_trace= to run_sweep"
        )
    return _SHARED_TRACE


def _attach_shared(descriptor: dict) -> None:
    """Pool initializer: map the published columns into this worker."""
    global _SHARED_TRACE, _SHARED_BLOCKS
    from ..trace.shm import attach_packed

    _SHARED_TRACE, _SHARED_BLOCKS = attach_packed(descriptor)


def _use_pool(parallel, n_points: int, kernel_eligible=None) -> bool:
    """Resolve a ``parallel`` setting (bool or ``"auto"``) to pool/serial."""
    if parallel == "auto":
        import os

        if kernel_eligible:
            # Kernel-fast points finish in milliseconds; fork+pickle
            # startup can never amortise against them.
            return False
        if (os.cpu_count() or 1) <= 1:
            return False
        floor = int(os.environ.get("TRACER_SWEEP_MIN_POOL_POINTS", "4"))
        return n_points >= floor
    return bool(parallel)


def kernel_sweep_eligible(trace, device_factory, *, stream_interval=None) -> bool:
    """Probe whether per-point replays of ``trace`` would take the kernel.

    Builds one throwaway device from ``device_factory`` and runs the
    same qualification the replay session does — packed trace, no
    telemetry registry, kernel-capable device/array.  Sweep drivers use
    the verdict to keep ``parallel="auto"`` in-process for sweeps whose
    points are analytical-kernel fast (pool startup would dominate).
    The probe is conservative: any error means "not eligible".
    """
    from ..trace.packed import PackedTrace

    if not isinstance(trace, PackedTrace) or len(trace) == 0:
        return False
    try:
        from ..sim.kernel import _qualify_device
        from ..telemetry import get_registry

        if get_registry().enabled:
            return False
        return _qualify_device(device_factory(), trace) is None
    except Exception:
        return False


def run_sweep(
    worker: SweepWorker,
    points: Sequence[Any],
    *,
    base_seed: int = DEFAULT_SEED,
    labels: Optional[Sequence[str]] = None,
    max_workers: Optional[int] = None,
    parallel=True,
    shared_trace=None,
    kernel_eligible: Optional[bool] = None,
) -> List[Any]:
    """Fan ``worker(point, seed)`` out across a process pool.

    The generic engine under ``benchmarks/sweep.py``: each benchmark
    point gets a seed derived from the *point's identity* (its position,
    or the matching entry of ``labels`` when given) — never from worker
    identity or scheduling order — so a parallel sweep is reproducible
    and bit-identical to ``parallel=False`` serial execution.  Results
    come back in point order.

    ``worker`` must be a module-level function; point payloads cross the
    process boundary pickled, so keep them small.

    ``shared_trace`` (a :class:`~repro.trace.packed.PackedTrace`) is the
    zero-copy path for the common one-trace-many-points shape: the
    columns are published once into POSIX shared memory
    (:mod:`repro.trace.shm`) and each pool worker maps the same pages —
    only a ``(name, dtype, shape)`` descriptor crosses the process
    boundary, never a pickled column.  Workers (and serial runs, which
    share the parent's object directly) read it back with
    :func:`get_shared_trace`.

    ``parallel`` may be ``True`` (always pool), ``False`` (always
    serial, in-process) or ``"auto"``: pool only when the host has more
    than one core and the sweep is large enough to amortise worker
    startup (``TRACER_SWEEP_MIN_POOL_POINTS``, default 4) — the fix for
    small kernel-eligible sweeps paying fork+pickle for nothing.
    ``kernel_eligible=True`` (typically the verdict of
    :func:`kernel_sweep_eligible`) tells ``"auto"`` the points resolve
    to the analytical kernel, which forces in-process serial execution:
    millisecond points never amortise pool startup.
    """
    global _SHARED_TRACE
    points = list(points)
    if labels is not None:
        label_list = [str(lbl) for lbl in labels]
        if len(label_list) != len(points):
            raise ValueError(
                f"{len(points)} points but {len(label_list)} labels"
            )
    else:
        label_list = [str(i) for i in range(len(points))]
    seeds = [
        derive_seed(base_seed, "sweep", label) for label in label_list
    ]
    if not _use_pool(parallel, len(points), kernel_eligible):
        if shared_trace is None:
            return [worker(p, s) for p, s in zip(points, seeds)]
        prior = _SHARED_TRACE
        _SHARED_TRACE = shared_trace
        try:
            return [worker(p, s) for p, s in zip(points, seeds)]
        finally:
            _SHARED_TRACE = prior
    if shared_trace is None:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(worker, p, s) for p, s in zip(points, seeds)
            ]
            return [f.result() for f in futures]
    from ..trace.shm import SharedTracePublication

    with SharedTracePublication(shared_trace) as publication:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_attach_shared,
            initargs=(publication.descriptor,),
        ) as pool:
            futures = [
                pool.submit(worker, p, s) for p, s in zip(points, seeds)
            ]
            return [f.result() for f in futures]


def _collect_cell(
    device_factory: DeviceFactory,
    mode_dict: dict,
    duration: float,
    outstanding: int,
    seed: int,
) -> bytes:
    """Worker entry point: collect one cell, return the encoded trace.

    Traces cross the process boundary in the binary ``.replay`` encoding
    — compact and with no pickle surprises for bunch objects.
    """
    mode = WorkloadMode.from_dict(mode_dict)
    trace = collect_trace(
        device_factory, mode, duration, outstanding=outstanding, seed=seed
    )
    return dumps(trace)


def build_matrix_parallel(
    device_factory: DeviceFactory,
    repository: TraceRepository,
    device_label: str,
    duration: float = 5.0,
    modes: Optional[Iterable[WorkloadMode]] = None,
    outstanding: int = 16,
    base_seed: int = DEFAULT_SEED,
    overwrite: bool = False,
    max_workers: Optional[int] = None,
) -> List[Tuple[TraceName, int]]:
    """Parallel counterpart of :func:`repro.workload.matrix.build_matrix`.

    ``device_factory`` must be picklable (a module-level function or a
    :func:`functools.partial` of one — not a lambda).  Results, the
    repository contents, and the returned list are identical to the
    serial builder's.
    """
    mode_list = list(modes) if modes is not None else matrix_modes()
    names = [
        TraceName(
            device=device_label,
            request_size=mode.request_size,
            random_ratio=mode.random_ratio,
            read_ratio=mode.read_ratio,
        )
        for mode in mode_list
    ]

    results: List[Optional[Tuple[TraceName, int]]] = [None] * len(mode_list)
    pending: List[int] = []
    for i, name in enumerate(names):
        if name in repository and not overwrite:
            results[i] = (name, len(repository.load(name)))
        else:
            pending.append(i)

    if pending:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _collect_cell,
                    device_factory,
                    mode_list[i].to_dict(),
                    duration,
                    outstanding,
                    derive_seed(base_seed, "matrix", names[i].filename),
                ): i
                for i in pending
            }
            for future, i in futures.items():
                trace = loads(future.result())
                repository.store(names[i], trace, overwrite=overwrite)
                results[i] = (names[i], len(trace))

    return [r for r in results if r is not None]

# ---------------------------------------------------------------------------
# Grid-fused sweeps


@dataclass
class GridCellResult:
    """One evaluated grid cell: its coordinates plus the replay result."""

    device: str
    trace: str
    load: float
    time_scale: float
    result: Any  # ReplayResult
    fused: bool  # True when the fused kernel produced it directly
    #: ReplayCapture when the sweep ran with ``capture=True`` — the
    #: frozen record the energy-policy search re-scores per cell.
    capture: Any = None

    @property
    def key(self) -> str:
        return (
            f"{self.device}/{self.trace}"
            f"@{self.load:g}x{self.time_scale:g}"
        )

    @property
    def engine(self) -> str:
        return self.result.metadata.get("engine", "event")

    @property
    def fallback(self) -> Optional[str]:
        return self.result.metadata.get("engine_fallback")


@dataclass
class GridOutcome:
    """A completed grid sweep: per-cell results plus run-shape metadata.

    ``cells`` is in row-major axis order (device, trace, load,
    time_scale); ``engines`` counts cells per engine actually used;
    ``fallback_reasons`` maps a cell key to why the kernel declined it
    (only cells that fell back to the event engine appear).
    """

    cells: List[GridCellResult]
    devices: Tuple[str, ...]
    traces: Tuple[str, ...]
    loads: Tuple[float, ...]
    time_scales: Tuple[float, ...]
    engines: Dict[str, int]
    fallback_reasons: Dict[str, str]
    fused_cells: int
    elapsed_seconds: float

    @property
    def shape(self) -> Tuple[int, int, int, int]:
        return (
            len(self.devices), len(self.traces),
            len(self.loads), len(self.time_scales),
        )

    def cell(
        self, device: str, trace: str, load: float, time_scale: float = 1.0
    ) -> GridCellResult:
        """Look one cell up by its coordinates."""
        for c in self.cells:
            if (
                c.device == device and c.trace == trace
                and c.load == load and c.time_scale == time_scale
            ):
                return c
        raise KeyError(f"{device}/{trace}@{load:g}x{time_scale:g}")

    def to_dict(self, deterministic: bool = False) -> Dict[str, Any]:
        """JSON-safe form of the whole sweep.

        With ``deterministic`` the wall-clock ``elapsed_seconds`` (and
        any per-cell telemetry snapshots) are omitted so two runs of the
        same sweep serialise to identical bytes — the form the fleet's
        dedup cache stores and compares.
        """
        cells = []
        for c in self.cells:
            rd = c.result.to_dict()
            if deterministic:
                md = dict(rd.get("metadata") or {})
                md.pop("telemetry", None)
                rd["metadata"] = md
            cells.append(
                {
                    "device": c.device,
                    "trace": c.trace,
                    "load": c.load,
                    "time_scale": c.time_scale,
                    "fused": c.fused,
                    "result": rd,
                }
            )
        out: Dict[str, Any] = {
            "devices": list(self.devices),
            "traces": list(self.traces),
            "loads": list(self.loads),
            "time_scales": list(self.time_scales),
            "shape": list(self.shape),
            "engines": dict(sorted(self.engines.items())),
            "fallback_reasons": dict(sorted(self.fallback_reasons.items())),
            "fused_cells": self.fused_cells,
            "cells": cells,
        }
        if not deterministic:
            out["elapsed_seconds"] = self.elapsed_seconds
        return out


def _grid_slab_worker(slab, seed):
    """Pool entry point: replay one slab of per-point cells.

    A slab is ``(factory, points, config, stream_interval, engine)``
    with ``points`` a list of ``(load, time_scale)``; the trace arrives
    zero-copy via the sweep's shared-memory publication.
    """
    from dataclasses import replace as _replace

    from ..replay.session import replay_trace

    factory, points, config, stream_interval, engine = slab
    trace = get_shared_trace()
    out = []
    for load, time_scale in points:
        cfg = _replace(config, time_scale=time_scale)
        out.append(
            replay_trace(
                trace, factory(), load, config=cfg,
                stream_interval=stream_interval, engine=engine,
            )
        )
    return out


def _replay_points_serial(
    trace, factory, points, config, stream_interval, engine, capture=False
):
    from dataclasses import replace as _replace

    from ..replay.capture import CaptureSink
    from ..replay.session import replay_trace

    out = []
    for load, time_scale in points:
        cfg = _replace(config, time_scale=time_scale)
        sink = CaptureSink() if capture else None
        result = replay_trace(
            trace, factory(), load, config=cfg,
            stream_interval=stream_interval, engine=engine, capture=sink,
        )
        out.append((result, sink.capture) if capture else result)
    return out


def _poolable(factory, trace) -> bool:
    """Can this plane's per-point work cross a process boundary?"""
    import pickle

    from ..trace.packed import PackedTrace

    if not isinstance(trace, PackedTrace):
        return False
    try:
        pickle.dumps(factory)
    except Exception:
        return False
    return True


def run_grid(
    traces,
    devices,
    loads: Sequence[float] = (1.0,),
    time_scales: Sequence[float] = (1.0,),
    *,
    config=None,
    stream_interval: Optional[float] = None,
    engine: str = "auto",
    parallel="auto",
    max_workers: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
    capture: bool = False,
) -> GridOutcome:
    """Evaluate a (device × trace × load × time-scale) grid in one call.

    The workhorse behind ``tracer sweep --grid`` and the figure
    benchmarks: for every (device, trace) plane the whole
    (load × time_scale) face is handed to the grid-fused kernel
    (:func:`repro.sim.grid.evaluate_grid_cells`) — one broadcast over
    shared trace columns instead of one replay per cell.  Cells the
    fusion declines are replayed per point with the *same* ``engine``
    setting, so their results, fallback metadata, and error behaviour
    are exactly what a hand-rolled loop over
    :func:`~repro.replay.session.replay_trace` produces today.

    Parameters
    ----------
    traces:
        Mapping of label → trace, or a single trace (labelled by its
        own ``label``).
    devices:
        Mapping of name → device factory (fresh device per call), or a
        single factory (named ``"device"``).
    engine:
        ``"auto"`` (fuse, fall back per cell), ``"kernel"`` (fuse,
        *raise* where a per-point ``engine="kernel"`` replay would
        raise) or ``"event"`` (skip fusion entirely; every cell runs
        the event engine per point).
    parallel / max_workers:
        Scheduling for the *unfused* cells only: ``"auto"`` replays
        them in-process unless the host has spare cores and enough
        points to amortise a pool, in which case they fan out as
        per-plane slabs over :func:`run_sweep`'s zero-copy shared-trace
        path.  Fused cells never pay fork+pickle.
    capture:
        Attach a bit-identical
        :class:`~repro.replay.capture.ReplayCapture` to every cell (the
        record the energy-policy search re-scores).  Capturing keeps
        unfused cells in-process — the sink rides the session.

    Returns a :class:`GridOutcome`; cells come back in row-major
    (device, trace, load, time_scale) order regardless of how they
    were scheduled.
    """
    import time as _time

    from ..config import ReplayConfig
    from ..sim.grid import (
        DEFAULT_CHUNK_BYTES,
        GridCell,
        evaluate_grid_cells,
    )

    t_wall = _time.perf_counter()
    if not isinstance(traces, dict):
        traces = {getattr(traces, "label", "trace"): traces}
    if not isinstance(devices, dict):
        devices = {"device": devices}
    loads = [float(x) for x in loads]
    time_scales = [float(x) for x in time_scales]
    if not loads or not time_scales or not traces or not devices:
        raise ValueError("run_grid needs at least one value per axis")
    cfg = config or ReplayConfig()
    if engine not in ("auto", "kernel", "event"):
        raise ValueError(f"unknown engine {engine!r}")
    face = [
        GridCell(load, ts) for load in loads for ts in time_scales
    ]
    chunk = chunk_bytes if chunk_bytes is not None else DEFAULT_CHUNK_BYTES

    cells: List[GridCellResult] = []
    engines: Dict[str, int] = {}
    fallback_reasons: Dict[str, str] = {}
    fused_cells = 0
    for dev_name, factory in devices.items():
        for trace_label, trace in traces.items():
            if engine == "event":
                evals = [None] * len(face)
            else:
                evals = evaluate_grid_cells(
                    trace, factory(), face, config=cfg,
                    stream_interval=stream_interval, chunk_bytes=chunk,
                    capture=capture,
                )
            pending = [
                i for i, ev in enumerate(evals)
                if ev is None or ev.result is None
            ]
            results: List[Any] = [
                None if ev is None else ev.result for ev in evals
            ]
            captures: List[Any] = [
                None if ev is None else ev.capture for ev in evals
            ]
            if pending:
                points = [(face[i].load, face[i].time_scale) for i in pending]
                if (
                    not capture
                    and _use_pool(parallel, len(points))
                    and _poolable(factory, trace)
                ):
                    slab = (factory, points, cfg, stream_interval, engine)
                    slab_out = run_sweep(
                        _grid_slab_worker, [slab],
                        labels=[f"{dev_name}/{trace_label}"],
                        max_workers=max_workers, shared_trace=trace,
                    )[0]
                else:
                    slab_out = _replay_points_serial(
                        trace, factory, points, cfg, stream_interval, engine,
                        capture=capture,
                    )
                for i, res in zip(pending, slab_out):
                    if capture:
                        results[i], captures[i] = res
                    else:
                        results[i] = res
            for i, cell in enumerate(face):
                fused = evals[i] is not None and evals[i].result is not None
                fused_cells += 1 if fused else 0
                gcr = GridCellResult(
                    device=dev_name, trace=trace_label,
                    load=cell.load, time_scale=cell.time_scale,
                    result=results[i], fused=fused,
                    capture=captures[i],
                )
                engines[gcr.engine] = engines.get(gcr.engine, 0) + 1
                if gcr.fallback is not None:
                    fallback_reasons[gcr.key] = gcr.fallback
                cells.append(gcr)
    return GridOutcome(
        cells=cells,
        devices=tuple(devices),
        traces=tuple(traces),
        loads=tuple(loads),
        time_scales=tuple(time_scales),
        engines=engines,
        fallback_reasons=fallback_reasons,
        fused_cells=fused_cells,
        elapsed_seconds=_time.perf_counter() - t_wall,
    )


def run_policy_search(
    traces,
    devices,
    policies,
    loads: Sequence[float] = (1.0,),
    time_scales: Sequence[float] = (1.0,),
    *,
    config=None,
    stream_interval: Optional[float] = None,
    engine: str = "auto",
    parallel="auto",
    max_workers: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
):
    """Sweep energy policies over a replay grid at kernel speed.

    The workhorse behind ``tracer search``: one :func:`run_grid` pass
    with ``capture=True`` replays every (device × trace × load ×
    time-scale) base cell — fused where the grid kernel qualifies,
    per-point otherwise, reusing the same chunking and shared-memory
    scheduling — and each policy in ``policies`` is then evaluated as a
    deterministic post-pass over the captured record, so a P-policy
    search replays each base cell once instead of P+1 times.

    ``policies`` is a sequence of configured-or-fresh
    :class:`~repro.energysaving.policy.AnalyticPolicy` instances; an
    always-on baseline is evaluated implicitly as the savings
    reference.  Returns a :class:`repro.search.SearchOutcome` whose
    per-cell metrics are bit-identical to a per-point
    ``engine="kernel"``/``"event"`` replay of the same cell (the
    differential-oracle property; ``tracer search --verify`` re-checks
    it).
    """
    from ..search.driver import evaluate_search

    grid = run_grid(
        traces, devices, loads, time_scales,
        config=config, stream_interval=stream_interval, engine=engine,
        parallel=parallel, max_workers=max_workers, chunk_bytes=chunk_bytes,
        capture=True,
    )
    return evaluate_search(grid, policies, devices, config=config)

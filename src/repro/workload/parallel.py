"""Process-parallel trace-matrix collection.

The 125-cell synthetic matrix is embarrassingly parallel: each cell is
an independent simulation (fresh device, fresh clock, own seed).  A
process pool sidesteps the GIL entirely — the standard recipe for
CPU-bound fan-out in Python — and typically collects the matrix
``min(cells, cores)``× faster than :func:`repro.workload.matrix.build_matrix`.

Cells are *collected* in workers and *stored* in the parent (sqlite and
the repository directory stay single-writer); results are byte-identical
to the serial builder because seeds derive from cell identity, not
worker identity.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from ..config import WorkloadMode
from ..rng import DEFAULT_SEED, derive_seed
from ..storage.base import StorageDevice
from ..trace.blktrace import dumps, loads
from ..trace.repository import TraceName, TraceRepository
from .matrix import collect_trace, matrix_modes

DeviceFactory = Callable[[], StorageDevice]

#: A sweep worker: ``worker(point, seed) -> result``.  Must be picklable
#: (module-level function), like every process-pool entry point here.
SweepWorker = Callable[[Any, int], Any]

#: The trace published for the current sweep, visible to workers via
#: :func:`get_shared_trace`.  In a pool worker it is attached from
#: shared memory by the initializer; in serial mode the parent's own
#: object is installed directly.
_SHARED_TRACE = None
#: Attached shared-memory blocks backing ``_SHARED_TRACE`` in a worker
#: (kept referenced so the mapped pages outlive the arrays).
_SHARED_BLOCKS: List[Any] = []


def get_shared_trace():
    """The sweep's published trace (inside a worker or a serial run).

    Raises when the current sweep published nothing — workers that need
    a trace must be launched through ``run_sweep(..., shared_trace=...)``.
    """
    if _SHARED_TRACE is None:
        raise RuntimeError(
            "no shared trace published; pass shared_trace= to run_sweep"
        )
    return _SHARED_TRACE


def _attach_shared(descriptor: dict) -> None:
    """Pool initializer: map the published columns into this worker."""
    global _SHARED_TRACE, _SHARED_BLOCKS
    from ..trace.shm import attach_packed

    _SHARED_TRACE, _SHARED_BLOCKS = attach_packed(descriptor)


def run_sweep(
    worker: SweepWorker,
    points: Sequence[Any],
    *,
    base_seed: int = DEFAULT_SEED,
    labels: Optional[Sequence[str]] = None,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    shared_trace=None,
) -> List[Any]:
    """Fan ``worker(point, seed)`` out across a process pool.

    The generic engine under ``benchmarks/sweep.py``: each benchmark
    point gets a seed derived from the *point's identity* (its position,
    or the matching entry of ``labels`` when given) — never from worker
    identity or scheduling order — so a parallel sweep is reproducible
    and bit-identical to ``parallel=False`` serial execution.  Results
    come back in point order.

    ``worker`` must be a module-level function; point payloads cross the
    process boundary pickled, so keep them small.

    ``shared_trace`` (a :class:`~repro.trace.packed.PackedTrace`) is the
    zero-copy path for the common one-trace-many-points shape: the
    columns are published once into POSIX shared memory
    (:mod:`repro.trace.shm`) and each pool worker maps the same pages —
    only a ``(name, dtype, shape)`` descriptor crosses the process
    boundary, never a pickled column.  Workers (and serial runs, which
    share the parent's object directly) read it back with
    :func:`get_shared_trace`.
    """
    global _SHARED_TRACE
    points = list(points)
    if labels is not None:
        label_list = [str(lbl) for lbl in labels]
        if len(label_list) != len(points):
            raise ValueError(
                f"{len(points)} points but {len(label_list)} labels"
            )
    else:
        label_list = [str(i) for i in range(len(points))]
    seeds = [
        derive_seed(base_seed, "sweep", label) for label in label_list
    ]
    if not parallel:
        if shared_trace is None:
            return [worker(p, s) for p, s in zip(points, seeds)]
        prior = _SHARED_TRACE
        _SHARED_TRACE = shared_trace
        try:
            return [worker(p, s) for p, s in zip(points, seeds)]
        finally:
            _SHARED_TRACE = prior
    if shared_trace is None:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(worker, p, s) for p, s in zip(points, seeds)
            ]
            return [f.result() for f in futures]
    from ..trace.shm import SharedTracePublication

    with SharedTracePublication(shared_trace) as publication:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_attach_shared,
            initargs=(publication.descriptor,),
        ) as pool:
            futures = [
                pool.submit(worker, p, s) for p, s in zip(points, seeds)
            ]
            return [f.result() for f in futures]


def _collect_cell(
    device_factory: DeviceFactory,
    mode_dict: dict,
    duration: float,
    outstanding: int,
    seed: int,
) -> bytes:
    """Worker entry point: collect one cell, return the encoded trace.

    Traces cross the process boundary in the binary ``.replay`` encoding
    — compact and with no pickle surprises for bunch objects.
    """
    mode = WorkloadMode.from_dict(mode_dict)
    trace = collect_trace(
        device_factory, mode, duration, outstanding=outstanding, seed=seed
    )
    return dumps(trace)


def build_matrix_parallel(
    device_factory: DeviceFactory,
    repository: TraceRepository,
    device_label: str,
    duration: float = 5.0,
    modes: Optional[Iterable[WorkloadMode]] = None,
    outstanding: int = 16,
    base_seed: int = DEFAULT_SEED,
    overwrite: bool = False,
    max_workers: Optional[int] = None,
) -> List[Tuple[TraceName, int]]:
    """Parallel counterpart of :func:`repro.workload.matrix.build_matrix`.

    ``device_factory`` must be picklable (a module-level function or a
    :func:`functools.partial` of one — not a lambda).  Results, the
    repository contents, and the returned list are identical to the
    serial builder's.
    """
    mode_list = list(modes) if modes is not None else matrix_modes()
    names = [
        TraceName(
            device=device_label,
            request_size=mode.request_size,
            random_ratio=mode.random_ratio,
            read_ratio=mode.read_ratio,
        )
        for mode in mode_list
    ]

    results: List[Optional[Tuple[TraceName, int]]] = [None] * len(mode_list)
    pending: List[int] = []
    for i, name in enumerate(names):
        if name in repository and not overwrite:
            results[i] = (name, len(repository.load(name)))
        else:
            pending.append(i)

    if pending:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _collect_cell,
                    device_factory,
                    mode_list[i].to_dict(),
                    duration,
                    outstanding,
                    derive_seed(base_seed, "matrix", names[i].filename),
                ): i
                for i in pending
            }
            for future, i in futures.items():
                trace = loads(future.result())
                repository.store(names[i], trace, overwrite=overwrite)
                results[i] = (names[i], len(trace))

    return [r for r in results if r is not None]

"""Block-level trace collector (the blktrace role).

"The trace collector is a low-overhead module that performs I/O tracing
for storage systems under the peak workloads" (§III-A2).  Here the
collector observes request *issues* on the simulation clock and folds
requests issued within a short window into one bunch — which is exactly
how btrecord builds bunches from a blktrace event stream.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import WorkloadError
from ..trace.record import Bunch, IOPackage, Trace


class TraceCollector:
    """Accumulates issued requests into a bunch-structured trace.

    Parameters
    ----------
    bunch_window:
        Requests issued within this many seconds of the first request of
        the current bunch share the bunch (btrecord's coalescing window).
        ``0.0`` bunches only simultaneous submissions.
    max_bunch_packages:
        Safety cap on packages per bunch (btrecord uses a fixed array).
    """

    def __init__(
        self,
        bunch_window: float = 0.001,
        max_bunch_packages: int = 512,
        label: str = "",
    ) -> None:
        if bunch_window < 0:
            raise WorkloadError(f"bunch_window must be >= 0, got {bunch_window}")
        if max_bunch_packages < 1:
            raise WorkloadError("max_bunch_packages must be >= 1")
        self.bunch_window = bunch_window
        self.max_bunch_packages = max_bunch_packages
        self.label = label
        self._bunches: List[Bunch] = []
        self._pending: List[IOPackage] = []
        self._pending_ts: Optional[float] = None
        self._origin: Optional[float] = None

    def record(self, time: float, package: IOPackage) -> None:
        """Observe one request issued at simulated ``time``."""
        if self._origin is None:
            self._origin = time
        rel = time - self._origin
        if (
            self._pending_ts is not None
            and rel - self._pending_ts <= self.bunch_window
            and len(self._pending) < self.max_bunch_packages
        ):
            self._pending.append(package)
        else:
            self._flush()
            self._pending = [package]
            self._pending_ts = rel

    def _flush(self) -> None:
        if self._pending:
            self._bunches.append(Bunch(self._pending_ts, self._pending))
            self._pending = []
            self._pending_ts = None

    def finish(self) -> Trace:
        """Close the current bunch and return the collected trace."""
        self._flush()
        return Trace(self._bunches, label=self.label)

    @property
    def package_count(self) -> int:
        return sum(len(b) for b in self._bunches) + len(self._pending)

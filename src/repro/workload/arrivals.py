"""Open arrival processes for the real-world trace synthesisers.

All functions return NumPy arrays of absolute arrival timestamps in
seconds, generated vectorised from a seeded stream.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import WorkloadError
from ..rng import make_rng


def constant_arrivals(rate: float, duration: float) -> np.ndarray:
    """Deterministic arrivals at fixed spacing ``1/rate`` over [0, duration)."""
    if rate <= 0 or duration <= 0:
        raise WorkloadError("rate and duration must be > 0")
    n = int(rate * duration)
    return np.arange(n, dtype=np.float64) / rate


def poisson_arrivals(
    rate: float, duration: float, seed: Optional[int] = None
) -> np.ndarray:
    """Homogeneous Poisson arrivals at ``rate``/s over [0, duration)."""
    if rate <= 0 or duration <= 0:
        raise WorkloadError("rate and duration must be > 0")
    rng = make_rng(seed)
    # Generate with 20 % headroom, then trim — cheaper than a loop.
    expected = rate * duration
    n = int(expected + 4 * np.sqrt(expected) + 16)
    gaps = rng.exponential(1.0 / rate, size=n)
    times = np.cumsum(gaps)
    times = times[times < duration]
    while times.size and times[-1] < duration and times.size == n:
        extra = np.cumsum(rng.exponential(1.0 / rate, size=n)) + times[-1]
        times = np.concatenate([times, extra[extra < duration]])
    return times


def mmpp_arrivals(
    rate_low: float,
    rate_high: float,
    mean_low_duration: float,
    mean_high_duration: float,
    duration: float,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates between a quiet state (``rate_low``) and a
    burst state (``rate_high``); state sojourn times are exponential.
    cello-class server traces are strongly bursty, which is what makes
    their load-control error larger than the smooth synthetic traces'
    (paper Table V vs. Fig. 8).
    """
    if min(rate_low, rate_high, mean_low_duration, mean_high_duration) <= 0:
        raise WorkloadError("all MMPP parameters must be > 0")
    if duration <= 0:
        raise WorkloadError("duration must be > 0")
    rng = make_rng(seed)
    times = []
    t = 0.0
    high = False
    while t < duration:
        sojourn = rng.exponential(mean_high_duration if high else mean_low_duration)
        end = min(t + sojourn, duration)
        rate = rate_high if high else rate_low
        span = end - t
        if span > 0:
            n = rng.poisson(rate * span)
            if n:
                times.append(np.sort(rng.uniform(t, end, size=n)))
        t = end
        high = not high
    if not times:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(times)


def diurnal_rate(
    base_rate: float,
    peak_rate: float,
    period: float = 86400.0,
    phase: float = 0.0,
) -> Callable[[float], float]:
    """Rate function oscillating between base and peak over ``period``.

    Returns ``rate(t)`` for :func:`inhomogeneous_poisson`.  A web
    server's request rate over a week is roughly sinusoidal per day.
    """
    if base_rate <= 0 or peak_rate < base_rate:
        raise WorkloadError("need 0 < base_rate <= peak_rate")
    amplitude = (peak_rate - base_rate) / 2.0
    mid = base_rate + amplitude

    def rate(t: float) -> float:
        return mid + amplitude * np.sin(2.0 * np.pi * (t - phase) / period)

    return rate


def inhomogeneous_poisson(
    rate_fn: Callable[[float], float],
    max_rate: float,
    duration: float,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Thinned (Lewis-Shedler) inhomogeneous Poisson arrivals."""
    if max_rate <= 0 or duration <= 0:
        raise WorkloadError("max_rate and duration must be > 0")
    rng = make_rng(seed)
    candidates = poisson_arrivals(max_rate, duration, seed=int(rng.integers(2**31)))
    if candidates.size == 0:
        return candidates
    rates = np.array([rate_fn(t) for t in candidates], dtype=np.float64)
    if np.any(rates > max_rate + 1e-9):
        raise WorkloadError("rate_fn exceeds max_rate; thinning would be biased")
    keep = rng.random(candidates.size) < rates / max_rate
    return candidates[keep]

"""TPC-C-style OLTP trace synthesis.

Table I shows TPC-C as the workhorse workload of the surveyed
energy-conservation papers (DRPM, eRAID, PA/PB).  At the block level an
OLTP database produces a very specific signature:

* a *data tablespace* hit by small (8 KiB page) random reads and
  writes, skewed toward hot tables;
* a *redo log* written by strictly sequential small appends, one per
  transaction commit;
* arrivals grouped per transaction: a burst of data-page accesses
  followed by the commit write.

:func:`generate_oltp_trace` synthesises that structure so the policy
benchmarks have the workload class the surveyed papers were actually
judged on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError
from ..rng import make_rng
from ..trace.record import READ, WRITE, Bunch, IOPackage, Trace
from ..units import GB, KiB, SECTOR_BYTES
from .arrivals import poisson_arrivals


@dataclass(frozen=True)
class OLTPModel:
    """Parameters of the synthetic OLTP workload."""

    data_bytes: int = 40 * GB
    """Tablespace extent."""
    log_bytes: int = 2 * GB
    """Redo log extent, placed immediately after the tablespace."""
    page_bytes: int = 8 * KiB
    read_fraction: float = 0.65
    """Fraction of data-page accesses that are reads."""
    ops_min: int = 2
    ops_max: int = 8
    """Data-page accesses per transaction (uniform)."""
    commit_bytes: int = 4 * KiB
    """Redo record size per commit."""
    tps: float = 120.0
    """Transaction arrival rate (Poisson)."""
    hot_fraction: float = 0.2
    hot_weight: float = 0.8
    """80 % of page accesses land in the hottest 20 % of pages."""

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.page_bytes % SECTOR_BYTES:
            raise WorkloadError("page_bytes must be a positive 512 multiple")
        if not 0 <= self.read_fraction <= 1:
            raise WorkloadError("read_fraction must be in [0,1]")
        if not 1 <= self.ops_min <= self.ops_max:
            raise WorkloadError("need 1 <= ops_min <= ops_max")
        if not (0 < self.hot_fraction < 1 and 0 < self.hot_weight < 1):
            raise WorkloadError("hot_fraction/hot_weight must be in (0,1)")

    @property
    def data_pages(self) -> int:
        return self.data_bytes // self.page_bytes

    @property
    def log_start_sector(self) -> int:
        return self.data_bytes // SECTOR_BYTES

    @property
    def capacity_sectors(self) -> int:
        return (self.data_bytes + self.log_bytes) // SECTOR_BYTES


def generate_oltp_trace(
    duration: float = 60.0,
    model: Optional[OLTPModel] = None,
    seed: Optional[int] = None,
    label: str = "oltp",
) -> Trace:
    """Synthesise an OLTP trace of ``duration`` seconds."""
    model = model or OLTPModel()
    rng = make_rng(seed)
    commits = poisson_arrivals(
        model.tps, duration, seed=int(rng.integers(2**31))
    )
    if commits.size == 0:
        return Trace([], label=label)

    page_sectors = model.page_bytes // SECTOR_BYTES
    n_pages = model.data_pages
    hot_pages = max(1, int(n_pages * model.hot_fraction))
    log_cursor = model.log_start_sector
    log_end = model.capacity_sectors
    commit_sectors = -(-model.commit_bytes // SECTOR_BYTES)

    bunches: List[Bunch] = []
    for t in commits:
        n_ops = int(rng.integers(model.ops_min, model.ops_max + 1))
        packages = []
        for _ in range(n_ops):
            if rng.random() < model.hot_weight:
                page = int(rng.integers(0, hot_pages))
            else:
                page = int(rng.integers(hot_pages, n_pages))
            op = READ if rng.random() < model.read_fraction else WRITE
            packages.append(
                IOPackage(page * page_sectors, model.page_bytes, op)
            )
        # The transaction's page accesses hit the device together...
        bunches.append(Bunch(float(t), packages))
        # ...and the commit's log append follows ~1 ms later.
        if log_cursor + commit_sectors > log_end:
            log_cursor = model.log_start_sector  # circular log
        bunches.append(
            Bunch(
                float(t) + 0.001,
                [IOPackage(log_cursor, model.commit_bytes, WRITE)],
            )
        )
        log_cursor += commit_sectors
    # Commits can arrive less than the 1 ms log delay apart, so a log
    # bunch may nominally post-date the next transaction's bunch; sort
    # (stably) to keep the trace time-ordered for writers/validators.
    bunches.sort(key=lambda b: b.timestamp)
    return Trace(bunches, label=label)

"""The 125-trace synthetic matrix (paper §V-C1).

"Using IOmeter, we generated 125 synthetic traces ... five request
sizes, five read ratios, and five random ratios."  Each trace is
collected by running the closed-loop generator at peak against a target
array while the trace collector records issues, then stored in the
repository under the encoding name.

The paper collects ~2-minute traces; a full 125 × 2-minute matrix is
hours of simulated I/O, so ``build_matrix`` takes the collection
duration as a parameter — benchmarks use a few seconds per cell, which
preserves every relationship the experiments measure.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..config import (
    MATRIX_RANDOM_RATIOS,
    MATRIX_READ_RATIOS,
    MATRIX_REQUEST_SIZES,
    WorkloadMode,
)
from ..rng import derive_seed, DEFAULT_SEED
from ..sim.engine import Simulator
from ..storage.base import StorageDevice
from ..trace.record import Trace
from ..trace.repository import TraceName, TraceRepository
from .collector import TraceCollector
from .iometer import IometerGenerator


def matrix_modes(
    request_sizes: Sequence[int] = MATRIX_REQUEST_SIZES,
    read_ratios: Sequence[float] = MATRIX_READ_RATIOS,
    random_ratios: Sequence[float] = MATRIX_RANDOM_RATIOS,
) -> List[WorkloadMode]:
    """The cartesian product of workload modes (125 by default)."""
    return [
        WorkloadMode(request_size=rs, random_ratio=rnd, read_ratio=rd)
        for rs, rd, rnd in itertools.product(request_sizes, read_ratios, random_ratios)
    ]


def collect_trace(
    device_factory: Callable[[], StorageDevice],
    mode: WorkloadMode,
    duration: float,
    outstanding: int = 16,
    seed: Optional[int] = None,
    bunch_window: float = 0.001,
) -> Trace:
    """Collect one peak trace for ``mode`` on a fresh device.

    A fresh device per cell keeps cells independent (no head position or
    queue state leaking between collections), mirroring the paper's
    per-test resets.
    """
    sim = Simulator()
    device = device_factory()
    device.attach(sim)
    collector = TraceCollector(bunch_window=bunch_window, label="collect")
    generator = IometerGenerator(mode, outstanding=outstanding, seed=seed)
    generator.run(sim, device, duration, collector=collector)
    return collector.finish()


def build_matrix(
    device_factory: Callable[[], StorageDevice],
    repository: TraceRepository,
    device_label: str,
    duration: float = 5.0,
    modes: Optional[Iterable[WorkloadMode]] = None,
    outstanding: int = 16,
    base_seed: int = DEFAULT_SEED,
    overwrite: bool = False,
) -> List[Tuple[TraceName, int]]:
    """Collect and store the trace matrix; returns (name, bunch count) pairs.

    Skips cells already present unless ``overwrite``.
    """
    results = []
    for mode in modes if modes is not None else matrix_modes():
        name = TraceName(
            device=device_label,
            request_size=mode.request_size,
            random_ratio=mode.random_ratio,
            read_ratio=mode.read_ratio,
        )
        if name in repository and not overwrite:
            trace = repository.load(name)
            results.append((name, len(trace)))
            continue
        seed = derive_seed(base_seed, "matrix", name.filename)
        trace = collect_trace(
            device_factory, mode, duration, outstanding=outstanding, seed=seed
        )
        repository.store(name, trace, overwrite=overwrite)
        results.append((name, len(trace)))
    return results

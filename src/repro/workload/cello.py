"""Synthetic re-creation of the HP cello99 trace (used in §VI-F, Table V).

cello99 is a low-level disk trace from an HP-UX timesharing server.  The
paper's facts: read ratio 58 %; request sizes are markedly *uneven* —
which is why cello's load-control error (Table V, up to ~32 % at the
10 % level) exceeds the web trace's (~7 %); arrivals are bursty.

The synthesiser models:

* request sizes as a mixture: filesystem-block-sized small I/O (2-8 KiB)
  dominating by count, plus a heavy tail of large sequential transfers
  (64 KiB - 1 MiB) — the unevenness knob;
* MMPP (bursty) arrivals;
* partial sequential runs: a burst often continues the previous
  address (filesystem readahead / sequential scans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError
from ..rng import make_rng
from ..trace.record import READ, WRITE, Bunch, IOPackage, Trace
from ..units import GB, KiB, SECTOR_BYTES
from .arrivals import mmpp_arrivals


@dataclass(frozen=True)
class CelloModel:
    """Parameters of the synthetic cello99-like workload."""

    device_bytes: int = 4 * GB
    read_ratio: float = 0.58
    small_sizes: tuple = (2 * KiB, 4 * KiB, 8 * KiB)
    small_weights: tuple = (0.35, 0.40, 0.25)
    large_fraction: float = 0.08
    """Fraction of requests drawn from the large heavy tail."""
    large_min: int = 64 * KiB
    large_max: int = 1024 * KiB
    sequential_run_prob: float = 0.55
    """Probability the next request continues the previous extent."""
    rate_low: float = 60.0
    rate_high: float = 420.0
    mean_low_duration: float = 6.0
    mean_high_duration: float = 1.5
    bunch_fraction: float = 0.30

    def __post_init__(self) -> None:
        if not 0 <= self.read_ratio <= 1:
            raise WorkloadError("read_ratio must be in [0,1]")
        if abs(sum(self.small_weights) - 1.0) > 1e-9:
            raise WorkloadError("small_weights must sum to 1")


def generate_cello_trace(
    duration: float = 120.0,
    model: Optional[CelloModel] = None,
    seed: Optional[int] = None,
    label: str = "cello99",
) -> Trace:
    """Synthesise a cello99-like trace of ``duration`` seconds."""
    model = model or CelloModel()
    rng = make_rng(seed)

    arrivals = mmpp_arrivals(
        model.rate_low,
        model.rate_high,
        model.mean_low_duration,
        model.mean_high_duration,
        duration,
        seed=int(rng.integers(2**31)),
    )
    if arrivals.size == 0:
        return Trace([], label=label)
    n = arrivals.size

    # Sizes: small mixture vs heavy tail (log-uniform over the tail).
    is_large = rng.random(n) < model.large_fraction
    small_choice = rng.choice(
        np.array(model.small_sizes, dtype=np.int64),
        size=n,
        p=np.array(model.small_weights),
    )
    tail = np.exp(
        rng.uniform(np.log(model.large_min), np.log(model.large_max), size=n)
    )
    tail_sectors = np.maximum(1, np.round(tail / SECTOR_BYTES)).astype(np.int64)
    sizes = np.where(is_large, tail_sectors * SECTOR_BYTES, small_choice)

    ops = np.where(rng.random(n) < model.read_ratio, READ, WRITE)

    capacity_sectors = model.device_bytes // SECTOR_BYTES
    starts = np.empty(n, dtype=np.int64)
    cursor = 0
    for i in range(n):
        req_sectors = -(-int(sizes[i]) // SECTOR_BYTES)
        limit = capacity_sectors - req_sectors
        if i > 0 and rng.random() < model.sequential_run_prob and cursor <= limit:
            starts[i] = cursor
        else:
            starts[i] = int(rng.integers(0, max(limit, 1)))
        cursor = int(starts[i]) + req_sectors

    bunches: List[Bunch] = []
    i = 0
    while i < n:
        fan = int(rng.integers(2, 5)) if rng.random() < model.bunch_fraction else 1
        j = min(i + fan, n)
        packages = [
            IOPackage(int(starts[k]), int(sizes[k]), int(ops[k]))
            for k in range(i, j)
        ]
        bunches.append(Bunch(float(arrivals[i]), packages))
        i = j
    return Trace(bunches, label=label)

"""Policy-search assembly and verification.

:func:`evaluate_search` turns a capture-carrying
:class:`~repro.workload.parallel.GridOutcome` into a
:class:`SearchOutcome`: every base cell's frozen capture is re-scored
under an implicit always-on baseline plus each requested policy, and
the full (cell × policy) matrix is reduced to its exact Pareto
frontier (energy vs. mean response time).

:func:`verify_search` is the trust anchor ``tracer search --verify``
invokes: each base cell is replayed *per point* — ``engine="kernel"``
where the fused grid used the kernel, ``engine="event"`` otherwise —
its capture re-scored through the same policies, and every metric
compared bit-for-bit against the search outcome.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import ReplayConfig
from ..energysaving.policy import (
    AnalyticPolicy,
    BaselinePolicy,
    PolicyError,
    PolicyMetrics,
    evaluate_policy,
)
from .pareto import pareto_indices

__all__ = [
    "SearchCell",
    "SearchOutcome",
    "available_policies",
    "policy_from_spec",
    "build_policies",
    "evaluate_search",
    "verify_search",
]


def _policy_registry() -> Dict[str, type]:
    from ..energysaving.drpm import DRPMPolicy
    from ..energysaving.eraid import ERAIDPolicy
    from ..energysaving.maid import MAIDPolicy
    from ..energysaving.pdc import PDCPolicy

    return {
        "baseline": BaselinePolicy,
        "maid": MAIDPolicy,
        "drpm": DRPMPolicy,
        "pdc": PDCPolicy,
        "eraid": ERAIDPolicy,
    }


def available_policies() -> Tuple[str, ...]:
    return tuple(sorted(_policy_registry()))


def policy_from_spec(spec: str) -> AnalyticPolicy:
    """Build a policy from ``name`` or ``name:key=value,key=value``.

    Examples: ``"maid"``, ``"maid:idle_timeout=5"``,
    ``"drpm:step_timeout=1,transition_time=0.5"``.
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    registry = _policy_registry()
    if name not in registry:
        raise PolicyError(
            f"unknown policy {name!r}; available: "
            + ", ".join(available_policies())
        )
    kwargs: Dict[str, float] = {}
    if rest.strip():
        for part in rest.split(","):
            key, sep, value = part.partition("=")
            if not sep:
                raise PolicyError(
                    f"bad policy parameter {part!r} in {spec!r} "
                    "(expected key=value)"
                )
            try:
                kwargs[key.strip()] = float(value)
            except ValueError:
                raise PolicyError(
                    f"policy parameter {key.strip()!r} in {spec!r} "
                    f"is not a number: {value!r}"
                )
    try:
        return registry[name](**kwargs)
    except TypeError as exc:
        raise PolicyError(f"policy {name!r} rejected parameters: {exc}")


def build_policies(specs: Sequence[str]) -> List[AnalyticPolicy]:
    policies = [policy_from_spec(s) for s in specs]
    names = [p.name for p in policies]
    if len(set(names)) != len(names):
        raise PolicyError(f"duplicate policy names in {list(names)}")
    return policies


@dataclass
class SearchCell:
    """One (base grid cell × policy) point of the search matrix."""

    device: str
    trace: str
    load: float
    time_scale: float
    policy: str
    metrics: PolicyMetrics
    engine: str
    fused: bool
    fallback: Optional[str]
    on_frontier: bool = False

    @property
    def base_key(self) -> str:
        return (
            f"{self.device}/{self.trace}"
            f"@{self.load:g}x{self.time_scale:g}"
        )

    @property
    def key(self) -> str:
        return f"{self.base_key}#{self.policy}"

    def to_dict(self, deterministic: bool = False) -> dict:
        payload = {
            "device": self.device,
            "trace": self.trace,
            "load": self.load,
            "time_scale": self.time_scale,
            "policy": self.policy,
            "metrics": self.metrics.to_dict(),
            "on_frontier": self.on_frontier,
        }
        if not deterministic:
            payload["engine"] = self.engine
            payload["fused"] = self.fused
            if self.fallback is not None:
                payload["fallback"] = self.fallback
        return payload


@dataclass
class SearchOutcome:
    """A completed policy search: the scored matrix plus its frontier.

    ``cells`` is row-major over (device, trace, load, time_scale) with
    the policy axis innermost (baseline first).  ``grid`` retains the
    underlying :class:`~repro.workload.parallel.GridOutcome` so
    verification and ledger recording can reach the raw replay results.
    """

    cells: List[SearchCell]
    policies: Tuple[str, ...]
    devices: Tuple[str, ...]
    traces: Tuple[str, ...]
    loads: Tuple[float, ...]
    time_scales: Tuple[float, ...]
    sampling_cycle: float
    base_cells: int
    engines: Dict[str, int]
    fallback_reasons: Dict[str, str]
    fused_cells: int
    elapsed_seconds: float
    grid: Any = field(repr=False, default=None)

    @property
    def shape(self) -> Tuple[int, int, int, int, int]:
        return (
            len(self.devices), len(self.traces),
            len(self.loads), len(self.time_scales), len(self.policies),
        )

    def frontier(self) -> List[SearchCell]:
        """Non-dominated cells, cheapest-energy first."""
        front = [c for c in self.cells if c.on_frontier]
        front.sort(
            key=lambda c: (
                c.metrics.energy_joules, c.metrics.mean_response, c.key
            )
        )
        return front

    def ranked(self) -> List[SearchCell]:
        """All cells, best IOPS/Watt first (the paper's headline rank)."""
        return sorted(
            self.cells,
            key=lambda c: (-c.metrics.iops_per_watt, c.key),
        )

    def to_dict(self, deterministic: bool = False) -> dict:
        payload = {
            "policies": list(self.policies),
            "devices": list(self.devices),
            "traces": list(self.traces),
            "loads": list(self.loads),
            "time_scales": list(self.time_scales),
            "sampling_cycle": self.sampling_cycle,
            "base_cells": self.base_cells,
            "cells": [c.to_dict(deterministic) for c in self.cells],
            "frontier": [c.key for c in self.frontier()],
            "ranking": [c.key for c in self.ranked()],
        }
        if not deterministic:
            payload["engines"] = dict(sorted(self.engines.items()))
            payload["fallback_reasons"] = dict(
                sorted(self.fallback_reasons.items())
            )
            payload["fused_cells"] = self.fused_cells
            payload["elapsed_seconds"] = self.elapsed_seconds
        return payload


def evaluate_search(
    grid,
    policies: Sequence[AnalyticPolicy],
    devices,
    *,
    config: Optional[ReplayConfig] = None,
) -> SearchOutcome:
    """Re-score a capture-carrying grid under ``policies``.

    ``devices`` must be the factory mapping the grid ran with (probe
    instances bind each policy's spec constants per device family).
    The implicit always-on baseline is evaluated first per cell as the
    savings reference and included in the matrix.
    """
    import time as _time

    t_wall = _time.perf_counter()
    cfg = config or ReplayConfig()
    if not isinstance(devices, dict):
        devices = {"device": devices}
    policies = list(policies)
    names = [p.name for p in policies]
    if "baseline" in names:
        raise PolicyError("the baseline policy is always evaluated implicitly")
    if len(set(names)) != len(names):
        raise PolicyError(f"duplicate policy names in {names}")
    baseline = BaselinePolicy()
    cycle = float(cfg.sampling_cycle)
    cells: List[SearchCell] = []
    configured_for: Optional[str] = None
    for gcell in grid.cells:
        if gcell.capture is None:
            raise PolicyError(
                f"grid cell {gcell.key} carries no capture; "
                "run the grid with capture=True"
            )
        if gcell.device != configured_for:
            try:
                probe = devices[gcell.device]()
            except KeyError:
                raise PolicyError(
                    f"no device factory named {gcell.device!r} for search"
                )
            baseline.configure(probe)
            for policy in policies:
                policy.configure(probe)
            configured_for = gcell.device

        def add(metrics: PolicyMetrics) -> None:
            cells.append(
                SearchCell(
                    device=gcell.device,
                    trace=gcell.trace,
                    load=gcell.load,
                    time_scale=gcell.time_scale,
                    policy=metrics.policy,
                    metrics=metrics,
                    engine=gcell.engine,
                    fused=gcell.fused,
                    fallback=gcell.fallback,
                )
            )

        base_metrics = replace(
            baseline.evaluate(gcell.capture, sampling_cycle=cycle),
            energy_saving=0.0,
            response_penalty=0.0,
        )
        add(base_metrics)
        for policy in policies:
            add(
                evaluate_policy(
                    policy, gcell.capture,
                    sampling_cycle=cycle, baseline=base_metrics,
                )
            )

    for i in pareto_indices(
        [(c.metrics.energy_joules, c.metrics.mean_response) for c in cells]
    ):
        cells[i].on_frontier = True
    return SearchOutcome(
        cells=cells,
        policies=tuple(["baseline"] + names),
        devices=grid.devices,
        traces=grid.traces,
        loads=grid.loads,
        time_scales=grid.time_scales,
        sampling_cycle=cycle,
        base_cells=len(grid.cells),
        engines=dict(grid.engines),
        fallback_reasons=dict(grid.fallback_reasons),
        fused_cells=grid.fused_cells,
        elapsed_seconds=grid.elapsed_seconds
        + (_time.perf_counter() - t_wall),
        grid=grid,
    )


def _canon_result(result) -> str:
    """Result summary minus engine/telemetry provenance, for equality."""
    payload = result.to_dict()
    metadata = dict(payload.get("metadata", {}))
    for key in ("engine", "engine_fallback", "telemetry", "interval_frames"):
        metadata.pop(key, None)
    payload["metadata"] = metadata
    return json.dumps(payload, sort_keys=True)


def verify_search(
    outcome: SearchOutcome,
    traces,
    devices,
    policies: Sequence[AnalyticPolicy],
    *,
    config: Optional[ReplayConfig] = None,
    stream_interval: Optional[float] = None,
) -> List[str]:
    """Re-derive every cell per point and diff it against ``outcome``.

    Each base cell is replayed individually — ``engine="kernel"`` where
    the search used the kernel (fused or per-point), ``engine="event"``
    otherwise — its capture re-scored under the same policies, and both
    the replay summary and every policy metric compared exactly.
    Returns human-readable mismatch descriptions; empty means verified.
    """
    from ..replay.capture import CaptureSink
    from ..replay.session import replay_trace

    cfg = config or ReplayConfig()
    if not isinstance(traces, dict):
        traces = {getattr(traces, "label", "trace"): traces}
    if not isinstance(devices, dict):
        devices = {"device": devices}
    if outcome.grid is None:
        raise PolicyError("search outcome carries no grid to verify against")
    by_base: Dict[str, Dict[str, SearchCell]] = {}
    for cell in outcome.cells:
        by_base.setdefault(cell.base_key, {})[cell.policy] = cell

    baseline = BaselinePolicy()
    cycle = float(cfg.sampling_cycle)
    mismatches: List[str] = []
    configured_for: Optional[str] = None
    for gcell in outcome.grid.cells:
        engine = "kernel" if gcell.engine == "kernel" else "event"
        sink = CaptureSink()
        result = replay_trace(
            traces[gcell.trace],
            devices[gcell.device](),
            gcell.load,
            config=replace(cfg, time_scale=gcell.time_scale),
            stream_interval=stream_interval,
            engine=engine,
            capture=sink,
        )
        if _canon_result(result) != _canon_result(gcell.result):
            mismatches.append(
                f"{gcell.key}: per-point engine={engine!r} replay summary "
                "differs from the search's result"
            )
        if gcell.device != configured_for:
            probe = devices[gcell.device]()
            baseline.configure(probe)
            for policy in policies:
                policy.configure(probe)
            configured_for = gcell.device
        base_metrics = replace(
            baseline.evaluate(sink.capture, sampling_cycle=cycle),
            energy_saving=0.0,
            response_penalty=0.0,
        )
        expected = by_base.get(gcell.key, {})
        reference = [base_metrics] + [
            evaluate_policy(
                policy, sink.capture,
                sampling_cycle=cycle, baseline=base_metrics,
            )
            for policy in policies
        ]
        for metrics in reference:
            cell = expected.get(metrics.policy)
            if cell is None:
                mismatches.append(
                    f"{gcell.key}#{metrics.policy}: missing from the search"
                )
                continue
            got = json.dumps(cell.metrics.to_dict(), sort_keys=True)
            want = json.dumps(metrics.to_dict(), sort_keys=True)
            if got != want:
                mismatches.append(
                    f"{cell.key}: policy metrics differ from per-point "
                    f"engine={engine!r} replay\n  search:    {got}\n"
                    f"  per-point: {want}"
                )
    return mismatches

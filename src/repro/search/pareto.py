"""Exact Pareto reduction for the energy-policy search.

The search matrix scores every (cell × policy) combination on two
objectives the paper trades off — energy consumed and mean response
time — and the frontier is the exact non-dominated set under
minimisation of both.  Comparisons are exact float comparisons (no
epsilon): the inputs are deterministic replay metrics, bit-identical
across engines, so approximate dominance would only blur them.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["dominates", "pareto_indices"]


def dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """True when ``a`` is at least as good on both axes and better on one."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def pareto_indices(points: Sequence[Tuple[float, float]]) -> List[int]:
    """Indices of the non-dominated points, ascending.

    Duplicate points are mutually non-dominated and all kept; a point
    is dropped iff some other point strictly dominates it.  O(n log n)
    sweep in (x, y) order.
    """
    n = len(points)
    order = sorted(
        range(n), key=lambda i: (float(points[i][0]), float(points[i][1]))
    )
    keep: List[int] = []
    best_y = math.inf
    at = 0
    while at < n:
        x = float(points[order[at]][0])
        group = []
        while at < n and float(points[order[at]][0]) == x:
            group.append(order[at])
            at += 1
        min_y = min(float(points[g][1]) for g in group)
        # Same-x points above the group minimum are dominated inside
        # the group; the minimum survives only if no smaller-x point
        # already reached (or beat) its y.
        if min_y < best_y:
            keep.extend(g for g in group if float(points[g][1]) == min_y)
            best_y = min_y
    keep.sort()
    return keep

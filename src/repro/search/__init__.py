"""Energy-policy Pareto search at kernel speed.

The paper's headline question — *which storage configuration and
energy policy is most efficient for this workload?* — answered as one
sweep: :func:`repro.workload.parallel.run_policy_search` replays a
(device × trace × load × time-scale) grid once through the fused
kernel with per-cell captures, this package re-scores every capture
under each energy policy (:mod:`repro.energysaving.policy`), reduces
the matrix to its exact Pareto frontier (energy vs. response time),
and ranks the cells by IOPS/Watt.  ``tracer search`` is the CLI;
``--verify`` re-derives every cell per point and diffs bit-for-bit.
"""

from .driver import (
    SearchCell,
    SearchOutcome,
    available_policies,
    build_policies,
    evaluate_search,
    policy_from_spec,
    verify_search,
)
from .pareto import dominates, pareto_indices

__all__ = [
    "SearchCell",
    "SearchOutcome",
    "available_policies",
    "build_policies",
    "evaluate_search",
    "policy_from_spec",
    "verify_search",
    "dominates",
    "pareto_indices",
]

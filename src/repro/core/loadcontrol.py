"""The combined load controller.

Glues the proportional filter (which bunches) and the time scaler (when)
into the single knob the replay session exposes.  The controller accepts
any target intensity:

* intensities that land on the filter grid (k / group_size, k integer)
  use pure bunch filtering — the paper's preferred mechanism because it
  preserves original timestamps;
* intensities above 1.0 use pure time scaling (the filter cannot add
  load);
* off-grid intensities below 1.0 combine the nearest-above filter level
  with a gentle time stretch, e.g. 25 % = filter to 30 % then stretch
  time by 30/25.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FilterError
from ..trace.packed import PackedTrace, TraceLike
from ..trace.record import Trace
from .proportional_filter import ProportionalFilter
from .timescale import TimeScaler


@dataclass(frozen=True)
class LoadPlan:
    """How a target intensity decomposes into filter + time-scale parts."""

    target: float
    filter_proportion: float
    time_intensity: float

    @property
    def pure_filter(self) -> bool:
        return math.isclose(self.time_intensity, 1.0)


class LoadController:
    """Scale a trace's I/O load to any positive intensity.

    Parameters
    ----------
    group_size:
        Group size handed to the proportional filter (default 10).
    """

    def __init__(self, group_size: int = 10) -> None:
        self.filter = ProportionalFilter(group_size)
        self.group_size = group_size

    def plan(self, intensity: float) -> LoadPlan:
        """Decompose ``intensity`` into (filter proportion, time factor)."""
        if intensity <= 0:
            raise FilterError(f"intensity must be > 0, got {intensity!r}")
        g = self.group_size
        if intensity > 1.0:
            return LoadPlan(intensity, 1.0, intensity)
        scaled = intensity * g
        k = round(scaled)
        if k >= 1 and abs(scaled - k) < 1e-9:
            return LoadPlan(intensity, k / g, 1.0)
        k_above = min(g, math.ceil(scaled)) or 1
        k_above = max(k_above, 1)
        proportion = k_above / g
        return LoadPlan(intensity, proportion, intensity / proportion)

    def apply(self, trace: TraceLike, intensity: float) -> TraceLike:
        """Return the trace scaled to ``intensity`` per :meth:`plan`.

        Packed traces take the vectorised filter/scale fast paths and
        stay packed throughout.
        """
        plan = self.plan(intensity)
        out = trace
        if plan.filter_proportion < 1.0:
            out = self.filter.apply(out, plan.filter_proportion)
        if not math.isclose(plan.time_intensity, 1.0):
            out = TimeScaler(plan.time_intensity).apply(out)
        if math.isclose(plan.filter_proportion, 1.0) and math.isclose(
            plan.time_intensity, 1.0
        ):
            label = f"{trace.label}@100%"
            if isinstance(trace, PackedTrace):
                out = trace.with_label(label)
            else:
                out = Trace(trace.bunches, label=label)
        return out

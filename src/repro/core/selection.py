"""Uniform selection pattern math (paper Fig. 5).

Given a group of ``g`` consecutive bunches and a target of ``k`` selected
bunches per group, the filter picks positions ``ceil(i * g / k)`` for
``i = 1..k`` (1-based).  That reproduces the paper's examples exactly:

* 10 % load (k=1, g=10)  → select the 10th bunch of each group;
* 20 % load (k=2, g=10)  → select the 5th and 10th bunches;
* 100 % load (k=10)      → select everything.

Uniform — not random — selection matters: "random filtering bunches can
possibly lead to distorted features of replayed traces due to many wave
crests and troughs of workloads" (Section IV-A).  The ablation benchmark
quantifies that claim.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Tuple

import numpy as np

from ..errors import FilterError


@lru_cache(maxsize=256)
def uniform_positions(k: int, group_size: int = 10) -> Tuple[int, ...]:
    """0-based positions of the ``k`` selected bunches within a group.

    >>> uniform_positions(1)
    (9,)
    >>> uniform_positions(2)
    (4, 9)
    >>> uniform_positions(10)
    (0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
    """
    if group_size < 1:
        raise FilterError(f"group_size must be >= 1, got {group_size}")
    if not 1 <= k <= group_size:
        raise FilterError(
            f"selected count k must be in [1, {group_size}], got {k}"
        )
    positions = tuple(
        math.ceil(i * group_size / k) - 1 for i in range(1, k + 1)
    )
    # ceil(i*g/k) is strictly increasing for i=1..k<=g, so positions are
    # unique and the last one is always group_size-1.
    return positions


def proportion_to_count(proportion: float, group_size: int = 10) -> int:
    """Convert a configured load proportion to bunches-per-group.

    The proportion must land on a multiple of ``1/group_size`` (the paper
    uses 10 %, 20 %, ... 100 % with groups of ten); anything else is a
    configuration error rather than something to round silently.
    """
    if not 0.0 < proportion <= 1.0:
        raise FilterError(
            f"load proportion must be in (0, 1], got {proportion!r}"
        )
    scaled = proportion * group_size
    k = round(scaled)
    if abs(scaled - k) > 1e-9 or k < 1:
        raise FilterError(
            f"load proportion {proportion} is not a multiple of "
            f"1/{group_size}; use time scaling for arbitrary intensities"
        )
    return k


def selection_mask(
    n_bunches: int, proportion: float, group_size: int = 10
) -> np.ndarray:
    """Boolean mask over ``n_bunches`` marking selected bunches.

    The trace's bunches are partitioned into consecutive groups of
    ``group_size``; the final partial group (if any) uses the same
    position pattern truncated to its length, so short tails are not
    over- or under-sampled relative to their size.
    """
    if n_bunches < 0:
        raise FilterError(f"n_bunches must be >= 0, got {n_bunches}")
    k = proportion_to_count(proportion, group_size)
    positions = np.asarray(uniform_positions(k, group_size), dtype=np.int64)
    mask = np.zeros(n_bunches, dtype=bool)
    n_full = n_bunches // group_size
    if n_full:
        # Vectorised: add group offsets to the in-group positions.
        offsets = np.arange(n_full, dtype=np.int64) * group_size
        idx = (offsets[:, None] + positions[None, :]).ravel()
        mask[idx] = True
    tail = n_bunches - n_full * group_size
    if tail:
        base = n_full * group_size
        tail_positions = positions[positions < tail]
        mask[base + tail_positions] = True
    return mask

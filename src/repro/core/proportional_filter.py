"""The proportional filter: uniform bunch selection for load control.

Implements the four-step filter algorithm of Section IV-A:

1. partition the trace's bunches into groups of ten (configurable);
2. take the configured replay percentage (10 %, 20 %, ... 100 %);
3. uniformly select that portion of bunches within each group
   (:func:`repro.core.selection.uniform_positions`);
4. replay selected bunches at their *original* timestamps and ignore the
   rest.

Because every group contributes the same number of bunches, the filtered
trace preserves the temporal shape of the original workload (Fig. 12
demonstrates this on a web-server trace).

``random_filter_trace`` implements the strawman the paper argues
against — random bunch selection — for the ablation benchmark.

Every filter accepts both the legacy object :class:`~repro.trace.record.Trace`
and the columnar :class:`~repro.trace.packed.PackedTrace`; the packed
path applies the selection mask as a single vectorised gather and is
property-tested to keep the two representations bit-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import FilterError
from ..rng import make_rng
from ..trace.packed import PackedTrace, TraceLike
from ..trace.record import Trace
from .selection import proportion_to_count, selection_mask


def _apply_mask(trace: TraceLike, mask: np.ndarray, label: str) -> TraceLike:
    """Keep the bunches marked by ``mask``, preserving representation."""
    if isinstance(trace, PackedTrace):
        return trace.select(mask, label=label)
    bunches = [b for b, keep in zip(trace.bunches, mask) if keep]
    return Trace(bunches, label=label)


class ProportionalFilter:
    """Reusable filter bound to a group size.

    Parameters
    ----------
    group_size:
        Bunches per group; the paper fixes 10, giving a 10 % load
        granularity.  Larger groups give finer granularity at the cost
        of coarser temporal interleaving — the group-size ablation
        benchmark explores this trade-off.
    """

    def __init__(self, group_size: int = 10) -> None:
        if group_size < 1:
            raise FilterError(f"group_size must be >= 1, got {group_size}")
        self.group_size = group_size

    def levels(self) -> tuple:
        """The configurable load proportions this group size supports."""
        return tuple((i + 1) / self.group_size for i in range(self.group_size))

    def apply(self, trace: TraceLike, proportion: float) -> TraceLike:
        """Return the filtered trace replaying ``proportion`` of bunches.

        ``proportion == 1.0`` returns a same-content trace (still a new
        object, so callers can mutate labels safely).  Packed traces stay
        packed and are filtered by one vectorised gather.
        """
        mask = selection_mask(len(trace), proportion, self.group_size)
        label = f"{trace.label}@{round(proportion * 100)}%"
        return _apply_mask(trace, mask, label)

    def selected_count(self, n_bunches: int, proportion: float) -> int:
        """How many bunches :meth:`apply` would keep, without building them."""
        return int(selection_mask(n_bunches, proportion, self.group_size).sum())


def filter_trace(
    trace: TraceLike, proportion: float, group_size: int = 10
) -> TraceLike:
    """One-shot convenience wrapper around :class:`ProportionalFilter`."""
    return ProportionalFilter(group_size).apply(trace, proportion)


def random_filter_trace(
    trace: TraceLike,
    proportion: float,
    group_size: int = 10,
    seed: Optional[int] = None,
) -> TraceLike:
    """Randomly select ``k`` bunches per group (the rejected alternative).

    Matches the proportional filter's per-group quota so throughput
    scaling is identical in expectation, but the *positions* within each
    group are random.  The paper predicts this distorts the replayed
    workload's temporal features; ``bench_ablation_selection`` measures
    the distortion as the variance of per-window replay intensity.
    """
    k = proportion_to_count(proportion, group_size)
    rng = make_rng(seed)
    n = len(trace)
    mask = np.zeros(n, dtype=bool)
    for base in range(0, n, group_size):
        size = min(group_size, n - base)
        take = min(k, size)
        idx = rng.choice(size, size=take, replace=False)
        mask[base + idx] = True
    return _apply_mask(
        trace, mask, f"{trace.label}@rand{round(proportion * 100)}%"
    )


def bernoulli_filter_trace(
    trace: TraceLike,
    proportion: float,
    seed: Optional[int] = None,
) -> TraceLike:
    """Globally random (unstratified) selection: keep each bunch with
    probability ``proportion``.

    The naive sampling approach with no per-group quota at all — the
    strongest form of the "random filtering" the paper rejects.  Both
    the selected count and its temporal spread fluctuate, producing the
    wave crests and troughs of §IV-A.
    """
    if not 0.0 < proportion <= 1.0:
        raise FilterError(f"proportion must be in (0, 1], got {proportion!r}")
    rng = make_rng(seed)
    keep = rng.random(len(trace)) < proportion
    return _apply_mask(
        trace, keep, f"{trace.label}@bern{round(proportion * 100)}%"
    )

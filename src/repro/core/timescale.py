"""Inter-arrival-time scaling.

The GUI walkthrough (Fig. 2) adds "the function of scaling inter-arrival
times between requests ... as a supplement for trace entries filtering",
so replay intensity can be scaled to 200 %, 1000 %, or 1 % of the
original.  Where the proportional filter changes *which* bunches replay,
the time scaler changes *when*: an intensity factor ``s`` divides every
inter-bunch gap by ``s`` (``s > 1`` compresses the trace, raising load).

Scaling keeps the first bunch's timestamp as the origin so warm-up
offsets in a trace are preserved proportionally.
"""

from __future__ import annotations

from ..errors import FilterError
from ..trace.packed import PackedTrace, TraceLike
from ..trace.record import Bunch, Trace


class TimeScaler:
    """Scale a trace's I/O intensity by compressing or stretching time.

    Parameters
    ----------
    intensity:
        Target intensity relative to the original: ``2.0`` doubles the
        arrival rate (gaps halve); ``0.01`` slows it to 1 %.
    """

    def __init__(self, intensity: float) -> None:
        if intensity <= 0:
            raise FilterError(f"intensity must be > 0, got {intensity!r}")
        self.intensity = float(intensity)

    @property
    def time_factor(self) -> float:
        """Multiplier applied to inter-arrival gaps (1 / intensity)."""
        return 1.0 / self.intensity

    def apply(self, trace: TraceLike) -> TraceLike:
        """Return a new trace with scaled timestamps.

        Packed traces stay packed: the timestamp column is rescaled in
        one vectorised expression (bit-identical to the object path —
        both evaluate ``origin + (t - origin) * factor`` in IEEE double).
        """
        if isinstance(trace, PackedTrace):
            if len(trace) == 0 or self.intensity == 1.0:
                return trace.with_label(trace.label)
            origin = float(trace.timestamps[0])
            timestamps = origin + (trace.timestamps - origin) * self.time_factor
            return trace.with_timestamps(
                timestamps, label=f"{trace.label}x{self.intensity:g}"
            )
        if len(trace) == 0 or self.intensity == 1.0:
            return Trace(trace.bunches, label=trace.label)
        origin = trace.bunches[0].timestamp
        factor = self.time_factor
        bunches = [
            Bunch(origin + (b.timestamp - origin) * factor, b.packages)
            for b in trace
        ]
        label = f"{trace.label}x{self.intensity:g}"
        return Trace(bunches, label=label)


def scale_trace(trace: TraceLike, intensity: float) -> TraceLike:
    """One-shot convenience wrapper around :class:`TimeScaler`."""
    return TimeScaler(intensity).apply(trace)

"""Load-control accuracy math (paper Eqs. 1 and 2).

Given an original trace ``f`` and a manipulated trace ``f'``:

* the *measured load proportion* is ``LP(f, f') = T(f') / T(f)`` where
  ``T`` is throughput in IOPS or MBPS (Eq. 1);
* the *control accuracy* is ``A(f, f') = LP(f, f') / LP_config`` (Eq. 2),
  ideally 1.0.

Tables IV and V of the paper report these for a web-server trace and an
HP cello99 trace; ``accuracy_table`` reproduces the table layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..errors import FilterError


def load_proportion(original_throughput: float, filtered_throughput: float) -> float:
    """Eq. 1: measured load proportion ``T(f')/T(f)``."""
    if original_throughput <= 0:
        raise FilterError(
            f"original throughput must be > 0, got {original_throughput!r}"
        )
    if filtered_throughput < 0:
        raise FilterError(
            f"filtered throughput must be >= 0, got {filtered_throughput!r}"
        )
    return filtered_throughput / original_throughput


def control_accuracy(measured_proportion: float, configured_proportion: float) -> float:
    """Eq. 2: ``A = LP_measured / LP_config`` (1.0 = perfect control)."""
    if configured_proportion <= 0:
        raise FilterError(
            f"configured proportion must be > 0, got {configured_proportion!r}"
        )
    return measured_proportion / configured_proportion


@dataclass(frozen=True)
class AccuracyRow:
    """One column of Table IV/V: a configured level and its measurements."""

    configured: float
    measured_iops_proportion: float
    measured_mbps_proportion: float

    @property
    def iops_accuracy(self) -> float:
        return control_accuracy(self.measured_iops_proportion, self.configured)

    @property
    def mbps_accuracy(self) -> float:
        return control_accuracy(self.measured_mbps_proportion, self.configured)

    @property
    def iops_error(self) -> float:
        """Relative error |A - 1| for the IOPS measurement."""
        return abs(self.iops_accuracy - 1.0)

    @property
    def mbps_error(self) -> float:
        return abs(self.mbps_accuracy - 1.0)


def accuracy_table(
    configured_levels: Sequence[float],
    iops_fn: Callable[[float], float],
    mbps_fn: Callable[[float], float],
    baseline_iops: float,
    baseline_mbps: float,
) -> List[AccuracyRow]:
    """Build the rows of an accuracy table.

    Parameters
    ----------
    configured_levels:
        The configured load proportions (0.1 .. 1.0 in the paper).
    iops_fn / mbps_fn:
        Measured throughput of the manipulated trace at a given level.
    baseline_iops / baseline_mbps:
        Throughput of the unfiltered (100 %) replay, the ``T(f)`` of Eq. 1.
    """
    rows = []
    for level in configured_levels:
        rows.append(
            AccuracyRow(
                configured=level,
                measured_iops_proportion=load_proportion(baseline_iops, iops_fn(level)),
                measured_mbps_proportion=load_proportion(baseline_mbps, mbps_fn(level)),
            )
        )
    return rows

"""TRACER's primary contribution: load-controllable trace replay.

Three mechanisms:

* :mod:`~repro.core.selection` / :mod:`~repro.core.proportional_filter` —
  the uniform bunch filter of Section IV: partition a trace's bunches
  into groups of 10, uniformly select ``k`` per group, replay only those,
  scaling I/O intensity to ``k × 10 %`` while preserving the original
  access characteristics (Fig. 5).
* :mod:`~repro.core.timescale` — inter-arrival-time scaling, the
  supplement shown in Fig. 2 that pushes intensity above 100 % (200 %,
  1000 %) or far below (1 %).
* :mod:`~repro.core.loadcontrol` — the combined load controller used by
  the replay session, plus the accuracy math of Eqs. (1)-(2) in
  :mod:`~repro.core.accuracy`.
"""

from .selection import uniform_positions, selection_mask
from .proportional_filter import ProportionalFilter, filter_trace, random_filter_trace
from .timescale import TimeScaler, scale_trace
from .loadcontrol import LoadController
from .accuracy import load_proportion, control_accuracy, AccuracyRow, accuracy_table

__all__ = [
    "uniform_positions",
    "selection_mask",
    "ProportionalFilter",
    "filter_trace",
    "random_filter_trace",
    "TimeScaler",
    "scale_trace",
    "LoadController",
    "load_proportion",
    "control_accuracy",
    "AccuracyRow",
    "accuracy_table",
]

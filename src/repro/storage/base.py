"""Storage device abstractions.

A :class:`StorageDevice` accepts :class:`~repro.trace.record.IOPackage`
requests on the simulation clock and invokes a completion callback when
each finishes.  :class:`QueuedDevice` supplies the FIFO single-server
queueing discipline every concrete device uses (the paper disables the
array controller's cache, so requests hit the media in order).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .queueing import QueueDiscipline

from ..errors import StorageIOError
from ..power.model import PowerTimeline
from ..sim.engine import Simulator
from ..trace.record import IOPackage

CompletionCallback = Callable[["Completion"], None]


@dataclass(frozen=True)
class VectorService:
    """A vectorized service plan for a run of back-to-back requests.

    Produced by a device's ``service_times(sectors, nbytes, ops)``:
    per-request service seconds and mean Watts computed with arithmetic
    ordered exactly as the scalar ``_service`` loop, starting from the
    device's current cursor state.  Computing the plan is pure; calling
    ``apply_state`` commits the cursor/counter mutations (head position,
    streaming cursors, seek / random-write counters) the scalar loop
    would have made, leaving the device in the identical end state.
    Consumed by the analytical replay kernel (:mod:`repro.sim.kernel`).
    """

    seconds: "object"  # np.ndarray, float64
    watts: "object"  # np.ndarray, float64
    apply_state: Callable[[], None]


@dataclass(frozen=True)
class Completion:
    """Result of one finished request."""

    package: IOPackage
    submit_time: float
    start_time: float
    finish_time: float

    @property
    def response_time(self) -> float:
        """Queueing delay plus service time."""
        return self.finish_time - self.submit_time

    @property
    def service_time(self) -> float:
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time


class StorageDevice(ABC):
    """Base class: anything that serves block requests on the sim clock."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Optional[Simulator] = None

    def attach(self, sim: Simulator) -> None:
        """Bind the device to a simulation before any submit()."""
        self.sim = sim

    def _require_sim(self) -> Simulator:
        if self.sim is None:
            raise StorageIOError(f"{self.name}: attach() a simulator before I/O")
        return self.sim

    @property
    @abstractmethod
    def capacity_sectors(self) -> int:
        """Addressable size in 512-byte sectors."""

    @abstractmethod
    def submit(self, package: IOPackage, on_complete: CompletionCallback) -> None:
        """Accept a request; ``on_complete`` fires when it finishes."""

    def submit_slice(
        self, packed, start: int, stop: int, on_complete: CompletionCallback
    ) -> None:
        """Batch submission hook for the packed replay fast path.

        Accepts rows ``start:stop`` of a
        :class:`~repro.trace.packed.PackedTrace` package table (one
        replay bunch).  The contract is identical to ``stop - start``
        individual :meth:`submit` calls in row order: ``on_complete``
        must eventually fire exactly once per package.  The default
        implementation materialises each row and loops over
        :meth:`submit`; devices with a cheaper bulk path (or test sinks
        that only count) may override it.
        """
        submit = self.submit
        fast_pkg = IOPackage._from_validated
        for sector, nbytes, op in packed.packages[start:stop].tolist():
            submit(fast_pkg(sector, nbytes, op), on_complete)

    @abstractmethod
    def energy_between(self, t0: float, t1: float) -> float:
        """Joules drawn by this device during [t0, t1]."""

    def check_bounds(self, package: IOPackage) -> None:
        """Reject requests outside the addressable range."""
        if package.end_sector > self.capacity_sectors:
            raise StorageIOError(
                f"{self.name}: request {package} ends at sector "
                f"{package.end_sector}, beyond capacity {self.capacity_sectors}"
            )


class QueuedDevice(StorageDevice):
    """FIFO single-server device with a power timeline.

    Subclasses implement :meth:`_service`, returning the service time and
    the mean power drawn while serving; the base class handles queueing,
    completion scheduling, and energy accounting.
    """

    def __init__(
        self,
        name: str,
        idle_watts: float,
        discipline: Optional["QueueDiscipline"] = None,
    ) -> None:
        super().__init__(name)
        from .queueing import FIFOQueue  # local import: queueing imports trace types

        self.timeline = PowerTimeline(idle_watts)
        self._queue = discipline if discipline is not None else FIFOQueue()
        self._busy = False
        self._head_hint = 0
        self.completed_count = 0
        self.queued_high_water = 0
        # Construction-time telemetry gate: when enabled, completions
        # flow through an instrumented ``_finish`` (sampled latency
        # histograms per device); when disabled the class method runs
        # unchanged and no per-request check exists.
        from ..telemetry import get_registry

        reg = get_registry()
        if reg.enabled:
            self._tele_completions = reg.counter(
                "device.completions", device=name
            )
            self._tele_wait = reg.histogram("device.wait_seconds", device=name)
            self._tele_service = reg.histogram(
                "device.service_seconds", device=name
            )
            self._finish = self._finish_instrumented  # type: ignore[method-assign]

    @abstractmethod
    def _service(self, package: IOPackage, start_time: float) -> Tuple[float, float]:
        """Return ``(service_seconds, mean_watts_during_service)``.

        Called exactly once per request, at the instant service begins —
        so the device may use (and update) positional state like head
        location.
        """

    def submit(self, package: IOPackage, on_complete: CompletionCallback) -> None:
        sim = self._require_sim()
        self.check_bounds(package)
        if self._busy:
            self._queue.push((package, sim.now, on_complete))
            self.queued_high_water = max(self.queued_high_water, len(self._queue))
        else:
            self._begin(package, sim.now, on_complete)

    def _begin(
        self, package: IOPackage, submit_time: float, on_complete: CompletionCallback
    ) -> None:
        sim = self._require_sim()
        self._busy = True
        start = sim.now
        service_time, watts = self._service(package, start)
        finish = start + service_time
        self.timeline.add_segment(start, finish, watts)
        sim.schedule(
            finish, self._finish, package, submit_time, start, on_complete
        )

    def _finish(
        self,
        package: IOPackage,
        submit_time: float,
        start: float,
        on_complete: CompletionCallback,
    ) -> Completion:
        sim = self._require_sim()
        self._busy = False
        self.completed_count += 1
        completion = Completion(
            package=package,
            submit_time=submit_time,
            start_time=start,
            finish_time=sim.now,
        )
        # Start the next queued request before delivering the completion,
        # so a callback that submits new I/O sees a consistent queue.
        self._head_hint = package.end_sector
        nxt = self._queue.pop(self._head_hint)
        if nxt is not None:
            nxt_pkg, nxt_submit, nxt_cb = nxt
            self._begin(nxt_pkg, nxt_submit, nxt_cb)
        on_complete(completion)
        return completion

    def _finish_instrumented(
        self,
        package: IOPackage,
        submit_time: float,
        start: float,
        on_complete: CompletionCallback,
    ) -> Completion:
        """Telemetry variant installed as an instance attribute.

        Delegates to the class ``_finish`` (so queue hand-off semantics
        stay in one place) and then accounts the completion, sampling
        the per-device latency histograms every 16th request.
        """
        completion = type(self)._finish(
            self, package, submit_time, start, on_complete
        )
        self._tele_completions.inc()
        if self.completed_count % 16 == 0:
            self._tele_wait.observe(completion.wait_time)
            self._tele_service.observe(completion.service_time)
        return completion

    @property
    def queue_depth(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def energy_between(self, t0: float, t1: float) -> float:
        return self.timeline.energy_between(t0, t1)

    def utilisation(self, t0: float, t1: float) -> float:
        """Fraction of [t0, t1] spent serving requests."""
        if t1 <= t0:
            return 0.0
        return self.timeline.busy_time(t0, t1) / (t1 - t0)

"""The disk array: controller, host link, member disks, enclosure power.

A :class:`DiskArray` accepts logical block requests (IOPackages addressed
in the array's logical sector space), plans them through
:class:`~repro.storage.raid.RaidGeometry`, and drives the member devices
on the simulation clock.

Modelled controller effects:

* **dispatch overhead** — fixed per-request firmware time;
* **host-link serialisation** — the 4 Gb/s FC link moves each request's
  payload at ~400 MB/s; payloads queue on the link, which is what caps
  the array's sequential throughput below the sum of member media rates.
  (Payload time is billed at dispatch for both directions — equivalent
  for steady-state throughput, simpler than duplex modelling.)
* **non-disk power** — constant enclosure draw (controller, fans,
  backplane); Section VI-A measures this as the power of the array with
  zero disks installed.

The controller cache is *disabled*, as in the paper's experiments, so
every request reaches the media.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import StorageConfigError
from ..power.model import EnergyMeter
from ..sim.engine import Simulator
from ..trace.record import IOPackage
from .base import Completion, CompletionCallback, StorageDevice, QueuedDevice
from .hdd import HardDiskDrive
from .raid import IOPlan, RaidGeometry, RaidLevel, SubIO
from .specs import (
    EnclosureSpec,
    HDD_ENCLOSURE,
    HDDSpec,
    MEMORIGHT_SLC_32GB,
    SEAGATE_7200_12,
    SSD_ENCLOSURE,
    SSDSpec,
)
from .ssd import SolidStateDrive


@dataclass
class _InFlight:
    """Book-keeping for one logical request crossing the array."""

    package: IOPackage
    submit_time: float
    on_complete: CompletionCallback
    plan: IOPlan
    start_time: float = 0.0
    pending: int = 0


class DiskArray(StorageDevice):
    """A RAID enclosure of simulated member devices.

    Parameters
    ----------
    disks:
        Member devices.  May be empty — an empty enclosure idles (that is
        exactly the Fig. 7 zero-disk measurement) but rejects I/O.
    level:
        RAID level; validated against the disk count on construction
        when disks are present.
    strip_bytes:
        Strip size (the paper: 128 KB).
    enclosure:
        Non-disk chassis spec.
    """

    def __init__(
        self,
        disks: Sequence[QueuedDevice],
        level: RaidLevel = RaidLevel.RAID5,
        strip_bytes: int = 128 * 1024,
        enclosure: EnclosureSpec = HDD_ENCLOSURE,
        name: str = "array0",
    ) -> None:
        super().__init__(name)
        self.disks = list(disks)
        if len(self.disks) > enclosure.max_disks:
            raise StorageConfigError(
                f"{name}: {len(self.disks)} disks exceed enclosure capacity "
                f"{enclosure.max_disks}"
            )
        self.level = level
        self.enclosure = enclosure
        self.geometry: Optional[RaidGeometry] = None
        if self.disks:
            disk_sectors = min(d.capacity_sectors for d in self.disks)
            self.geometry = RaidGeometry(
                level, len(self.disks), strip_bytes, disk_sectors
            )
        self.meter = EnergyMeter(
            [d.timeline for d in self.disks],
            overhead_watts=enclosure.non_disk_watts,
        )
        self._link_busy_until = 0.0
        self.completed_count = 0
        self.subio_count = 0
        self.failed_disk: Optional[int] = None
        self.rebuilding = False
        self.degraded_requests = 0
        self.reconstruct_reads = 0
        # Construction-time telemetry gate: stripe planning is shadowed
        # by an instrumented variant when enabled; disabled arrays run
        # the class methods unchanged.
        from ..telemetry import get_registry

        reg = get_registry()
        if reg.enabled:
            self._tele_spans = reg.spans
            self._tele_plans = reg.counter("raid.plans", array=name)
            self._tele_rmw = reg.counter("raid.rmw_plans", array=name)
            self._tele_degraded = reg.counter("raid.degraded_plans", array=name)
            self._tele_reconstruct = reg.counter(
                "raid.reconstruct_reads", array=name
            )
            self._tele_subios = reg.counter("raid.subios_planned", array=name)
            self._tele_plan_wall = reg.timer("raid.plan_seconds", array=name)
            self._plan = self._plan_instrumented  # type: ignore[method-assign]

    # -- Device interface --------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        for disk in self.disks:
            disk.attach(sim)

    @property
    def capacity_sectors(self) -> int:
        if self.geometry is None:
            return 0
        return self.geometry.capacity_sectors

    @property
    def idle_watts(self) -> float:
        """Array power with no I/O (enclosure + spinning disks)."""
        now = self.sim.now if self.sim is not None else 0.0
        return self.enclosure.non_disk_watts + sum(
            d.timeline.baseline_watts_at(now) for d in self.disks
        )

    def energy_between(self, t0: float, t1: float) -> float:
        return self.meter.energy_between(t0, t1)

    def mean_power(self, t0: float, t1: float) -> float:
        return self.meter.mean_power(t0, t1)

    # -- I/O path ------------------------------------------------------------

    def _plan(self, package: IOPackage) -> IOPlan:
        """Plan one logical request (degraded-aware); counters updated."""
        assert self.geometry is not None
        if self.failed_disk is not None:
            plan = self.geometry.plan_degraded(package, self.failed_disk)
            self.degraded_requests += 1
            self.reconstruct_reads += plan.reconstruct_reads
            return plan
        return self.geometry.plan(package)

    def _plan_instrumented(self, package: IOPackage) -> IOPlan:
        """Telemetry variant: stripe-planning counters plus a sampled
        wall timer (every 64th plan) for the profiling breakdown."""
        self._tele_plans.inc()
        degraded = self.failed_disk is not None
        if self._tele_plans.value % 64 == 0:
            with self._tele_plan_wall.time():
                plan = DiskArray._plan(self, package)
        else:
            plan = DiskArray._plan(self, package)
        if plan.pre:
            self._tele_rmw.inc()
        if degraded:
            self._tele_degraded.inc()
            self._tele_reconstruct.inc(plan.reconstruct_reads)
            now = self.sim.now if self.sim is not None else 0.0
            self._tele_spans.record(
                "raid.degraded", now, now,
                array=self.name, reconstruct_reads=plan.reconstruct_reads,
            )
        self._tele_subios.inc(plan.total_ops)
        return plan

    def submit(self, package: IOPackage, on_complete: CompletionCallback) -> None:
        sim = self._require_sim()
        if self.geometry is None:
            raise StorageConfigError(f"{self.name}: no disks installed")
        self.check_bounds(package)
        plan = self._plan(package)
        flight = _InFlight(
            package=package,
            submit_time=sim.now,
            on_complete=on_complete,
            plan=plan,
        )
        # Controller dispatch + link serialisation of the payload.
        dispatch = max(sim.now, self._link_busy_until)
        dispatch += self.enclosure.controller_overhead
        payload_time = package.nbytes / self.enclosure.link_rate
        self._link_busy_until = dispatch + payload_time
        flight.start_time = dispatch
        sim.schedule(dispatch, self._dispatch, flight, priority=1)

    def _dispatch(self, flight: _InFlight) -> None:
        if flight.plan.pre:
            self._issue_phase(flight, flight.plan.pre, self._pre_done)
        else:
            self._issue_phase(flight, flight.plan.post, self._post_done)

    def _issue_phase(
        self,
        flight: _InFlight,
        subs: Sequence[SubIO],
        phase_done: Callable[[_InFlight], None],
    ) -> None:
        flight.pending = len(subs)
        self.subio_count += len(subs)

        def _one_done(_completion: Completion) -> None:
            flight.pending -= 1
            if flight.pending == 0:
                phase_done(flight)

        for sub in subs:
            self.disks[sub.disk].submit(sub.to_package(), _one_done)

    def _pre_done(self, flight: _InFlight) -> None:
        # Old data and parity are in; XOR is controller-side and fast
        # relative to media times — issue the write phase immediately.
        self._issue_phase(flight, flight.plan.post, self._post_done)

    def _post_done(self, flight: _InFlight) -> None:
        sim = self._require_sim()
        self.completed_count += 1
        flight.on_complete(
            Completion(
                package=flight.package,
                submit_time=flight.submit_time,
                start_time=flight.start_time,
                finish_time=sim.now,
            )
        )

    # -- Failure injection and rebuild (RAID-5) -----------------------------

    def fail_disk(self, disk_index: int) -> None:
        """Mark one member failed: subsequent I/O runs degraded.

        Only single-failure RAID-5 degradation is modelled; a second
        failure is data loss and raises.
        """
        if self.geometry is None or self.geometry.level is not RaidLevel.RAID5:
            raise StorageConfigError(f"{self.name}: failure model is raid5-only")
        if not 0 <= disk_index < len(self.disks):
            raise StorageConfigError(f"{self.name}: no disk {disk_index}")
        if self.failed_disk is not None:
            raise StorageConfigError(
                f"{self.name}: disk {self.failed_disk} already failed; a "
                "second failure loses data on raid5"
            )
        self.failed_disk = disk_index

    def rebuild(
        self,
        on_complete: Optional[Callable[[float], None]] = None,
        rows_per_step: int = 8,
        inter_step_delay: float = 0.0,
    ) -> None:
        """Reconstruct the failed member onto a fresh replacement.

        Walks all stripe rows: each step reads ``rows_per_step`` rows
        from every survivor and writes the reconstructed strips to the
        replacement (the original disk object, reused as the blank
        replacement).  Rebuild I/O shares the member queues with — and
        therefore slows — foreground traffic, exactly like a real
        controller.  ``on_complete(sim_now)`` fires when the array is
        clean again.
        """
        sim = self._require_sim()
        if self.failed_disk is None:
            raise StorageConfigError(f"{self.name}: no failed disk to rebuild")
        if self.rebuilding:
            raise StorageConfigError(f"{self.name}: rebuild already running")
        if rows_per_step < 1:
            raise StorageConfigError("rows_per_step must be >= 1")
        assert self.geometry is not None
        self.rebuilding = True
        failed = self.failed_disk
        total_rows = self.geometry.rebuild_rows()
        state = {"row": 0}

        def _step() -> None:
            if state["row"] >= total_rows:
                self.failed_disk = None
                self.rebuilding = False
                if on_complete is not None:
                    on_complete(sim.now)
                return
            batch = range(
                state["row"], min(state["row"] + rows_per_step, total_rows)
            )
            state["row"] += rows_per_step
            pending = {"n": 0}

            def _after_batch(_completion: Completion) -> None:
                pending["n"] -= 1
                if pending["n"] == 0:
                    sim.schedule_after(inter_step_delay, _step, priority=15)

            plans = [
                self.geometry.plan_rebuild_row(row, failed) for row in batch
            ]
            # Read phase of every row in the batch, then write phase.
            reads = [sub for plan in plans for sub in plan.pre]
            writes = [sub for plan in plans for sub in plan.post]
            pending["n"] = len(reads)

            def _after_read(_completion: Completion) -> None:
                pending["n"] -= 1
                if pending["n"] == 0:
                    pending["n"] = len(writes)
                    for sub in writes:
                        self.subio_count += 1
                        self.disks[sub.disk].submit(
                            sub.to_package(), _after_batch
                        )

            for sub in reads:
                self.subio_count += 1
                self.disks[sub.disk].submit(sub.to_package(), _after_read)

        sim.schedule_after(0.0, _step, priority=15)


def build_hdd_raid5(
    n_disks: int = 6,
    spec: HDDSpec = SEAGATE_7200_12,
    strip_bytes: int = 128 * 1024,
    enclosure: EnclosureSpec = HDD_ENCLOSURE,
    name: str = "hdd-raid5",
    level: RaidLevel = RaidLevel.RAID5,
) -> DiskArray:
    """The paper's HDD array: 6 × Seagate 7200.12 in RAID-5, 128 KB strips."""
    disks = [HardDiskDrive(f"{name}-d{i}", spec) for i in range(n_disks)]
    return DiskArray(disks, level, strip_bytes, enclosure, name=name)


def build_ssd_raid5(
    n_disks: int = 4,
    spec: SSDSpec = MEMORIGHT_SLC_32GB,
    strip_bytes: int = 128 * 1024,
    enclosure: EnclosureSpec = SSD_ENCLOSURE,
    name: str = "ssd-raid5",
    level: RaidLevel = RaidLevel.RAID5,
) -> DiskArray:
    """The paper's SSD array: 4 × Memoright SLC 32 GB in RAID-5 (§VI-G)."""
    disks = [SolidStateDrive(f"{name}-d{i}", spec) for i in range(n_disks)]
    return DiskArray(disks, level, strip_bytes, enclosure, name=name)

"""Flash solid-state-drive model.

No moving parts: service time is a fixed access latency plus bytes over
the channel rate, with one twist — *random small writes* pay an FTL
read-modify-write overhead when they start mid-page or end mid-page
relative to the flash page size.  The penalty is small next to an HDD
seek (hundreds of microseconds vs. ~13 ms) but is what makes high random
ratios reduce SSD energy efficiency, the trend §VI-G reports.

Power is two-level per the spec: read power during reads, write power
during writes, idle otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..trace.record import IOPackage, WRITE
from ..units import SECTOR_BYTES
from .base import QueuedDevice, VectorService
from .specs import SSDSpec, MEMORIGHT_SLC_32GB


class SolidStateDrive(QueuedDevice):
    """One simulated SSD."""

    def __init__(
        self,
        name: str = "ssd0",
        spec: SSDSpec = MEMORIGHT_SLC_32GB,
        discipline=None,
    ) -> None:
        super().__init__(name, idle_watts=spec.idle_watts, discipline=discipline)
        self.spec = spec
        # Per-stream cursors: the FTL appends writes into an open block
        # independent of where reads land, so read/write sequentiality
        # is tracked per op type (unlike a disk head).
        self._last_read_end: Optional[int] = None
        self._last_write_end: Optional[int] = None
        self.random_write_count = 0

    @property
    def capacity_sectors(self) -> int:
        return self.spec.capacity_sectors

    def _service(self, package: IOPackage, start_time: float) -> Tuple[float, float]:
        spec = self.spec
        if package.is_read:
            latency = spec.read_latency
            rate = spec.read_rate
            watts = spec.read_watts
            overhead = 0.0
            self._last_read_end = package.end_sector
        else:
            sequential = (
                self._last_write_end is not None
                and package.sector == self._last_write_end
            )
            latency = spec.write_latency
            rate = spec.write_rate
            watts = spec.write_watts
            overhead = 0.0
            # Non-sequential writes stall the (2008-era, block-mapped)
            # FTL: the drive must merge into an erase block.  Sequential
            # streams append into the open block and stay fast.
            if not sequential:
                overhead = spec.random_write_overhead
                self.random_write_count += 1
            self._last_write_end = package.end_sector

        transfer = package.nbytes / rate
        total = spec.command_overhead + latency + overhead + transfer

        # Non-transfer phases draw close to active power on an SSD (the
        # controller is the consumer); bill the whole service at op power.
        return total, watts

    def service_times(self, sectors, nbytes, ops) -> VectorService:
        """Vectorized mirror of :meth:`_service` for the analytical kernel.

        Same contract as :meth:`HardDiskDrive.service_times
        <repro.storage.hdd.HardDiskDrive.service_times>`: pure compute
        with scalar-ordered arithmetic (bit-identical results), and an
        ``apply_state`` callback committing the FTL streaming cursors
        and ``random_write_count``.
        """
        spec = self.spec
        sectors = np.asarray(sectors, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        n = sectors.shape[0]
        if n == 0:
            empty = np.empty(0, dtype=np.float64)
            return VectorService(empty, empty, lambda: None)
        end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
        is_write = ops == WRITE

        latency = np.where(is_write, spec.write_latency, spec.read_latency)
        rate = np.where(is_write, spec.write_rate, spec.read_rate)
        watts = np.where(is_write, spec.write_watts, spec.read_watts)
        overhead = np.zeros(n, dtype=np.float64)

        # Write sequentiality is judged against the *previous write*
        # (reads interleave freely through the FTL), so shift within the
        # write subsequence only.
        w_idx = np.flatnonzero(is_write)
        rand_writes = 0
        if w_idx.size:
            w_prev = np.empty(w_idx.size, dtype=np.int64)
            w_prev[1:] = end_sectors[w_idx[:-1]]
            w_prev[0] = (
                self._last_write_end if self._last_write_end is not None else -1
            )
            w_seq = sectors[w_idx] == w_prev
            if self._last_write_end is None:
                w_seq[0] = False
            overhead[w_idx[~w_seq]] = spec.random_write_overhead
            rand_writes = int(np.count_nonzero(~w_seq))

        transfer = nbytes / rate
        total = spec.command_overhead + latency + overhead + transfer
        mean_watts = watts + np.zeros(n, dtype=np.float64)

        r_idx = np.flatnonzero(~is_write)
        last_read_end = int(end_sectors[r_idx[-1]]) if r_idx.size else None
        last_write_end = int(end_sectors[w_idx[-1]]) if w_idx.size else None

        def apply_state() -> None:
            if last_read_end is not None:
                self._last_read_end = last_read_end
            if last_write_end is not None:
                self._last_write_end = last_write_end
            self.random_write_count += rand_writes

        return VectorService(total, mean_watts, apply_state)

    def service_times_grid(self, sectors, nbytes, ops):
        """Pure ``(P, n)`` mirror of :meth:`service_times` for grid cells.

        Row ``i`` of the returned ``(seconds, watts)`` matrices is
        bit-identical to ``service_times(sectors[i], nbytes[i],
        ops[i])``.  The per-row previous-write chain (write
        sequentiality is judged against the last *write*, skipping
        interleaved reads) is vectorized with a running-maximum over
        write column indices.  Pure: commits no FTL cursor or counter
        state.
        """
        spec = self.spec
        sectors = np.asarray(sectors, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        p, n = sectors.shape
        if n == 0 or p == 0:
            empty = np.empty((p, n), dtype=np.float64)
            return empty, empty.copy()
        end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
        is_write = ops == WRITE

        latency = np.where(is_write, spec.write_latency, spec.read_latency)
        rate = np.where(is_write, spec.write_rate, spec.read_rate)
        watts = np.where(is_write, spec.write_watts, spec.read_watts)

        # Index of the last write strictly before each column (per row):
        # a running maximum over write column indices, shifted right.
        wpos = np.where(is_write, np.arange(n, dtype=np.int64), -1)
        last_w = np.maximum.accumulate(wpos, axis=1)
        prev_w = np.empty((p, n), dtype=np.int64)
        prev_w[:, 1:] = last_w[:, :-1]
        prev_w[:, 0] = -1
        gathered = np.take_along_axis(
            end_sectors, np.maximum(prev_w, 0), axis=1
        )
        dev_prev = (
            self._last_write_end if self._last_write_end is not None else -1
        )
        w_prev_end = np.where(prev_w >= 0, gathered, dev_prev)
        w_seq = is_write & (sectors == w_prev_end)
        if self._last_write_end is None:
            # No FTL context: a row's first write is never sequential
            # (matches the scalar path's explicit ``w_seq[0] = False``).
            w_seq &= prev_w >= 0
        overhead = np.where(
            is_write & ~w_seq, spec.random_write_overhead, 0.0
        )

        transfer = nbytes / rate
        total = spec.command_overhead + latency + overhead + transfer
        mean_watts = watts + np.zeros((p, n), dtype=np.float64)
        return total, mean_watts

"""Flash solid-state-drive model.

No moving parts: service time is a fixed access latency plus bytes over
the channel rate, with one twist — *random small writes* pay an FTL
read-modify-write overhead when they start mid-page or end mid-page
relative to the flash page size.  The penalty is small next to an HDD
seek (hundreds of microseconds vs. ~13 ms) but is what makes high random
ratios reduce SSD energy efficiency, the trend §VI-G reports.

Power is two-level per the spec: read power during reads, write power
during writes, idle otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..trace.record import IOPackage
from .base import QueuedDevice
from .specs import SSDSpec, MEMORIGHT_SLC_32GB


class SolidStateDrive(QueuedDevice):
    """One simulated SSD."""

    def __init__(
        self,
        name: str = "ssd0",
        spec: SSDSpec = MEMORIGHT_SLC_32GB,
        discipline=None,
    ) -> None:
        super().__init__(name, idle_watts=spec.idle_watts, discipline=discipline)
        self.spec = spec
        # Per-stream cursors: the FTL appends writes into an open block
        # independent of where reads land, so read/write sequentiality
        # is tracked per op type (unlike a disk head).
        self._last_read_end: Optional[int] = None
        self._last_write_end: Optional[int] = None
        self.random_write_count = 0

    @property
    def capacity_sectors(self) -> int:
        return self.spec.capacity_sectors

    def _service(self, package: IOPackage, start_time: float) -> Tuple[float, float]:
        spec = self.spec
        if package.is_read:
            latency = spec.read_latency
            rate = spec.read_rate
            watts = spec.read_watts
            overhead = 0.0
            self._last_read_end = package.end_sector
        else:
            sequential = (
                self._last_write_end is not None
                and package.sector == self._last_write_end
            )
            latency = spec.write_latency
            rate = spec.write_rate
            watts = spec.write_watts
            overhead = 0.0
            # Non-sequential writes stall the (2008-era, block-mapped)
            # FTL: the drive must merge into an erase block.  Sequential
            # streams append into the open block and stay fast.
            if not sequential:
                overhead = spec.random_write_overhead
                self.random_write_count += 1
            self._last_write_end = package.end_sector

        transfer = package.nbytes / rate
        total = spec.command_overhead + latency + overhead + transfer

        # Non-transfer phases draw close to active power on an SSD (the
        # controller is the consumer); bill the whole service at op power.
        return total, watts

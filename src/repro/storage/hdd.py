"""Mechanical hard-disk model.

Service time decomposes into the classic components (Ruemmler & Wilkes):

* **command overhead** — firmware processing, always paid;
* **seek** — ``settle + coeff * sqrt(distance_fraction)`` when the head
  must move; zero when the request continues sequentially from the last
  one (streaming);
* **rotational latency** — expected half-revolution after any seek;
  zero while streaming (the head is already following the track);
* **turnaround** — switching between reads and writes interrupts
  streaming: the write path must flush / the head re-settles.  This is
  the mechanism behind the paper's U-shaped throughput vs. read-ratio
  curve at low random ratios (Fig. 11);
* **transfer** — request bytes over the zoned media rate.

Power: each phase draws the phase power from the spec; the request's
mean power is the time-weighted blend, recorded as one busy segment.

The drive also implements standby/spin-up transitions (used by the
energy-saving policy extensions, idle in the baseline experiments).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import StorageConfigError, StorageIOError
from ..power.states import PowerState
from ..rng import make_rng
from ..trace.record import IOPackage, WRITE
from ..units import SECTOR_BYTES
from .base import QueuedDevice, VectorService
from .specs import HDDSpec, SEAGATE_7200_12


class HardDiskDrive(QueuedDevice):
    """One simulated mechanical disk.

    Parameters
    ----------
    spec:
        Mechanical/power parameters (default: the paper's Seagate
        7200.12 500 GB).
    rotational_jitter:
        When ``True``, rotational latency is sampled uniformly in
        [0, rotation_time) from a seeded stream instead of using the
        expected value.  Default off: deterministic expected-value
        latencies keep replay results exactly reproducible.
    seed:
        Seed for the jitter stream.
    """

    def __init__(
        self,
        name: str = "hdd0",
        spec: HDDSpec = SEAGATE_7200_12,
        rotational_jitter: bool = False,
        seed: Optional[int] = None,
        discipline=None,
    ) -> None:
        super().__init__(name, idle_watts=spec.idle_watts, discipline=discipline)
        self.spec = spec
        self.rotational_jitter = rotational_jitter
        self._rng = make_rng(seed)
        self._head_sector = 0
        self._last_end_sector: Optional[int] = None
        self._last_op: Optional[int] = None
        self._transition_until = 0.0
        self.state = PowerState.IDLE
        self.seek_count = 0

    @property
    def capacity_sectors(self) -> int:
        return self.spec.capacity_sectors

    # -- Service model ---------------------------------------------------

    def _seek_time(self, target_sector: int) -> float:
        distance = abs(target_sector - self._head_sector)
        if distance == 0:
            return 0.0
        frac = distance / max(self.capacity_sectors, 1)
        return self.spec.settle_time + self.spec.seek_coefficient * math.sqrt(frac)

    def _rotational_latency(self) -> float:
        if self.rotational_jitter:
            return float(self._rng.uniform(0.0, self.spec.rotation_time))
        return self.spec.mean_rotational_latency

    def _service(self, package: IOPackage, start_time: float) -> Tuple[float, float]:
        if not self.state.ready:
            raise StorageIOError(
                f"{self.name}: request while {self.state.value}; spin up first"
            )
        spec = self.spec
        # Streaming is an *address* property: the drive's track buffer /
        # write cache keeps the head on track across read/write switches
        # (the paper disabled the controller cache, not the drives').
        # Switching op type still pays the electronics turnaround.
        sequential = (
            self._last_end_sector is not None
            and package.sector == self._last_end_sector
        )
        turnaround = 0.0
        if self._last_op is not None and package.op != self._last_op:
            turnaround = (
                spec.read_to_write_turnaround
                if package.is_write
                else spec.write_to_read_turnaround
            )

        if sequential:
            seek = 0.0
            rotation = 0.0
        else:
            seek = self._seek_time(package.sector)
            rotation = self._rotational_latency()
            if package.is_write and spec.write_cache:
                # Write-back cached writes destage in sorted order; their
                # effective positioning cost is a fraction of a cold seek.
                seek *= spec.destage_seek_factor
                rotation *= spec.destage_seek_factor
            if seek > 0:
                self.seek_count += 1

        transfer = package.nbytes / spec.transfer_rate_at(package.sector)
        total = spec.command_overhead + turnaround + seek + rotation + transfer

        # Time-weighted mean power across the phases.  Command overhead and
        # turnaround are electronics-bound: billed at rotate-wait power.
        xfer_watts = spec.write_watts if package.is_write else spec.read_watts
        energy = (
            (spec.command_overhead + turnaround + rotation) * spec.rotate_wait_watts
            + seek * spec.seek_watts
            + transfer * xfer_watts
        )
        mean_watts = energy / total if total > 0 else spec.idle_watts

        self._head_sector = package.end_sector
        self._last_end_sector = package.end_sector
        self._last_op = package.op
        return total, mean_watts

    def service_times(self, sectors, nbytes, ops) -> VectorService:
        """Vectorized mirror of :meth:`_service` for the analytical kernel.

        Computes service seconds and mean Watts for serving the given
        rows back-to-back in order, starting from the drive's current
        head/streaming state.  Every expression is evaluated in the same
        order as the scalar path, so results are bit-identical.  Pure:
        call ``apply_state()`` on the returned plan to commit the head
        cursor, streaming context, and ``seek_count``.
        """
        if not self.state.ready:
            raise StorageIOError(
                f"{self.name}: request while {self.state.value}; spin up first"
            )
        if self.rotational_jitter:
            raise StorageIOError(
                f"{self.name}: vectorized service requires deterministic "
                f"rotational latency (rotational_jitter draws per request)"
            )
        spec = self.spec
        sectors = np.asarray(sectors, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        n = sectors.shape[0]
        if n == 0:
            empty = np.empty(0, dtype=np.float64)
            return VectorService(empty, empty, lambda: None)
        end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
        is_write = ops == WRITE

        # Streaming: previous request's end sector (row 0 uses the
        # drive's cursor; None means no streaming context yet).
        prev_end = np.empty(n, dtype=np.int64)
        prev_end[1:] = end_sectors[:-1]
        prev_end[0] = (
            self._last_end_sector if self._last_end_sector is not None else -1
        )
        sequential = sectors == prev_end
        if self._last_end_sector is None:
            sequential[0] = False

        # Turnaround on op-type switches (paid even while streaming).
        prev_op = np.empty(n, dtype=np.int64)
        prev_op[1:] = ops[:-1]
        prev_op[0] = self._last_op if self._last_op is not None else -1
        switched = ops != prev_op
        if self._last_op is None:
            switched[0] = False
        turnaround = np.where(
            switched,
            np.where(
                is_write,
                spec.read_to_write_turnaround,
                spec.write_to_read_turnaround,
            ),
            0.0,
        )

        # Seek from the head position, which the scalar path always
        # leaves at the previous request's end sector.
        head = np.empty(n, dtype=np.int64)
        head[1:] = end_sectors[:-1]
        head[0] = self._head_sector
        distance = np.abs(sectors - head)
        cap = max(self.capacity_sectors, 1)
        seek = np.where(
            distance == 0,
            0.0,
            spec.settle_time + spec.seek_coefficient * np.sqrt(distance / cap),
        )
        rotation = np.full(n, spec.mean_rotational_latency)
        if spec.write_cache:
            seek = np.where(is_write, seek * spec.destage_seek_factor, seek)
            rotation = np.where(
                is_write, rotation * spec.destage_seek_factor, rotation
            )
        seek = np.where(sequential, 0.0, seek)
        rotation = np.where(sequential, 0.0, rotation)
        seeks = int(np.count_nonzero(seek > 0))

        frac = np.minimum(
            np.maximum(sectors / max(spec.capacity_sectors, 1), 0.0), 1.0
        )
        rate = spec.outer_rate - (spec.outer_rate - spec.inner_rate) * frac
        transfer = nbytes / rate
        total = spec.command_overhead + turnaround + seek + rotation + transfer

        xfer_watts = np.where(is_write, spec.write_watts, spec.read_watts)
        energy = (
            (spec.command_overhead + turnaround + rotation)
            * spec.rotate_wait_watts
            + seek * spec.seek_watts
            + transfer * xfer_watts
        )
        mean_watts = np.full(n, spec.idle_watts)
        np.divide(energy, total, out=mean_watts, where=total > 0)

        last_end = int(end_sectors[-1])
        last_op = int(ops[-1])

        def apply_state() -> None:
            self._head_sector = last_end
            self._last_end_sector = last_end
            self._last_op = last_op
            self.seek_count += seeks

        return VectorService(total, mean_watts, apply_state)

    def service_times_grid(self, sectors, nbytes, ops):
        """Pure ``(P, n)`` mirror of :meth:`service_times` for grid cells.

        Each row is an independent serving sequence from the drive's
        current cursor state; row ``i`` of the returned
        ``(seconds, watts)`` matrices is bit-identical to
        ``service_times(sectors[i], nbytes[i], ops[i])`` — every
        expression is the same elementwise ufunc chain, shifted along
        the last axis instead of a flat one.  Used by the RMW grid
        solver, where each cell serves the same requests in its own
        order so no single 1-D service vector can be shared.  Pure:
        commits no cursor, streaming, or seek-count state.
        """
        if not self.state.ready:
            raise StorageIOError(
                f"{self.name}: request while {self.state.value}; spin up first"
            )
        if self.rotational_jitter:
            raise StorageIOError(
                f"{self.name}: vectorized service requires deterministic "
                f"rotational latency (rotational_jitter draws per request)"
            )
        spec = self.spec
        sectors = np.asarray(sectors, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        p, n = sectors.shape
        if n == 0 or p == 0:
            empty = np.empty((p, n), dtype=np.float64)
            return empty, empty.copy()
        end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
        is_write = ops == WRITE

        prev_end = np.empty((p, n), dtype=np.int64)
        prev_end[:, 1:] = end_sectors[:, :-1]
        prev_end[:, 0] = (
            self._last_end_sector if self._last_end_sector is not None else -1
        )
        sequential = sectors == prev_end
        if self._last_end_sector is None:
            sequential[:, 0] = False

        prev_op = np.empty((p, n), dtype=np.int64)
        prev_op[:, 1:] = ops[:, :-1]
        prev_op[:, 0] = self._last_op if self._last_op is not None else -1
        switched = ops != prev_op
        if self._last_op is None:
            switched[:, 0] = False
        turnaround = np.where(
            switched,
            np.where(
                is_write,
                spec.read_to_write_turnaround,
                spec.write_to_read_turnaround,
            ),
            0.0,
        )

        head = np.empty((p, n), dtype=np.int64)
        head[:, 1:] = end_sectors[:, :-1]
        head[:, 0] = self._head_sector
        distance = np.abs(sectors - head)
        cap = max(self.capacity_sectors, 1)
        seek = np.where(
            distance == 0,
            0.0,
            spec.settle_time + spec.seek_coefficient * np.sqrt(distance / cap),
        )
        rotation = np.full((p, n), spec.mean_rotational_latency)
        if spec.write_cache:
            seek = np.where(is_write, seek * spec.destage_seek_factor, seek)
            rotation = np.where(
                is_write, rotation * spec.destage_seek_factor, rotation
            )
        seek = np.where(sequential, 0.0, seek)
        rotation = np.where(sequential, 0.0, rotation)

        frac = np.minimum(
            np.maximum(sectors / max(spec.capacity_sectors, 1), 0.0), 1.0
        )
        rate = spec.outer_rate - (spec.outer_rate - spec.inner_rate) * frac
        transfer = nbytes / rate
        total = spec.command_overhead + turnaround + seek + rotation + transfer

        xfer_watts = np.where(is_write, spec.write_watts, spec.read_watts)
        energy = (
            (spec.command_overhead + turnaround + rotation)
            * spec.rotate_wait_watts
            + seek * spec.seek_watts
            + transfer * xfer_watts
        )
        mean_watts = np.full((p, n), spec.idle_watts)
        np.divide(energy, total, out=mean_watts, where=total > 0)
        return total, mean_watts

    # -- Spin-down support (energy-saving extensions) ---------------------

    def spin_down(self) -> float:
        """Enter standby.  Returns the transition time.

        Only legal when the drive is idle with an empty queue; policies
        are responsible for checking.
        """
        sim = self._require_sim()
        if self._busy or self._queue:
            raise StorageIOError(f"{self.name}: cannot spin down while busy")
        if self.state == PowerState.STANDBY:
            return 0.0
        t = sim.now
        self.timeline.add_segment(t, t + self.spec.spindown_time, self.spec.idle_watts)
        self.timeline.set_baseline(t + self.spec.spindown_time, self.spec.standby_watts)
        self.state = PowerState.STANDBY
        self._transition_until = t + self.spec.spindown_time
        self._last_end_sector = None  # streaming context is lost
        self._last_op = None
        return self.spec.spindown_time

    def spin_up(self) -> float:
        """Leave standby.  Returns the transition time (~seconds).

        The caller must delay I/O submission by the returned time; the
        energy cost of the spin-up burst is recorded here.
        """
        sim = self._require_sim()
        if self.state != PowerState.STANDBY:
            return 0.0
        # A spin-up requested before the spin-down transition finished
        # begins when the platters have actually stopped.
        t = max(sim.now, getattr(self, "_transition_until", sim.now))
        self.timeline.set_baseline(t, self.spec.idle_watts)
        self.timeline.add_segment(t, t + self.spec.spinup_time, self.spec.spinup_watts)
        self.state = PowerState.SPINNING_UP
        ready_at = t + self.spec.spinup_time
        self._transition_until = ready_at

        def _ready() -> None:
            self.state = PowerState.IDLE

        sim.schedule(ready_at, _ready, priority=-1)
        return ready_at - sim.now

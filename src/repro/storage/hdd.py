"""Mechanical hard-disk model.

Service time decomposes into the classic components (Ruemmler & Wilkes):

* **command overhead** — firmware processing, always paid;
* **seek** — ``settle + coeff * sqrt(distance_fraction)`` when the head
  must move; zero when the request continues sequentially from the last
  one (streaming);
* **rotational latency** — expected half-revolution after any seek;
  zero while streaming (the head is already following the track);
* **turnaround** — switching between reads and writes interrupts
  streaming: the write path must flush / the head re-settles.  This is
  the mechanism behind the paper's U-shaped throughput vs. read-ratio
  curve at low random ratios (Fig. 11);
* **transfer** — request bytes over the zoned media rate.

Power: each phase draws the phase power from the spec; the request's
mean power is the time-weighted blend, recorded as one busy segment.

The drive also implements standby/spin-up transitions (used by the
energy-saving policy extensions, idle in the baseline experiments).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..errors import StorageConfigError, StorageIOError
from ..power.states import PowerState
from ..rng import make_rng
from ..trace.record import IOPackage
from .base import QueuedDevice
from .specs import HDDSpec, SEAGATE_7200_12


class HardDiskDrive(QueuedDevice):
    """One simulated mechanical disk.

    Parameters
    ----------
    spec:
        Mechanical/power parameters (default: the paper's Seagate
        7200.12 500 GB).
    rotational_jitter:
        When ``True``, rotational latency is sampled uniformly in
        [0, rotation_time) from a seeded stream instead of using the
        expected value.  Default off: deterministic expected-value
        latencies keep replay results exactly reproducible.
    seed:
        Seed for the jitter stream.
    """

    def __init__(
        self,
        name: str = "hdd0",
        spec: HDDSpec = SEAGATE_7200_12,
        rotational_jitter: bool = False,
        seed: Optional[int] = None,
        discipline=None,
    ) -> None:
        super().__init__(name, idle_watts=spec.idle_watts, discipline=discipline)
        self.spec = spec
        self.rotational_jitter = rotational_jitter
        self._rng = make_rng(seed)
        self._head_sector = 0
        self._last_end_sector: Optional[int] = None
        self._last_op: Optional[int] = None
        self._transition_until = 0.0
        self.state = PowerState.IDLE
        self.seek_count = 0

    @property
    def capacity_sectors(self) -> int:
        return self.spec.capacity_sectors

    # -- Service model ---------------------------------------------------

    def _seek_time(self, target_sector: int) -> float:
        distance = abs(target_sector - self._head_sector)
        if distance == 0:
            return 0.0
        frac = distance / max(self.capacity_sectors, 1)
        return self.spec.settle_time + self.spec.seek_coefficient * math.sqrt(frac)

    def _rotational_latency(self) -> float:
        if self.rotational_jitter:
            return float(self._rng.uniform(0.0, self.spec.rotation_time))
        return self.spec.mean_rotational_latency

    def _service(self, package: IOPackage, start_time: float) -> Tuple[float, float]:
        if not self.state.ready:
            raise StorageIOError(
                f"{self.name}: request while {self.state.value}; spin up first"
            )
        spec = self.spec
        # Streaming is an *address* property: the drive's track buffer /
        # write cache keeps the head on track across read/write switches
        # (the paper disabled the controller cache, not the drives').
        # Switching op type still pays the electronics turnaround.
        sequential = (
            self._last_end_sector is not None
            and package.sector == self._last_end_sector
        )
        turnaround = 0.0
        if self._last_op is not None and package.op != self._last_op:
            turnaround = (
                spec.read_to_write_turnaround
                if package.is_write
                else spec.write_to_read_turnaround
            )

        if sequential:
            seek = 0.0
            rotation = 0.0
        else:
            seek = self._seek_time(package.sector)
            rotation = self._rotational_latency()
            if package.is_write and spec.write_cache:
                # Write-back cached writes destage in sorted order; their
                # effective positioning cost is a fraction of a cold seek.
                seek *= spec.destage_seek_factor
                rotation *= spec.destage_seek_factor
            if seek > 0:
                self.seek_count += 1

        transfer = package.nbytes / spec.transfer_rate_at(package.sector)
        total = spec.command_overhead + turnaround + seek + rotation + transfer

        # Time-weighted mean power across the phases.  Command overhead and
        # turnaround are electronics-bound: billed at rotate-wait power.
        xfer_watts = spec.write_watts if package.is_write else spec.read_watts
        energy = (
            (spec.command_overhead + turnaround + rotation) * spec.rotate_wait_watts
            + seek * spec.seek_watts
            + transfer * xfer_watts
        )
        mean_watts = energy / total if total > 0 else spec.idle_watts

        self._head_sector = package.end_sector
        self._last_end_sector = package.end_sector
        self._last_op = package.op
        return total, mean_watts

    # -- Spin-down support (energy-saving extensions) ---------------------

    def spin_down(self) -> float:
        """Enter standby.  Returns the transition time.

        Only legal when the drive is idle with an empty queue; policies
        are responsible for checking.
        """
        sim = self._require_sim()
        if self._busy or self._queue:
            raise StorageIOError(f"{self.name}: cannot spin down while busy")
        if self.state == PowerState.STANDBY:
            return 0.0
        t = sim.now
        self.timeline.add_segment(t, t + self.spec.spindown_time, self.spec.idle_watts)
        self.timeline.set_baseline(t + self.spec.spindown_time, self.spec.standby_watts)
        self.state = PowerState.STANDBY
        self._transition_until = t + self.spec.spindown_time
        self._last_end_sector = None  # streaming context is lost
        self._last_op = None
        return self.spec.spindown_time

    def spin_up(self) -> float:
        """Leave standby.  Returns the transition time (~seconds).

        The caller must delay I/O submission by the returned time; the
        energy cost of the spin-up burst is recorded here.
        """
        sim = self._require_sim()
        if self.state != PowerState.STANDBY:
            return 0.0
        # A spin-up requested before the spin-down transition finished
        # begins when the platters have actually stopped.
        t = max(sim.now, getattr(self, "_transition_until", sim.now))
        self.timeline.set_baseline(t, self.spec.idle_watts)
        self.timeline.add_segment(t, t + self.spec.spinup_time, self.spec.spinup_watts)
        self.state = PowerState.SPINNING_UP
        ready_at = t + self.spec.spinup_time
        self._transition_until = ready_at

        def _ready() -> None:
            self.state = PowerState.IDLE

        sim.schedule(ready_at, _ready, priority=-1)
        return ready_at - sim.now

"""RAID geometry: logical-extent → per-disk sub-I/O mapping.

Pure address arithmetic, independent of the simulator, so it is testable
exhaustively (property tests verify coverage/non-overlap invariants).

Supported levels:

* **RAID-0** — striping, no redundancy;
* **RAID-1** — mirroring (reads round-robin, writes fan out);
* **RAID-5** — rotating parity (left-asymmetric layout).  Writes that
  cover a full stripe compute parity in-memory and write everything in
  one pass; partial-stripe writes pay the classic read-modify-write:
  read old data + old parity, then write new data + new parity.  The
  RMW penalty is why small random writes on the paper's RAID-5 array are
  so expensive.
* **JBOD** — single-disk passthrough (used by calibration benches).

The paper's array: RAID-5, strip size 128 KB (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

import numpy as np

from ..errors import StorageConfigError
from ..trace.record import READ, WRITE, IOPackage
from ..units import SECTOR_BYTES


class RaidLevel(Enum):
    JBOD = "jbod"
    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID10 = "raid10"


@dataclass(frozen=True)
class SubIO:
    """One per-disk operation derived from a logical request."""

    disk: int
    sector: int
    nbytes: int
    op: int

    def to_package(self) -> IOPackage:
        return IOPackage(self.sector, self.nbytes, self.op)


@dataclass(frozen=True)
class IOPlan:
    """Execution plan: ``pre`` (reads) must finish before ``post`` issues.

    Plain reads and full-stripe writes have an empty ``pre`` phase.
    ``reconstruct_reads`` counts the read sub-I/Os a degraded plan issues
    purely to reconstruct data or parity for the failed member (survivor
    reads standing in for a failed-chunk read, and the row reads of a
    reconstruct-write); it is 0 for every clean-mode plan.
    """

    pre: Tuple[SubIO, ...]
    post: Tuple[SubIO, ...]
    reconstruct_reads: int = 0

    @property
    def total_ops(self) -> int:
        return len(self.pre) + len(self.post)


@dataclass(frozen=True)
class _Chunk:
    """A strip-aligned fragment of the logical extent."""

    strip_index: int
    offset_bytes: int   # within the strip
    nbytes: int


class RaidGeometry:
    """Address mapping for one array configuration.

    Parameters
    ----------
    n_disks:
        Member disk count (RAID-5 needs ≥3, RAID-1 exactly 2, JBOD 1).
    strip_bytes:
        Strip (chunk) size per disk; the paper uses 128 KB.
    disk_sectors:
        Capacity of each member disk.
    """

    def __init__(
        self,
        level: RaidLevel,
        n_disks: int,
        strip_bytes: int,
        disk_sectors: int,
    ) -> None:
        if strip_bytes <= 0 or strip_bytes % SECTOR_BYTES:
            raise StorageConfigError(
                f"strip_bytes must be a positive multiple of {SECTOR_BYTES}, "
                f"got {strip_bytes}"
            )
        if disk_sectors <= 0:
            raise StorageConfigError(f"disk_sectors must be > 0, got {disk_sectors}")
        minimum = {
            RaidLevel.JBOD: 1,
            RaidLevel.RAID0: 2,
            RaidLevel.RAID1: 2,
            RaidLevel.RAID5: 3,
            RaidLevel.RAID10: 4,
        }[level]
        if n_disks < minimum:
            raise StorageConfigError(
                f"{level.value} needs >= {minimum} disks, got {n_disks}"
            )
        if level is RaidLevel.RAID1 and n_disks != 2:
            raise StorageConfigError(f"raid1 supports exactly 2 disks, got {n_disks}")
        if level is RaidLevel.JBOD and n_disks != 1:
            raise StorageConfigError(f"jbod is single-disk, got {n_disks}")
        if level is RaidLevel.RAID10 and n_disks % 2:
            raise StorageConfigError(
                f"raid10 needs an even disk count, got {n_disks}"
            )
        self.level = level
        self.n_disks = n_disks
        self.strip_bytes = strip_bytes
        # Usable member capacity truncates to whole strips (as real
        # controllers do) so no stripe row ever spills past the disk.
        strip_sectors = strip_bytes // SECTOR_BYTES
        self.disk_sectors = (disk_sectors // strip_sectors) * strip_sectors
        if self.disk_sectors <= 0:
            raise StorageConfigError(
                f"members of {disk_sectors} sectors cannot hold one "
                f"{strip_bytes}-byte strip"
            )
        self._mirror_next = 0

    # -- Capacity ----------------------------------------------------------

    @property
    def data_disks(self) -> int:
        """Disks' worth of addressable data."""
        if self.level is RaidLevel.RAID5:
            return self.n_disks - 1
        if self.level is RaidLevel.RAID1:
            return 1
        if self.level is RaidLevel.RAID10:
            return self.n_disks // 2
        return self.n_disks

    @property
    def capacity_sectors(self) -> int:
        return self.data_disks * self.disk_sectors

    @property
    def strip_sectors(self) -> int:
        return self.strip_bytes // SECTOR_BYTES

    # -- Internal helpers ---------------------------------------------------

    def _chunks(self, package: IOPackage) -> List[_Chunk]:
        """Split the logical byte extent into strip-aligned chunks."""
        start = package.sector * SECTOR_BYTES
        remaining = package.nbytes
        chunks: List[_Chunk] = []
        while remaining > 0:
            strip_index = start // self.strip_bytes
            offset = start % self.strip_bytes
            take = min(self.strip_bytes - offset, remaining)
            chunks.append(_Chunk(strip_index, offset, take))
            start += take
            remaining -= take
        return chunks

    def parity_disk(self, row: int) -> int:
        """RAID-5 parity disk for stripe ``row`` (rotating, left layout)."""
        return (self.n_disks - 1) - (row % self.n_disks)

    def _raid5_place(self, strip_index: int) -> Tuple[int, int]:
        """Map a data strip index to (disk, row)."""
        per_row = self.n_disks - 1
        row = strip_index // per_row
        position = strip_index % per_row
        pdisk = self.parity_disk(row)
        disk = position if position < pdisk else position + 1
        return disk, row

    def _chunk_sub_io(self, chunk: _Chunk, disk: int, row: int, op: int) -> SubIO:
        sector = row * self.strip_sectors + chunk.offset_bytes // SECTOR_BYTES
        return SubIO(disk=disk, sector=sector, nbytes=chunk.nbytes, op=op)

    # -- Planning ------------------------------------------------------------

    def plan(self, package: IOPackage) -> IOPlan:
        """Build the per-disk execution plan for a logical request."""
        if package.end_sector > self.capacity_sectors:
            raise StorageConfigError(
                f"request {package} exceeds array capacity "
                f"{self.capacity_sectors} sectors"
            )
        if self.level is RaidLevel.JBOD:
            return IOPlan(
                pre=(),
                post=(SubIO(0, package.sector, package.nbytes, package.op),),
            )
        if self.level is RaidLevel.RAID0:
            return self._plan_raid0(package)
        if self.level is RaidLevel.RAID1:
            return self._plan_raid1(package)
        if self.level is RaidLevel.RAID10:
            return self._plan_raid10(package)
        return self._plan_raid5(package)

    def _plan_raid0(self, package: IOPackage) -> IOPlan:
        subs = []
        for chunk in self._chunks(package):
            disk = chunk.strip_index % self.n_disks
            row = chunk.strip_index // self.n_disks
            subs.append(self._chunk_sub_io(chunk, disk, row, package.op))
        return IOPlan(pre=(), post=tuple(subs))

    def _plan_raid1(self, package: IOPackage) -> IOPlan:
        if package.op == READ:
            # Round-robin reads across the mirror pair.
            disk = self._mirror_next
            self._mirror_next = 1 - self._mirror_next
            return IOPlan(
                pre=(),
                post=(SubIO(disk, package.sector, package.nbytes, READ),),
            )
        return IOPlan(
            pre=(),
            post=tuple(
                SubIO(d, package.sector, package.nbytes, WRITE)
                for d in range(self.n_disks)
            ),
        )

    def _plan_raid10(self, package: IOPackage) -> IOPlan:
        """Stripe across mirror pairs: pair ``p`` is disks (2p, 2p+1).

        Reads alternate between the two members of the owning pair;
        writes go to both.
        """
        n_pairs = self.n_disks // 2
        subs: List[SubIO] = []
        for chunk in self._chunks(package):
            pair = chunk.strip_index % n_pairs
            row = chunk.strip_index // n_pairs
            if package.op == READ:
                member = 2 * pair + self._mirror_next
                self._mirror_next = 1 - self._mirror_next
                subs.append(self._chunk_sub_io(chunk, member, row, READ))
            else:
                subs.append(
                    self._chunk_sub_io(chunk, 2 * pair, row, WRITE)
                )
                subs.append(
                    self._chunk_sub_io(chunk, 2 * pair + 1, row, WRITE)
                )
        return IOPlan(pre=(), post=tuple(subs))

    def _plan_raid5(self, package: IOPackage) -> IOPlan:
        chunks = self._chunks(package)
        if package.op == READ:
            subs = []
            for chunk in chunks:
                disk, row = self._raid5_place(chunk.strip_index)
                subs.append(self._chunk_sub_io(chunk, disk, row, READ))
            return IOPlan(pre=(), post=tuple(subs))

        # Writes: group chunks per stripe row.
        per_row = self.n_disks - 1
        rows: Dict[int, List[_Chunk]] = {}
        for chunk in chunks:
            rows.setdefault(chunk.strip_index // per_row, []).append(chunk)
        return self._plan_raid5_write_rows(rows)

    def _plan_raid5_write_rows(self, rows: Dict[int, List[_Chunk]]) -> IOPlan:
        per_row = self.n_disks - 1
        pre: List[SubIO] = []
        post: List[SubIO] = []
        for row, row_chunks in sorted(rows.items()):
            pdisk = self.parity_disk(row)
            covered = sum(c.nbytes for c in row_chunks)
            full_stripe = covered == per_row * self.strip_bytes
            # Parity extent spans the union of the row's data extents.
            lo = min(c.offset_bytes for c in row_chunks)
            hi = max(c.offset_bytes + c.nbytes for c in row_chunks)
            parity_sector = row * self.strip_sectors + lo // SECTOR_BYTES
            parity_nbytes = hi - lo
            if not full_stripe:
                # Read-modify-write: old data + old parity first.
                for chunk in row_chunks:
                    disk, _ = self._raid5_place(chunk.strip_index)
                    pre.append(self._chunk_sub_io(chunk, disk, row, READ))
                pre.append(SubIO(pdisk, parity_sector, parity_nbytes, READ))
            for chunk in row_chunks:
                disk, _ = self._raid5_place(chunk.strip_index)
                post.append(self._chunk_sub_io(chunk, disk, row, WRITE))
            post.append(SubIO(pdisk, parity_sector, parity_nbytes, WRITE))
        return IOPlan(pre=tuple(pre), post=tuple(post))

    # -- Degraded mode (one failed member) ---------------------------------

    def plan_degraded(self, package: IOPackage, failed_disk: int) -> IOPlan:
        """Plan a request with one member disk failed (RAID-5 only).

        * Reads of surviving chunks proceed normally; a chunk on the
          failed disk is *reconstructed* by reading the same extent
          from every other member of the stripe (data + parity).
        * Writes use reconstruct-write: read the row's surviving strips
          that are not being overwritten, then write the surviving
          target chunks plus (when the parity disk survives) the new
          parity.  No sub-I/O ever targets the failed disk.
        """
        if self.level is not RaidLevel.RAID5:
            raise StorageConfigError(
                f"degraded planning requires raid5, not {self.level.value}"
            )
        if not 0 <= failed_disk < self.n_disks:
            raise StorageConfigError(
                f"failed_disk {failed_disk} out of range [0, {self.n_disks})"
            )
        if package.end_sector > self.capacity_sectors:
            raise StorageConfigError(
                f"request {package} exceeds array capacity "
                f"{self.capacity_sectors} sectors"
            )
        chunks = self._chunks(package)
        if package.op == READ:
            return self._plan_degraded_read(chunks, failed_disk)
        return self._plan_degraded_write(chunks, failed_disk)

    def _row_extent(self, chunks: List[_Chunk]) -> Tuple[int, int]:
        lo = min(c.offset_bytes for c in chunks)
        hi = max(c.offset_bytes + c.nbytes for c in chunks)
        return lo, hi

    def _plan_degraded_read(
        self, chunks: List[_Chunk], failed_disk: int
    ) -> IOPlan:
        subs: List[SubIO] = []
        reconstruct_reads = 0
        for chunk in chunks:
            disk, row = self._raid5_place(chunk.strip_index)
            if disk != failed_disk:
                subs.append(self._chunk_sub_io(chunk, disk, row, READ))
                continue
            # Reconstruct: read the same in-strip extent from every
            # surviving member of the stripe (other data strips + parity).
            sector = (
                row * self.strip_sectors + chunk.offset_bytes // SECTOR_BYTES
            )
            for other in range(self.n_disks):
                if other == failed_disk:
                    continue
                subs.append(SubIO(other, sector, chunk.nbytes, READ))
                reconstruct_reads += 1
        return IOPlan(
            pre=(), post=tuple(subs), reconstruct_reads=reconstruct_reads
        )

    def _plan_degraded_write(
        self, chunks: List[_Chunk], failed_disk: int
    ) -> IOPlan:
        per_row = self.n_disks - 1
        rows: Dict[int, List[_Chunk]] = {}
        for chunk in chunks:
            rows.setdefault(chunk.strip_index // per_row, []).append(chunk)

        pre: List[SubIO] = []
        post: List[SubIO] = []
        for row, row_chunks in sorted(rows.items()):
            pdisk = self.parity_disk(row)
            lo, hi = self._row_extent(row_chunks)
            sector = row * self.strip_sectors + lo // SECTOR_BYTES
            nbytes = hi - lo
            written_disks = set()
            for chunk in row_chunks:
                disk, _ = self._raid5_place(chunk.strip_index)
                written_disks.add(disk)
                if disk != failed_disk:
                    post.append(self._chunk_sub_io(chunk, disk, row, WRITE))
            parity_survives = pdisk != failed_disk
            # Reconstruct-write: read every surviving strip of the row
            # that is not fully covered by this write, so the new
            # parity reflects the whole row.  (When parity itself is
            # the casualty there is nothing to maintain.)
            if parity_survives:
                for other in range(self.n_disks):
                    if other == pdisk or other == failed_disk:
                        continue
                    if other in written_disks:
                        continue
                    pre.append(SubIO(other, sector, nbytes, READ))
                post.append(SubIO(pdisk, sector, nbytes, WRITE))
        return IOPlan(
            pre=tuple(pre), post=tuple(post), reconstruct_reads=len(pre)
        )

    def rebuild_rows(self) -> int:
        """Number of stripe rows a full rebuild must reconstruct."""
        return -(-self.disk_sectors // self.strip_sectors)

    def plan_rebuild_row(self, row: int, failed_disk: int) -> IOPlan:
        """One rebuild step: read the row from all survivors, write the
        reconstructed strip to the replacement disk (same index)."""
        if self.level is not RaidLevel.RAID5:
            raise StorageConfigError("rebuild requires raid5")
        sector = row * self.strip_sectors
        nbytes = min(
            self.strip_bytes,
            (self.disk_sectors - sector) * SECTOR_BYTES,
        )
        if nbytes <= 0:
            raise StorageConfigError(f"row {row} beyond disk capacity")
        pre = tuple(
            SubIO(other, sector, nbytes, READ)
            for other in range(self.n_disks)
            if other != failed_disk
        )
        post = (SubIO(failed_disk, sector, nbytes, WRITE),)
        return IOPlan(pre=pre, post=post)


# ---------------------------------------------------------------------------
# Vectorized clean-mode planning (shared by the analytical kernel)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlightExpansion:
    """Closed-form :meth:`RaidGeometry.plan` over many requests at once.

    Sub-I/Os are laid out flight-major in *plan order* — for each flight
    the ``pre`` tuple first, then the ``post`` tuple, each exactly as
    the scalar planner emits them.  All columns are int64, so equality
    with the Python loop is exact (property-tested in
    ``tests/property/test_property_raid_vector.py``).
    """

    flight_offsets: np.ndarray  # (n + 1,) CSR offsets into the sub columns
    sub_flight: np.ndarray  # (total,) owning flight per sub-I/O
    disk: np.ndarray  # (total,) member disk index
    sector: np.ndarray  # (total,) member sector
    nbytes: np.ndarray  # (total,)
    op: np.ndarray  # (total,) READ/WRITE
    is_pre: np.ndarray  # (total,) bool: True for pre-phase reads
    pre_counts: np.ndarray  # (n,) pre-phase sub-I/Os per flight

    @property
    def total(self) -> int:
        return int(self.flight_offsets[-1])

    @property
    def has_pre(self) -> bool:
        return bool(self.pre_counts.any())


def expand_flights(
    geom: RaidGeometry,
    sectors: np.ndarray,
    nbytes: np.ndarray,
    ops: np.ndarray,
) -> FlightExpansion:
    """Vectorize :meth:`RaidGeometry.plan` over CSR request columns.

    Supports the kernel-capable clean-mode levels: JBOD, RAID-0 (any op
    mix) and RAID-5 — including writes, which expand to the scalar
    planner's full-stripe (in-memory parity, no pre-reads) or partial
    stripe read-modify-write (pre-read old data chunks + old parity over
    the row's union extent, then write new data + new parity) plans.
    """
    sectors = np.asarray(sectors, dtype=np.int64)
    nbytes = np.asarray(nbytes, dtype=np.int64)
    ops = np.asarray(ops, dtype=np.int64)
    n = sectors.size
    no_pre = np.zeros(n, dtype=np.int64)
    if geom.level is RaidLevel.JBOD:
        flight_offsets = np.arange(n + 1, dtype=np.int64)
        return FlightExpansion(
            flight_offsets,
            np.arange(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            sectors,
            nbytes,
            ops,
            np.zeros(n, dtype=bool),
            no_pre,
        )
    if geom.level not in (RaidLevel.RAID0, RaidLevel.RAID5):
        raise StorageConfigError(
            f"vectorized planning supports jbod/raid0/raid5, "
            f"not {geom.level.value}"
        )

    # Strip-aligned chunk expansion — the closed form of ``_chunks``.
    strip = geom.strip_bytes
    start_bytes = sectors * SECTOR_BYTES
    off = start_bytes % strip
    nch = (off + nbytes + strip - 1) // strip
    chunk_offsets = np.concatenate(([0], np.cumsum(nch))).astype(np.int64)
    totc = int(chunk_offsets[-1])
    c_flight = np.repeat(np.arange(n, dtype=np.int64), nch)
    j = np.arange(totc, dtype=np.int64) - np.repeat(chunk_offsets[:-1], nch)
    si = (start_bytes // strip)[c_flight] + j
    chunk_start = np.maximum(start_bytes[c_flight], si * strip)
    chunk_end = np.minimum((start_bytes + nbytes)[c_flight], (si + 1) * strip)
    c_nbytes = chunk_end - chunk_start
    c_off = chunk_start - si * strip

    if geom.level is RaidLevel.RAID0:
        disk = si % geom.n_disks
        row = si // geom.n_disks
        sector = row * geom.strip_sectors + c_off // SECTOR_BYTES
        return FlightExpansion(
            chunk_offsets, c_flight, disk, sector, c_nbytes,
            ops[c_flight], np.zeros(totc, dtype=bool), no_pre,
        )

    # RAID-5: left-asymmetric rotating parity data placement.
    per_row = geom.n_disks - 1
    row = si // per_row
    pos = si % per_row
    pdisk = (geom.n_disks - 1) - (row % geom.n_disks)
    d_disk = pos + (pos >= pdisk)
    d_sector = row * geom.strip_sectors + c_off // SECTOR_BYTES

    wmask = (ops == WRITE)[c_flight]
    if not bool(wmask.any()):
        return FlightExpansion(
            chunk_offsets, c_flight, d_disk, d_sector, c_nbytes,
            ops[c_flight], np.zeros(totc, dtype=bool), no_pre,
        )

    # Write chunks group per (flight, stripe row).  Chunks ascend the
    # strip index, so rows are already in the scalar planner's
    # ``sorted(rows.items())`` order and groups are contiguous runs.
    widx = np.flatnonzero(wmask)
    wf = c_flight[widx]
    wr = row[widx]
    wk = widx.size
    new = np.empty(wk, dtype=bool)
    new[0] = True
    new[1:] = (wf[1:] != wf[:-1]) | (wr[1:] != wr[:-1])
    gstart = np.flatnonzero(new)
    gid = np.cumsum(new) - 1
    gcnt = np.diff(np.append(gstart, wk)).astype(np.int64)
    gflight = wf[gstart]
    grow = wr[gstart]
    covered = np.add.reduceat(c_nbytes[widx], gstart)
    glo = np.minimum.reduceat(c_off[widx], gstart)
    ghi = np.maximum.reduceat((c_off + c_nbytes)[widx], gstart)
    partial = covered != per_row * strip
    gpdisk = (geom.n_disks - 1) - (grow % geom.n_disks)
    gpsector = grow * geom.strip_sectors + glo // SECTOR_BYTES
    gpnbytes = ghi - glo
    q = np.arange(wk, dtype=np.int64) - gstart[gid]

    # Candidate sub-I/Os: each category carries its plan-order sort keys
    # (flight, phase, row, okey) where phase 0 = pre / 1 = post and okey
    # orders one row group as [data chunks in chunk order, parity].
    ppre = np.flatnonzero(partial)  # partial (RMW) groups
    dpre = np.flatnonzero(partial[gid])  # their data chunks
    ridx = np.flatnonzero(~wmask)  # read-flight chunks

    def _cat(flight, phase, rowk, okey, disk, sector, nb, op):
        m = flight.size
        return (
            flight, np.full(m, phase, dtype=np.int64), rowk, okey,
            disk, sector, nb, np.full(m, op, dtype=np.int64),
        )

    cats = [
        # Read flights: plain data placement, chunk order (phase 1,
        # row key 0, okey = within-flight chunk index).
        _cat(
            c_flight[ridx], 1, np.zeros(ridx.size, dtype=np.int64), j[ridx],
            d_disk[ridx], d_sector[ridx], c_nbytes[ridx], READ,
        ),
        # RMW pre: old data chunks, then the old parity extent.
        _cat(
            wf[dpre], 0, wr[dpre], q[dpre],
            d_disk[widx][dpre], d_sector[widx][dpre],
            c_nbytes[widx][dpre], READ,
        ),
        _cat(
            gflight[ppre], 0, grow[ppre], gcnt[ppre],
            gpdisk[ppre], gpsector[ppre], gpnbytes[ppre], READ,
        ),
        # Post: new data chunks, then the new parity extent (all rows).
        _cat(
            wf, 1, wr, q,
            d_disk[widx], d_sector[widx], c_nbytes[widx], WRITE,
        ),
        _cat(gflight, 1, grow, gcnt, gpdisk, gpsector, gpnbytes, WRITE),
    ]
    flight_k, phase_k, row_k, okey_k, disk_k, sector_k, nb_k, op_k = (
        np.concatenate(cols) for cols in zip(*cats)
    )
    order = np.lexsort((okey_k, row_k, phase_k, flight_k))
    counts = np.bincount(flight_k, minlength=n).astype(np.int64)
    flight_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    pre_counts = np.bincount(
        flight_k[phase_k == 0], minlength=n
    ).astype(np.int64)
    return FlightExpansion(
        flight_offsets,
        flight_k[order],
        disk_k[order],
        sector_k[order],
        nb_k[order],
        op_k[order],
        (phase_k == 0)[order],
        pre_counts,
    )

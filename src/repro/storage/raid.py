"""RAID geometry: logical-extent → per-disk sub-I/O mapping.

Pure address arithmetic, independent of the simulator, so it is testable
exhaustively (property tests verify coverage/non-overlap invariants).

Supported levels:

* **RAID-0** — striping, no redundancy;
* **RAID-1** — mirroring (reads round-robin, writes fan out);
* **RAID-5** — rotating parity (left-asymmetric layout).  Writes that
  cover a full stripe compute parity in-memory and write everything in
  one pass; partial-stripe writes pay the classic read-modify-write:
  read old data + old parity, then write new data + new parity.  The
  RMW penalty is why small random writes on the paper's RAID-5 array are
  so expensive.
* **JBOD** — single-disk passthrough (used by calibration benches).

The paper's array: RAID-5, strip size 128 KB (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from ..errors import StorageConfigError
from ..trace.record import READ, WRITE, IOPackage
from ..units import SECTOR_BYTES


class RaidLevel(Enum):
    JBOD = "jbod"
    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID10 = "raid10"


@dataclass(frozen=True)
class SubIO:
    """One per-disk operation derived from a logical request."""

    disk: int
    sector: int
    nbytes: int
    op: int

    def to_package(self) -> IOPackage:
        return IOPackage(self.sector, self.nbytes, self.op)


@dataclass(frozen=True)
class IOPlan:
    """Execution plan: ``pre`` (reads) must finish before ``post`` issues.

    Plain reads and full-stripe writes have an empty ``pre`` phase.
    ``reconstruct_reads`` counts the read sub-I/Os a degraded plan issues
    purely to reconstruct data or parity for the failed member (survivor
    reads standing in for a failed-chunk read, and the row reads of a
    reconstruct-write); it is 0 for every clean-mode plan.
    """

    pre: Tuple[SubIO, ...]
    post: Tuple[SubIO, ...]
    reconstruct_reads: int = 0

    @property
    def total_ops(self) -> int:
        return len(self.pre) + len(self.post)


@dataclass(frozen=True)
class _Chunk:
    """A strip-aligned fragment of the logical extent."""

    strip_index: int
    offset_bytes: int   # within the strip
    nbytes: int


class RaidGeometry:
    """Address mapping for one array configuration.

    Parameters
    ----------
    n_disks:
        Member disk count (RAID-5 needs ≥3, RAID-1 exactly 2, JBOD 1).
    strip_bytes:
        Strip (chunk) size per disk; the paper uses 128 KB.
    disk_sectors:
        Capacity of each member disk.
    """

    def __init__(
        self,
        level: RaidLevel,
        n_disks: int,
        strip_bytes: int,
        disk_sectors: int,
    ) -> None:
        if strip_bytes <= 0 or strip_bytes % SECTOR_BYTES:
            raise StorageConfigError(
                f"strip_bytes must be a positive multiple of {SECTOR_BYTES}, "
                f"got {strip_bytes}"
            )
        if disk_sectors <= 0:
            raise StorageConfigError(f"disk_sectors must be > 0, got {disk_sectors}")
        minimum = {
            RaidLevel.JBOD: 1,
            RaidLevel.RAID0: 2,
            RaidLevel.RAID1: 2,
            RaidLevel.RAID5: 3,
            RaidLevel.RAID10: 4,
        }[level]
        if n_disks < minimum:
            raise StorageConfigError(
                f"{level.value} needs >= {minimum} disks, got {n_disks}"
            )
        if level is RaidLevel.RAID1 and n_disks != 2:
            raise StorageConfigError(f"raid1 supports exactly 2 disks, got {n_disks}")
        if level is RaidLevel.JBOD and n_disks != 1:
            raise StorageConfigError(f"jbod is single-disk, got {n_disks}")
        if level is RaidLevel.RAID10 and n_disks % 2:
            raise StorageConfigError(
                f"raid10 needs an even disk count, got {n_disks}"
            )
        self.level = level
        self.n_disks = n_disks
        self.strip_bytes = strip_bytes
        # Usable member capacity truncates to whole strips (as real
        # controllers do) so no stripe row ever spills past the disk.
        strip_sectors = strip_bytes // SECTOR_BYTES
        self.disk_sectors = (disk_sectors // strip_sectors) * strip_sectors
        if self.disk_sectors <= 0:
            raise StorageConfigError(
                f"members of {disk_sectors} sectors cannot hold one "
                f"{strip_bytes}-byte strip"
            )
        self._mirror_next = 0

    # -- Capacity ----------------------------------------------------------

    @property
    def data_disks(self) -> int:
        """Disks' worth of addressable data."""
        if self.level is RaidLevel.RAID5:
            return self.n_disks - 1
        if self.level is RaidLevel.RAID1:
            return 1
        if self.level is RaidLevel.RAID10:
            return self.n_disks // 2
        return self.n_disks

    @property
    def capacity_sectors(self) -> int:
        return self.data_disks * self.disk_sectors

    @property
    def strip_sectors(self) -> int:
        return self.strip_bytes // SECTOR_BYTES

    # -- Internal helpers ---------------------------------------------------

    def _chunks(self, package: IOPackage) -> List[_Chunk]:
        """Split the logical byte extent into strip-aligned chunks."""
        start = package.sector * SECTOR_BYTES
        remaining = package.nbytes
        chunks: List[_Chunk] = []
        while remaining > 0:
            strip_index = start // self.strip_bytes
            offset = start % self.strip_bytes
            take = min(self.strip_bytes - offset, remaining)
            chunks.append(_Chunk(strip_index, offset, take))
            start += take
            remaining -= take
        return chunks

    def parity_disk(self, row: int) -> int:
        """RAID-5 parity disk for stripe ``row`` (rotating, left layout)."""
        return (self.n_disks - 1) - (row % self.n_disks)

    def _raid5_place(self, strip_index: int) -> Tuple[int, int]:
        """Map a data strip index to (disk, row)."""
        per_row = self.n_disks - 1
        row = strip_index // per_row
        position = strip_index % per_row
        pdisk = self.parity_disk(row)
        disk = position if position < pdisk else position + 1
        return disk, row

    def _chunk_sub_io(self, chunk: _Chunk, disk: int, row: int, op: int) -> SubIO:
        sector = row * self.strip_sectors + chunk.offset_bytes // SECTOR_BYTES
        return SubIO(disk=disk, sector=sector, nbytes=chunk.nbytes, op=op)

    # -- Planning ------------------------------------------------------------

    def plan(self, package: IOPackage) -> IOPlan:
        """Build the per-disk execution plan for a logical request."""
        if package.end_sector > self.capacity_sectors:
            raise StorageConfigError(
                f"request {package} exceeds array capacity "
                f"{self.capacity_sectors} sectors"
            )
        if self.level is RaidLevel.JBOD:
            return IOPlan(
                pre=(),
                post=(SubIO(0, package.sector, package.nbytes, package.op),),
            )
        if self.level is RaidLevel.RAID0:
            return self._plan_raid0(package)
        if self.level is RaidLevel.RAID1:
            return self._plan_raid1(package)
        if self.level is RaidLevel.RAID10:
            return self._plan_raid10(package)
        return self._plan_raid5(package)

    def _plan_raid0(self, package: IOPackage) -> IOPlan:
        subs = []
        for chunk in self._chunks(package):
            disk = chunk.strip_index % self.n_disks
            row = chunk.strip_index // self.n_disks
            subs.append(self._chunk_sub_io(chunk, disk, row, package.op))
        return IOPlan(pre=(), post=tuple(subs))

    def _plan_raid1(self, package: IOPackage) -> IOPlan:
        if package.op == READ:
            # Round-robin reads across the mirror pair.
            disk = self._mirror_next
            self._mirror_next = 1 - self._mirror_next
            return IOPlan(
                pre=(),
                post=(SubIO(disk, package.sector, package.nbytes, READ),),
            )
        return IOPlan(
            pre=(),
            post=tuple(
                SubIO(d, package.sector, package.nbytes, WRITE)
                for d in range(self.n_disks)
            ),
        )

    def _plan_raid10(self, package: IOPackage) -> IOPlan:
        """Stripe across mirror pairs: pair ``p`` is disks (2p, 2p+1).

        Reads alternate between the two members of the owning pair;
        writes go to both.
        """
        n_pairs = self.n_disks // 2
        subs: List[SubIO] = []
        for chunk in self._chunks(package):
            pair = chunk.strip_index % n_pairs
            row = chunk.strip_index // n_pairs
            if package.op == READ:
                member = 2 * pair + self._mirror_next
                self._mirror_next = 1 - self._mirror_next
                subs.append(self._chunk_sub_io(chunk, member, row, READ))
            else:
                subs.append(
                    self._chunk_sub_io(chunk, 2 * pair, row, WRITE)
                )
                subs.append(
                    self._chunk_sub_io(chunk, 2 * pair + 1, row, WRITE)
                )
        return IOPlan(pre=(), post=tuple(subs))

    def _plan_raid5(self, package: IOPackage) -> IOPlan:
        chunks = self._chunks(package)
        if package.op == READ:
            subs = []
            for chunk in chunks:
                disk, row = self._raid5_place(chunk.strip_index)
                subs.append(self._chunk_sub_io(chunk, disk, row, READ))
            return IOPlan(pre=(), post=tuple(subs))

        # Writes: group chunks per stripe row.
        per_row = self.n_disks - 1
        rows: Dict[int, List[_Chunk]] = {}
        for chunk in chunks:
            rows.setdefault(chunk.strip_index // per_row, []).append(chunk)
        return self._plan_raid5_write_rows(rows)

    def _plan_raid5_write_rows(self, rows: Dict[int, List[_Chunk]]) -> IOPlan:
        per_row = self.n_disks - 1
        pre: List[SubIO] = []
        post: List[SubIO] = []
        for row, row_chunks in sorted(rows.items()):
            pdisk = self.parity_disk(row)
            covered = sum(c.nbytes for c in row_chunks)
            full_stripe = covered == per_row * self.strip_bytes
            # Parity extent spans the union of the row's data extents.
            lo = min(c.offset_bytes for c in row_chunks)
            hi = max(c.offset_bytes + c.nbytes for c in row_chunks)
            parity_sector = row * self.strip_sectors + lo // SECTOR_BYTES
            parity_nbytes = hi - lo
            if not full_stripe:
                # Read-modify-write: old data + old parity first.
                for chunk in row_chunks:
                    disk, _ = self._raid5_place(chunk.strip_index)
                    pre.append(self._chunk_sub_io(chunk, disk, row, READ))
                pre.append(SubIO(pdisk, parity_sector, parity_nbytes, READ))
            for chunk in row_chunks:
                disk, _ = self._raid5_place(chunk.strip_index)
                post.append(self._chunk_sub_io(chunk, disk, row, WRITE))
            post.append(SubIO(pdisk, parity_sector, parity_nbytes, WRITE))
        return IOPlan(pre=tuple(pre), post=tuple(post))

    # -- Degraded mode (one failed member) ---------------------------------

    def plan_degraded(self, package: IOPackage, failed_disk: int) -> IOPlan:
        """Plan a request with one member disk failed (RAID-5 only).

        * Reads of surviving chunks proceed normally; a chunk on the
          failed disk is *reconstructed* by reading the same extent
          from every other member of the stripe (data + parity).
        * Writes use reconstruct-write: read the row's surviving strips
          that are not being overwritten, then write the surviving
          target chunks plus (when the parity disk survives) the new
          parity.  No sub-I/O ever targets the failed disk.
        """
        if self.level is not RaidLevel.RAID5:
            raise StorageConfigError(
                f"degraded planning requires raid5, not {self.level.value}"
            )
        if not 0 <= failed_disk < self.n_disks:
            raise StorageConfigError(
                f"failed_disk {failed_disk} out of range [0, {self.n_disks})"
            )
        if package.end_sector > self.capacity_sectors:
            raise StorageConfigError(
                f"request {package} exceeds array capacity "
                f"{self.capacity_sectors} sectors"
            )
        chunks = self._chunks(package)
        if package.op == READ:
            return self._plan_degraded_read(chunks, failed_disk)
        return self._plan_degraded_write(chunks, failed_disk)

    def _row_extent(self, chunks: List[_Chunk]) -> Tuple[int, int]:
        lo = min(c.offset_bytes for c in chunks)
        hi = max(c.offset_bytes + c.nbytes for c in chunks)
        return lo, hi

    def _plan_degraded_read(
        self, chunks: List[_Chunk], failed_disk: int
    ) -> IOPlan:
        subs: List[SubIO] = []
        reconstruct_reads = 0
        for chunk in chunks:
            disk, row = self._raid5_place(chunk.strip_index)
            if disk != failed_disk:
                subs.append(self._chunk_sub_io(chunk, disk, row, READ))
                continue
            # Reconstruct: read the same in-strip extent from every
            # surviving member of the stripe (other data strips + parity).
            sector = (
                row * self.strip_sectors + chunk.offset_bytes // SECTOR_BYTES
            )
            for other in range(self.n_disks):
                if other == failed_disk:
                    continue
                subs.append(SubIO(other, sector, chunk.nbytes, READ))
                reconstruct_reads += 1
        return IOPlan(
            pre=(), post=tuple(subs), reconstruct_reads=reconstruct_reads
        )

    def _plan_degraded_write(
        self, chunks: List[_Chunk], failed_disk: int
    ) -> IOPlan:
        per_row = self.n_disks - 1
        rows: Dict[int, List[_Chunk]] = {}
        for chunk in chunks:
            rows.setdefault(chunk.strip_index // per_row, []).append(chunk)

        pre: List[SubIO] = []
        post: List[SubIO] = []
        for row, row_chunks in sorted(rows.items()):
            pdisk = self.parity_disk(row)
            lo, hi = self._row_extent(row_chunks)
            sector = row * self.strip_sectors + lo // SECTOR_BYTES
            nbytes = hi - lo
            written_disks = set()
            for chunk in row_chunks:
                disk, _ = self._raid5_place(chunk.strip_index)
                written_disks.add(disk)
                if disk != failed_disk:
                    post.append(self._chunk_sub_io(chunk, disk, row, WRITE))
            parity_survives = pdisk != failed_disk
            # Reconstruct-write: read every surviving strip of the row
            # that is not fully covered by this write, so the new
            # parity reflects the whole row.  (When parity itself is
            # the casualty there is nothing to maintain.)
            if parity_survives:
                for other in range(self.n_disks):
                    if other == pdisk or other == failed_disk:
                        continue
                    if other in written_disks:
                        continue
                    pre.append(SubIO(other, sector, nbytes, READ))
                post.append(SubIO(pdisk, sector, nbytes, WRITE))
        return IOPlan(
            pre=tuple(pre), post=tuple(post), reconstruct_reads=len(pre)
        )

    def rebuild_rows(self) -> int:
        """Number of stripe rows a full rebuild must reconstruct."""
        return -(-self.disk_sectors // self.strip_sectors)

    def plan_rebuild_row(self, row: int, failed_disk: int) -> IOPlan:
        """One rebuild step: read the row from all survivors, write the
        reconstructed strip to the replacement disk (same index)."""
        if self.level is not RaidLevel.RAID5:
            raise StorageConfigError("rebuild requires raid5")
        sector = row * self.strip_sectors
        nbytes = min(
            self.strip_bytes,
            (self.disk_sectors - sector) * SECTOR_BYTES,
        )
        if nbytes <= 0:
            raise StorageConfigError(f"row {row} beyond disk capacity")
        pre = tuple(
            SubIO(other, sector, nbytes, READ)
            for other in range(self.n_disks)
            if other != failed_disk
        )
        post = (SubIO(failed_disk, sector, nbytes, WRITE),)
        return IOPlan(pre=pre, post=post)

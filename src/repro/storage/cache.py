"""Controller cache — the component the paper switched off.

"The disk array controller's cache is disabled during the experiments
to assure direct access to disks" (§V-A).  Several of this
reproduction's divergences from the paper trace back to that choice
(EXPERIMENTS.md "known divergences"): a write-back controller cache
absorbs partial-stripe writes and hides the RAID-5 read-modify-write.
This module implements the cache so the ablation benchmark can measure
exactly what disabling it costs — and what the paper's numbers would
have looked like with it on.

Model (deliberately classic):

* fixed capacity, 64 KiB lines, LRU replacement;
* **read path**: whole-line hit → served at controller speed (DRAM);
  miss → forwarded to the array, line(s) filled on completion;
* **write path (write-back)**: data lands in cache lines and completes
  at controller speed; dirty lines destage to the array in the
  background (a trickle destager with a configurable depth), so the
  media traffic — and its energy — still happens, just off the
  latency path;
* a dirty-ratio high-watermark throttles writes when the destager
  falls behind (writes then wait for a destage slot, which is how a
  real controller degrades to write-through under pressure).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from ..errors import StorageConfigError
from ..sim.engine import Simulator
from ..storage.base import Completion, CompletionCallback, StorageDevice
from ..trace.record import READ, WRITE, IOPackage
from ..units import SECTOR_BYTES


@dataclass(frozen=True)
class CacheSpec:
    """Controller cache parameters (the paper's array has 300 MB)."""

    capacity_bytes: int = 300 * 1024 * 1024
    line_bytes: int = 64 * 1024
    hit_time: float = 0.00005
    """DRAM + firmware service time for a cache hit."""
    destage_depth: int = 4
    """Dirty lines destaged concurrently in the background."""
    dirty_high_watermark: float = 0.75
    """Writes stall once this fraction of lines is dirty."""

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise StorageConfigError("cache sizes must be > 0")
        if self.capacity_bytes < self.line_bytes:
            raise StorageConfigError("cache smaller than one line")
        if self.line_bytes % SECTOR_BYTES:
            raise StorageConfigError("line_bytes must be a 512 multiple")
        if not 0.0 < self.dirty_high_watermark <= 1.0:
            raise StorageConfigError("dirty_high_watermark must be in (0,1]")
        if self.destage_depth < 1:
            raise StorageConfigError("destage_depth must be >= 1")

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def line_sectors(self) -> int:
        return self.line_bytes // SECTOR_BYTES


class CachedArray(StorageDevice):
    """A write-back LRU cache in front of any storage device.

    Wraps a backend (normally a :class:`~repro.storage.array.DiskArray`)
    and presents the same ``submit`` interface.  Power is the backend's
    (the cache DRAM's draw is part of the enclosure's non-disk power).
    """

    def __init__(
        self,
        backend: StorageDevice,
        spec: CacheSpec = CacheSpec(),
        name: str = "cached0",
    ) -> None:
        super().__init__(name)
        self.backend = backend
        self.spec = spec
        # line id -> dirty flag; OrderedDict gives LRU order.
        self._lines: "OrderedDict[int, bool]" = OrderedDict()
        self._destaging = 0
        self._write_waiters: Deque[Tuple[IOPackage, float, CompletionCallback]] = (
            deque()
        )
        self.read_hits = 0
        self.read_misses = 0
        self.write_absorbs = 0
        self.write_stalls = 0
        self.destages = 0
        # Construction-time telemetry gate (cache ops schedule events,
        # so one guarded increment per operation is far off the packed
        # fast path's noise floor).
        from ..telemetry import get_registry

        reg = get_registry()
        self._tele = reg if reg.enabled else None
        if self._tele is not None:
            self._tele_hits = reg.counter("cache.read_hits", cache=name)
            self._tele_misses = reg.counter("cache.read_misses", cache=name)
            self._tele_destages = reg.counter("cache.destages", cache=name)
            self._tele_stalls = reg.counter("cache.write_stalls", cache=name)
            self._tele_dirty = reg.gauge("cache.dirty_lines", cache=name)

    # -- Plumbing ------------------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        self.backend.attach(sim)

    @property
    def capacity_sectors(self) -> int:
        return self.backend.capacity_sectors

    def energy_between(self, t0: float, t1: float) -> float:
        return self.backend.energy_between(t0, t1)

    @property
    def meter(self):
        """Expose the backend's meter so sessions measure the array."""
        return getattr(self.backend, "meter", self.backend)

    @property
    def dirty_lines(self) -> int:
        return sum(1 for dirty in self._lines.values() if dirty)

    # -- Line management -------------------------------------------------------

    def _line_range(self, package: IOPackage) -> range:
        first = package.sector // self.spec.line_sectors
        last = (package.end_sector - 1) // self.spec.line_sectors
        return range(first, last + 1)

    def _touch(self, line: int, dirty: bool) -> None:
        if line in self._lines:
            dirty = dirty or self._lines[line]
            del self._lines[line]
        self._lines[line] = dirty
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._lines) > self.spec.n_lines:
            # Evict the LRU line; a dirty victim must destage first —
            # modelled as an immediate destage submission.
            for line, dirty in self._lines.items():
                victim, victim_dirty = line, dirty
                break
            del self._lines[victim]
            if victim_dirty:
                self._destage_line(victim, forced=True)

    # -- Destager -------------------------------------------------------------

    def _destage_line(self, line: int, forced: bool = False) -> None:
        sim = self._require_sim()
        self._destaging += 1
        self.destages += 1
        if self._tele is not None:
            self._tele_destages.inc()
            self._tele_dirty.set(self.dirty_lines)
        pkg = IOPackage(
            line * self.spec.line_sectors, self.spec.line_bytes, WRITE
        )

        def _done(_completion: Completion) -> None:
            self._destaging -= 1
            self._pump()

        self.backend.submit(pkg, _done)

    def _pump(self) -> None:
        """Advance background destaging and release stalled writes."""
        while self._destaging < self.spec.destage_depth:
            dirty_line = next(
                (line for line, dirty in self._lines.items() if dirty), None
            )
            if dirty_line is None:
                break
            self._lines[dirty_line] = False
            self._destage_line(dirty_line)
        while self._write_waiters and not self._over_watermark():
            pkg, submit_time, cb = self._write_waiters.popleft()
            self._absorb_write(pkg, submit_time, cb)

    def _over_watermark(self) -> bool:
        limit = self.spec.dirty_high_watermark * self.spec.n_lines
        return self.dirty_lines >= limit

    # -- I/O path ---------------------------------------------------------------

    def submit(self, package: IOPackage, on_complete: CompletionCallback) -> None:
        sim = self._require_sim()
        self.check_bounds(package)
        if package.op == READ:
            self._submit_read(package, sim.now, on_complete)
        else:
            self._submit_write(package, sim.now, on_complete)

    def _submit_read(
        self, package: IOPackage, submit_time: float, on_complete
    ) -> None:
        sim = self._require_sim()
        lines = list(self._line_range(package))
        if all(line in self._lines for line in lines):
            self.read_hits += 1
            if self._tele is not None:
                self._tele_hits.inc()
            for line in lines:
                self._touch(line, dirty=False)
            finish = sim.now + self.spec.hit_time
            sim.schedule(
                finish,
                on_complete,
                Completion(package, submit_time, submit_time, finish),
            )
            return
        self.read_misses += 1
        if self._tele is not None:
            self._tele_misses.inc()

        def _filled(completion: Completion) -> None:
            for line in lines:
                self._touch(line, dirty=False)
            on_complete(
                Completion(
                    package, submit_time, completion.start_time, sim.now
                )
            )

        self.backend.submit(package, _filled)

    def _submit_write(
        self, package: IOPackage, submit_time: float, on_complete
    ) -> None:
        if self._over_watermark():
            self.write_stalls += 1
            if self._tele is not None:
                self._tele_stalls.inc()
            self._write_waiters.append((package, submit_time, on_complete))
            self._pump()
            return
        self._absorb_write(package, submit_time, on_complete)

    def _absorb_write(
        self, package: IOPackage, submit_time: float, on_complete
    ) -> None:
        sim = self._require_sim()
        self.write_absorbs += 1
        for line in self._line_range(package):
            self._touch(line, dirty=True)
        finish = sim.now + self.spec.hit_time
        sim.schedule(
            finish,
            on_complete,
            Completion(package, submit_time, submit_time, finish),
        )
        self._pump()

    # -- Shutdown ------------------------------------------------------------

    def flush(self, on_complete: Optional[Callable[[], None]] = None) -> None:
        """Destage every dirty line (end-of-run hygiene)."""
        sim = self._require_sim()

        def _check() -> None:
            self._pump()
            if self.dirty_lines == 0 and self._destaging == 0:
                if on_complete is not None:
                    on_complete()
            else:
                sim.schedule_after(0.01, _check, priority=18)

        _check()

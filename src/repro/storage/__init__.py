"""Storage substrate: simulated disks, RAID geometry, and disk arrays.

The paper evaluates TRACER on a real RAID-5 enterprise array (6× Seagate
7200.12 HDDs) and on a 4× Memoright SLC SSD array.  We have neither, so
this package provides first-principles service-time and power models
calibrated against the paper's reported anchors (see
``DESIGN.md`` §2 and :mod:`repro.storage.specs`):

* :mod:`~repro.storage.hdd` — mechanical model: seek (distance-
  dependent), rotational latency, zoned transfer rate, read/write
  turnaround, optional spin-down states;
* :mod:`~repro.storage.ssd` — flash model: per-op latency, channel
  transfer rates, small random-write overhead;
* :mod:`~repro.storage.raid` — RAID-0/1/5 geometry incl. RAID-5 partial-
  stripe read-modify-write;
* :mod:`~repro.storage.array` — the full disk array: controller
  dispatch, FC-link serialisation, enclosure (non-disk) power.
"""

from .base import Completion, StorageDevice, QueuedDevice
from .specs import (
    HDDSpec,
    SSDSpec,
    EnclosureSpec,
    SEAGATE_7200_12,
    MEMORIGHT_SLC_32GB,
    HDD_ENCLOSURE,
    SSD_ENCLOSURE,
)
from .hdd import HardDiskDrive
from .ssd import SolidStateDrive
from .raid import RaidGeometry, RaidLevel
from .array import DiskArray, build_hdd_raid5, build_ssd_raid5

__all__ = [
    "Completion",
    "StorageDevice",
    "QueuedDevice",
    "HDDSpec",
    "SSDSpec",
    "EnclosureSpec",
    "SEAGATE_7200_12",
    "MEMORIGHT_SLC_32GB",
    "HDD_ENCLOSURE",
    "SSD_ENCLOSURE",
    "HardDiskDrive",
    "SolidStateDrive",
    "RaidGeometry",
    "RaidLevel",
    "DiskArray",
    "build_hdd_raid5",
    "build_ssd_raid5",
]

"""Device specification catalog.

Numbers are calibrated to public datasheets of the paper's hardware
(Seagate Barracuda 7200.12 500 GB; Memoright MR25.2 SLC 32 GB) and to the
power anchors the paper itself reports:

* Fig. 7: array power grows linearly with disk count and the disks
  dominate once more than three are installed — so the HDD enclosure's
  non-disk draw sits just under four idle disks' worth;
* §VI-G: SSD idle power averages 3.5 W and the SSD array idles at
  195.8 W — implying that enclosure's non-disk components draw 181.8 W.

Absolute service times need only be *plausible*; the reproduced results
are relationships (efficiency vs. load/randomness/read ratio/request
size), which are robust to modest miscalibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageConfigError
from ..units import GB, MB


@dataclass(frozen=True)
class HDDSpec:
    """Mechanical hard-drive model parameters.

    Service model (see :class:`~repro.storage.hdd.HardDiskDrive`):

    * sequential requests stream at the zoned transfer rate;
    * non-sequential requests pay ``settle_time + seek_coefficient *
      sqrt(distance_fraction)`` of seek plus the mean rotational latency;
    * switching between reads and writes pays a turnaround penalty
      (write-to-read is costlier: the write path must be flushed and the
      head re-settled to read tolerance).
    """

    name: str
    capacity_bytes: int
    rpm: int
    settle_time: float
    seek_coefficient: float
    outer_rate: float          # bytes/s at LBA 0 (outer tracks)
    inner_rate: float          # bytes/s at the last LBA
    read_to_write_turnaround: float
    write_to_read_turnaround: float
    command_overhead: float    # per-request controller/firmware time
    idle_watts: float
    seek_watts: float          # total draw while the actuator moves
    read_watts: float          # total draw during read transfer
    write_watts: float         # total draw during write transfer
    rotate_wait_watts: float   # draw while waiting for the platter
    standby_watts: float
    spinup_time: float
    spinup_watts: float
    spindown_time: float
    write_cache: bool = True
    """Drive-level write-back cache (the paper disables the *controller*
    cache only, §V-A).  Cached writes destage in sorted order, which
    shortens their effective seek and rotational costs."""
    destage_seek_factor: float = 0.45
    """Fraction of the normal seek+rotation a cached write effectively
    costs (sorted destage shortens head travel)."""

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise StorageConfigError(f"{self.name}: capacity must be > 0")
        if self.rpm <= 0:
            raise StorageConfigError(f"{self.name}: rpm must be > 0")
        if self.inner_rate > self.outer_rate:
            raise StorageConfigError(
                f"{self.name}: inner rate exceeds outer rate (zoning inverted)"
            )
        if not 0.0 < self.destage_seek_factor <= 1.0:
            raise StorageConfigError(
                f"{self.name}: destage_seek_factor must be in (0, 1]"
            )

    @property
    def rotation_time(self) -> float:
        """One full platter revolution in seconds."""
        return 60.0 / self.rpm

    @property
    def mean_rotational_latency(self) -> float:
        """Expected wait for the target sector: half a revolution."""
        return self.rotation_time / 2.0

    @property
    def capacity_sectors(self) -> int:
        return self.capacity_bytes // 512

    def transfer_rate_at(self, sector: int) -> float:
        """Zoned media rate, linearly interpolated outer→inner."""
        frac = min(max(sector / max(self.capacity_sectors, 1), 0.0), 1.0)
        return self.outer_rate - (self.outer_rate - self.inner_rate) * frac


@dataclass(frozen=True)
class SSDSpec:
    """Flash solid-state-drive model parameters.

    * reads/writes pay a fixed access latency plus size / channel rate;
    * random (non-contiguous) writes smaller than a flash page pay an
      FTL read-modify-write overhead — mild compared to an HDD seek, but
      enough that high random ratios lower SSD efficiency (§VI-G).
    """

    name: str
    capacity_bytes: int
    read_latency: float
    write_latency: float
    read_rate: float           # bytes/s
    write_rate: float          # bytes/s
    random_write_overhead: float
    page_bytes: int
    command_overhead: float
    idle_watts: float
    read_watts: float
    write_watts: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise StorageConfigError(f"{self.name}: capacity must be > 0")
        if self.page_bytes <= 0:
            raise StorageConfigError(f"{self.name}: page size must be > 0")

    @property
    def capacity_sectors(self) -> int:
        return self.capacity_bytes // 512


@dataclass(frozen=True)
class EnclosureSpec:
    """Array enclosure: controller, fans, backplane, PSU losses.

    ``controller_overhead`` is the per-request dispatch latency;
    ``link_rate`` models the host link (4 Gb/s Fibre Channel ≈ 400 MB/s
    effective after 8b/10b encoding).
    """

    name: str
    non_disk_watts: float
    controller_overhead: float
    link_rate: float
    max_disks: int

    def __post_init__(self) -> None:
        if self.non_disk_watts < 0:
            raise StorageConfigError(f"{self.name}: non-disk power must be >= 0")
        if self.link_rate <= 0:
            raise StorageConfigError(f"{self.name}: link rate must be > 0")
        if self.max_disks < 1:
            raise StorageConfigError(f"{self.name}: must hold >= 1 disk")


#: Seagate Barracuda 7200.12, 500 GB (ST3500418AS) — the paper's HDD.
#: Datasheet anchors: 7200 rpm, ~8.5 ms average read seek, 125 MB/s
#: sustained outer rate.  Idle power is set to 10 W — the array-level
#: value implied by Fig. 7's "disks dominate beyond 3 disks" against the
#: 38 W enclosure (desktop datasheet idle is ~5 W at the 5 V/12 V rails;
#: measured at the 220 V AC wall through the PSU it lands near 10 W).
SEAGATE_7200_12 = HDDSpec(
    name="seagate-7200.12-500gb",
    capacity_bytes=500 * GB,
    rpm=7200,
    settle_time=0.0020,
    seek_coefficient=0.0107,      # avg random seek ≈ 2 + 10.7*sqrt(1/3) ≈ 8.2 ms
    outer_rate=125 * MB,
    inner_rate=60 * MB,
    read_to_write_turnaround=0.0007,
    write_to_read_turnaround=0.0011,
    command_overhead=0.0001,
    idle_watts=10.0,
    seek_watts=13.5,
    read_watts=11.8,
    write_watts=12.3,
    rotate_wait_watts=10.8,
    standby_watts=1.5,
    spinup_time=6.0,
    spinup_watts=24.0,
    spindown_time=1.5,
)

#: Memoright MR25.2 SLC SSD, 32 GB — the paper's SSD.  Idle power is the
#: paper's own 3.5 W figure (§VI-G).  SLC write throughput slightly
#: exceeds read throughput through the DRAM write buffer, which is what
#: makes low read ratios *more* energy-efficient on this device (§VI-G).
MEMORIGHT_SLC_32GB = SSDSpec(
    name="memoright-slc-32gb",
    capacity_bytes=32 * GB,
    read_latency=0.00015,
    write_latency=0.00006,   # acked from the on-board DRAM buffer
    read_rate=110 * MB,
    write_rate=150 * MB,     # DMA into the DRAM buffer; destage keeps up
    random_write_overhead=0.0035,
    # 2008-era FTLs stall hard on non-sequential writes (block-mapped,
    # no TRIM): measured random-write IOPS of this class of drive sits
    # in the low hundreds, i.e. several ms per scattered write.
    page_bytes=4096,
    command_overhead=0.00002,
    idle_watts=3.5,
    read_watts=4.2,
    write_watts=4.8,
)

#: The HDD array enclosure.  38 W non-disk draw sits just below four
#: idle disks (40 W), matching Fig. 7's crossover at >3 disks.
HDD_ENCLOSURE = EnclosureSpec(
    name="hdd-raid-enclosure",
    non_disk_watts=38.0,
    controller_overhead=0.00005,
    link_rate=400 * MB,
    max_disks=12,
)

#: The SSD array enclosure: 195.8 W array idle − 4 × 3.5 W = 181.8 W
#: of non-disk draw (§VI-G — evidently a much beefier chassis).
SSD_ENCLOSURE = EnclosureSpec(
    name="ssd-raid-enclosure",
    non_disk_watts=181.8,
    controller_overhead=0.00005,
    link_rate=400 * MB,
    max_disks=8,
)

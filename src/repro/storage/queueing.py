"""Per-device queueing disciplines.

The baseline experiments use FIFO (the paper disables the controller
cache and reordering to "assure direct access to disks"), but a real
drive firmware reorders; the elevator (SCAN) discipline is provided for
the scheduling ablation benchmark, which quantifies how much seek
optimisation would mask the random-ratio effects the paper measures.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..trace.record import IOPackage

#: Queue entries: (package, submit_time, callback)
Entry = Tuple[IOPackage, float, object]


class QueueDiscipline(ABC):
    """Order in which a device drains waiting requests.

    ``pushed_total``/``popped_total`` are plain counters (like the
    devices' ``queued_high_water``) that the telemetry layer exports as
    gauges at session end — always-on ints, never a per-event branch.
    """

    pushed_total: int = 0
    popped_total: int = 0

    @abstractmethod
    def push(self, entry: Entry) -> None: ...

    @abstractmethod
    def pop(self, head_sector: int) -> Optional[Entry]:
        """Next entry to serve given the current head position."""

    @abstractmethod
    def __len__(self) -> int: ...


class FIFOQueue(QueueDiscipline):
    """First-in first-out — the paper's direct-access behaviour."""

    def __init__(self) -> None:
        self._q: Deque[Entry] = deque()
        self.pushed_total = 0
        self.popped_total = 0

    def push(self, entry: Entry) -> None:
        self.pushed_total += 1
        self._q.append(entry)

    def pop(self, head_sector: int) -> Optional[Entry]:
        if not self._q:
            return None
        self.popped_total += 1
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)


class ElevatorQueue(QueueDiscipline):
    """SCAN: serve the waiting request nearest the head in the sweep
    direction, reversing at the end of the queue's extent.

    O(n) pop — queues in these simulations stay shallow (tens of
    entries), so a tree is not worth the complexity.
    """

    def __init__(self) -> None:
        self._entries: List[Entry] = []
        self._direction = 1
        self.pushed_total = 0
        self.popped_total = 0
        self.direction_reversals = 0

    def push(self, entry: Entry) -> None:
        self.pushed_total += 1
        self._entries.append(entry)

    def pop(self, head_sector: int) -> Optional[Entry]:
        if not self._entries:
            return None
        self.popped_total += 1
        ahead = [
            (i, e)
            for i, e in enumerate(self._entries)
            if (e[0].sector - head_sector) * self._direction >= 0
        ]
        if not ahead:
            self._direction = -self._direction
            self.direction_reversals += 1
            ahead = list(enumerate(self._entries))
        idx, entry = min(
            ahead, key=lambda item: abs(item[1][0].sector - head_sector)
        )
        self._entries.pop(idx)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

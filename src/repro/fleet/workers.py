"""Evaluation workers: local pool and remote hosts behind one interface.

A :class:`FleetWorker` accepts one job at a time and returns a
``concurrent.futures.Future`` resolving to the job's raw result payload
(a JSON-safe dict).  The scheduler owns placement — a worker never
queues; it is either idle or executing exactly one job.

Two families:

* :class:`LocalWorker` — executes in-process.  ``mode="thread"`` runs
  on a single-thread executor against a shared
  :class:`EvaluationContext`; ``mode="process"`` owns a one-process
  pool seeded with the context's traces via an initializer, so the
  trace bytes ship once per worker, not once per job.  A process
  worker's child dying (``kill()``, OOM, crash) surfaces as
  :class:`~repro.errors.WorkerDied`.
* :class:`RemoteWorker` — dispatches replay jobs to a generator node
  through :class:`~repro.distributed.RemoteEvaluationHost`'s
  ``run_test_raw``, passing the job id as the wire ``request_id`` so a
  job retried against the *same node* after a link death is served from
  the node's result cache instead of replaying.  Link failures map to
  :class:`~repro.errors.WorkerDied`.
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Callable, Dict, List, Optional

from ..config import ReplayConfig, TestRequest, WorkloadMode
from ..errors import FleetError, ProtocolError, TracerError, WorkerDied
from ..trace.blktrace import Trace, dumps_packed, loads_packed
from ..trace.packed import PackedTrace
from .jobs import FleetJob, JobSpec, trace_fingerprint

#: Optional per-dispatch chaos hook: ``chaos(worker_name, job)`` runs
#: before execution; raising :class:`WorkerDied` simulates the worker
#: dying mid-job (the chaos tests and the CI smoke use this to induce
#: deterministic failures without real process kills).
ChaosFn = Callable[[str, FleetJob], None]

#: Mid-replay interval-frame callback (replay jobs only).
FrameFn = Callable[[Dict[str, Any]], None]


def device_factory(kind: str, n_disks: int) -> Callable:
    """Picklable storage-array factory for a fleet device label."""
    from ..storage.array import (
        RaidLevel,
        build_hdd_raid5,
        build_ssd_raid5,
    )

    if kind == "hdd-raid5":
        return partial(build_hdd_raid5, n_disks)
    if kind == "ssd-raid5":
        return partial(build_ssd_raid5, n_disks)
    if kind == "hdd-raid0":
        return partial(
            build_hdd_raid5, n_disks, name="hdd-raid0", level=RaidLevel.RAID0
        )
    if kind == "ssd-raid0":
        return partial(
            build_ssd_raid5, n_disks, name="ssd-raid0", level=RaidLevel.RAID0
        )
    raise FleetError(
        f"unknown device type {kind!r} "
        "(hdd-raid5 | ssd-raid5 | hdd-raid0 | ssd-raid0)"
    )


class EvaluationContext:
    """What a local worker needs to run any job: traces plus execution.

    Holds the label → :class:`Trace` map, caches trace fingerprints,
    and counts actual executions (the dedup tests assert on this — a
    cache hit must *not* bump it).
    """

    def __init__(self, traces: Optional[Dict[str, Any]] = None) -> None:
        self._traces: Dict[str, PackedTrace] = {}
        self._fps: Dict[str, str] = {}
        self._lock = threading.Lock()
        self.executions = 0
        for label, trace in (traces or {}).items():
            self.add_trace(label, trace)

    @staticmethod
    def _normalize(label: str, trace: Any) -> PackedTrace:
        """Round-trip through the packed wire codec.

        Bit-identity across worker kinds demands that every worker
        replay *exactly* the same trace: the codec quantizes timestamps
        to nanoseconds, so a freshly collected in-memory trace and its
        decoded wire form differ at the ULP level.  Normalising at
        admission (and pinning the label) makes thread workers, process
        children, and serial comparison replays all see the canonical
        quantized form — the one the fingerprint hashes.
        """
        if isinstance(trace, Trace):
            trace = PackedTrace.from_trace(trace)
        return loads_packed(dumps_packed(trace), label=label)

    def add_trace(self, label: str, trace: Any) -> None:
        normalized = self._normalize(label, trace)
        with self._lock:
            self._traces[label] = normalized
            self._fps.pop(label, None)

    def labels(self) -> List[str]:
        return sorted(self._traces)

    def trace(self, label: str) -> PackedTrace:
        try:
            return self._traces[label]
        except KeyError:
            raise FleetError(
                f"unknown trace {label!r}; have {self.labels()}"
            ) from None

    def trace_fp(self, label: str) -> str:
        with self._lock:
            fp = self._fps.get(label)
            if fp is None:
                fp = self._fps[label] = trace_fingerprint(self.trace(label))
            return fp

    def encoded_traces(self) -> Dict[str, bytes]:
        """Serialised traces, for shipping to process-worker children."""
        return {
            label: dumps_packed(trace)
            for label, trace in self._traces.items()
        }

    def execute(
        self,
        spec: JobSpec,
        on_frame: Optional[FrameFn] = None,
        stream_interval: Optional[float] = None,
        trace_context: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run one job spec to completion; return its raw result dict.

        With a ``trace_context`` (a ``repro.telemetry.dtrace`` context
        dict) the execution runs inside a tracing scope: a
        ``worker.execute`` span wraps the run, the replay session's
        phase spans nest under it, and the finished span list rides the
        payload home (``metadata["dtrace"]`` for replay results, a
        top-level ``dtrace`` key for grid/search).  The span carrier is
        stripped by :func:`~repro.fleet.jobs.canonical_result_bytes`,
        so traced and untraced executions stay bit-identical.
        """
        if trace_context is None:
            return self._execute(spec, on_frame, stream_interval)
        from ..telemetry import dtrace

        ctx = dtrace.TraceContext.from_dict(trace_context)
        with dtrace.tracing_scope(ctx) as sink:
            with dtrace.span(dtrace.SPAN_EXECUTE, kind=spec.kind,
                             trace=spec.trace):
                payload = self._execute(spec, on_frame, stream_interval)
        payload = dict(payload)
        if spec.kind == "replay":
            metadata = dict(payload.get("metadata") or {})
            metadata["dtrace"] = sink
            payload["metadata"] = metadata
        else:
            payload["dtrace"] = sink
        return payload

    def _execute(
        self,
        spec: JobSpec,
        on_frame: Optional[FrameFn] = None,
        stream_interval: Optional[float] = None,
    ) -> Dict[str, Any]:
        with self._lock:
            self.executions += 1
        config = ReplayConfig(
            sampling_cycle=spec.sampling_cycle,
            time_scale=spec.time_scale,
            seed=spec.seed,
            engine=spec.engine,
        )
        trace = self.trace(spec.trace)
        factory = device_factory(spec.device, spec.n_disks)
        if spec.kind == "replay":
            from ..replay.session import replay_trace

            result = replay_trace(
                trace,
                factory(),
                spec.load,
                config=config,
                faults=spec.fault_schedule(),
                stream_interval=stream_interval,
                on_frame=on_frame,
                engine=spec.engine,
            )
            return result.to_dict()
        if spec.kind == "grid":
            from ..workload.parallel import run_grid

            outcome = run_grid(
                {spec.trace: trace},
                {spec.device: factory},
                loads=spec.loads,
                time_scales=spec.time_scales,
                config=config,
                engine=spec.engine,
                parallel=False,
            )
            return outcome.to_dict(deterministic=True)
        # kind == "search" (JobSpec validated the kind at construction)
        from ..search import build_policies
        from ..workload.parallel import run_policy_search

        outcome = run_policy_search(
            {spec.trace: trace},
            {spec.device: factory},
            build_policies(list(spec.policies)),
            loads=spec.loads,
            time_scales=spec.time_scales,
            config=config,
            engine=spec.engine,
            parallel=False,
        )
        return outcome.to_dict(deterministic=True)


# -- process-worker child entry points (module level: picklable) ------------

_CHILD_CONTEXT: Optional[EvaluationContext] = None


def _child_init(encoded: Dict[str, bytes]) -> None:
    global _CHILD_CONTEXT
    _CHILD_CONTEXT = EvaluationContext(
        {
            label: loads_packed(blob, label=label)
            for label, blob in encoded.items()
        }
    )


def _child_execute(
    spec_dict: Dict[str, Any],
    trace_context: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    assert _CHILD_CONTEXT is not None, "process worker not initialised"
    return _CHILD_CONTEXT.execute(
        JobSpec.from_dict(spec_dict), trace_context=trace_context
    )


def _child_pid() -> int:
    return os.getpid()


def _translated(source: "Future[Any]",
                translate: Callable[[BaseException], BaseException]
                ) -> "Future[Any]":
    """Chain a future, mapping its exception through ``translate``."""
    out: "Future[Any]" = Future()

    def _done(f: "Future[Any]") -> None:
        exc = f.exception()
        if exc is None:
            out.set_result(f.result())
        else:
            out.set_exception(translate(exc))

    source.add_done_callback(_done)
    return out


class FleetWorker:
    """Interface every worker implements."""

    name: str = "?"
    alive: bool = True
    jobs_done: int = 0

    def submit(
        self,
        job: FleetJob,
        on_frame: Optional[FrameFn] = None,
        stream_interval: Optional[float] = None,
    ) -> "Future[Dict[str, Any]]":
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        self.alive = False

    def heartbeat(self) -> Dict[str, Any]:
        """Liveness + load probe, polled by the scheduler's heartbeat
        loop from an executor thread.

        Returns a JSON-safe beat dict (``worker``/``alive``/
        ``jobs_done`` at minimum; remote workers add node identity and
        a telemetry delta).  Raising — any exception — counts as a
        missed beat and walks the worker's health toward ``suspect``
        and ``dead``.
        """
        if not self.alive:
            raise WorkerDied(f"worker {self.name} is dead")
        return {
            "worker": self.name,
            "alive": True,
            "jobs_done": self.jobs_done,
        }

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "alive": self.alive,
            "jobs_done": self.jobs_done,
        }


class LocalWorker(FleetWorker):
    """One in-process evaluation slot (thread- or process-backed)."""

    def __init__(
        self,
        name: str,
        context: EvaluationContext,
        mode: str = "thread",
        chaos: Optional[ChaosFn] = None,
    ) -> None:
        if mode not in ("thread", "process"):
            raise FleetError(f"worker mode must be thread|process, not {mode!r}")
        self.name = name
        self.mode = mode
        self.context = context
        self.chaos = chaos
        self.alive = True
        self.jobs_done = 0
        if mode == "thread":
            self._executor: Any = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"fleet-{name}"
            )
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=_child_init,
                initargs=(context.encoded_traces(),),
            )

    def submit(
        self,
        job: FleetJob,
        on_frame: Optional[FrameFn] = None,
        stream_interval: Optional[float] = None,
    ) -> "Future[Dict[str, Any]]":
        if not self.alive:
            failed: "Future[Dict[str, Any]]" = Future()
            failed.set_exception(WorkerDied(f"worker {self.name} is dead"))
            return failed
        if self.mode == "thread":
            fut = self._executor.submit(
                self._run_threaded, job, on_frame, stream_interval
            )
        else:
            # Streaming needs a same-process callback; process workers
            # run unstreamed (the scheduler documents this trade-off).
            fut = _translated(
                self._executor.submit(
                    _child_execute, job.spec.to_dict(), job.trace_context
                ),
                self._translate,
            )
        return fut

    def _run_threaded(
        self,
        job: FleetJob,
        on_frame: Optional[FrameFn],
        stream_interval: Optional[float],
    ) -> Dict[str, Any]:
        if self.chaos is not None:
            self.chaos(self.name, job)
        payload = self.context.execute(
            job.spec, on_frame=on_frame, stream_interval=stream_interval,
            trace_context=job.trace_context,
        )
        self.jobs_done += 1
        return payload

    def _translate(self, exc: BaseException) -> BaseException:
        if isinstance(exc, BrokenProcessPool):
            return WorkerDied(f"worker {self.name} process died: {exc}")
        if isinstance(exc, WorkerDied) or not isinstance(exc, Exception):
            return exc
        self.jobs_done += 1  # the child survived; the *job* failed
        return exc

    def kill(self) -> None:
        """Violently kill a process worker's child (chaos injection)."""
        if self.mode != "process":
            self.alive = False
            return
        try:
            pid = self._executor.submit(_child_pid).result(timeout=30)
            os.kill(pid, signal.SIGKILL)
        except (BrokenProcessPool, OSError, RuntimeError):
            pass
        self.alive = False

    def close(self) -> None:
        self.alive = False
        self._executor.shutdown(wait=False)


class RemoteWorker(FleetWorker):
    """A generator node serving replay jobs over the wire.

    Only ``kind="replay"`` jobs are routable here: the wire protocol's
    ``run_test`` carries a single workload-mode request, and the node
    picks its trace from its own repository by (device, mode).  Grid
    and search jobs stay on local workers.
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        retry: Optional[Any] = None,
        timeout: float = 60.0,
        heartbeat_timeout: float = 5.0,
    ) -> None:
        from ..distributed.host_node import RemoteEvaluationHost

        self.name = name
        self.alive = True
        self.jobs_done = 0
        self._addr = (host, port)
        self._heartbeat_timeout = float(heartbeat_timeout)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"fleet-{name}"
        )
        self._host = RemoteEvaluationHost(
            host, port, timeout=timeout, retry=retry
        )

    @property
    def node_id(self) -> str:
        return self._host.node_id

    def submit(
        self,
        job: FleetJob,
        on_frame: Optional[FrameFn] = None,
        stream_interval: Optional[float] = None,
    ) -> "Future[Dict[str, Any]]":
        if not self.alive:
            failed: "Future[Dict[str, Any]]" = Future()
            failed.set_exception(WorkerDied(f"worker {self.name} is dead"))
            return failed
        return self._executor.submit(
            self._run_remote, job, on_frame, stream_interval
        )

    def _run_remote(
        self,
        job: FleetJob,
        on_frame: Optional[FrameFn],
        stream_interval: Optional[float],
    ) -> Dict[str, Any]:
        spec = job.spec
        if spec.kind != "replay":
            raise FleetError(
                f"remote workers serve replay jobs only, not {spec.kind!r}"
            )
        if spec.mode is None:
            raise FleetError(
                "remote replay jobs need a workload mode "
                "(the node selects its trace by it)"
            )
        if spec.faults:
            raise FleetError("fault-injected jobs run on local workers only")
        request = TestRequest(
            mode=WorkloadMode.from_dict(spec.mode).at_load(spec.load),
            replay=ReplayConfig(
                sampling_cycle=spec.sampling_cycle,
                time_scale=spec.time_scale,
                seed=spec.seed,
                engine=spec.engine,
            ),
            label=f"fleet:{job.job_id}",
        )
        try:
            body = self._host.run_test_raw(
                request,
                request_id=job.request_id,
                on_progress=on_frame,
                stream_interval=stream_interval,
                trace_context=job.trace_context,
            )
        except (ProtocolError, OSError) as exc:
            self.alive = False
            raise WorkerDied(
                f"worker {self.name} (node {self.node_id}) lost: {exc}"
            ) from exc
        except TracerError:
            self.jobs_done += 1  # node is healthy; the job itself failed
            raise
        self.jobs_done += 1
        return body

    def heartbeat(self) -> Dict[str, Any]:
        """Probe the generator node over a *dedicated* connection.

        The worker's main connection (and its single-thread executor)
        may be busy streaming a replay, so heartbeats dial their own
        short-timeout, no-retry connection per probe — a hung or dead
        node fails the beat fast instead of queueing behind a job.
        """
        if not self.alive:
            raise WorkerDied(f"worker {self.name} is dead")
        from ..host.communicator import NO_RETRY, Communicator
        from ..host.protocol import KIND_ACK, KIND_HEARTBEAT, Frame

        comm = Communicator(
            self._addr[0], self._addr[1],
            timeout=self._heartbeat_timeout, retry=NO_RETRY,
        )
        try:
            reply = comm.request(Frame(KIND_HEARTBEAT, {}))
        finally:
            comm.close()
        if reply.kind != KIND_ACK:
            raise ProtocolError(
                f"node {self.node_id} heartbeat answered {reply.kind!r}: "
                f"{reply.body.get('message')}"
            )
        beat = {
            "worker": self.name,
            "alive": True,
            "jobs_done": self.jobs_done,
            "node": reply.body.get("node_id"),
            "tests_served": reply.body.get("tests_served"),
        }
        if reply.body.get("telemetry") is not None:
            beat["telemetry"] = reply.body["telemetry"]
        return beat

    def close(self) -> None:
        self.alive = False
        self._executor.shutdown(wait=False)
        self._host.close()


def local_worker_pool(
    n: int,
    context: EvaluationContext,
    mode: str = "thread",
    chaos: Optional[ChaosFn] = None,
    name_prefix: str = "local",
) -> List[LocalWorker]:
    """Build ``n`` local workers sharing one evaluation context."""
    if n < 1:
        raise FleetError(f"need at least one worker, got {n}")
    return [
        LocalWorker(f"{name_prefix}-{i}", context, mode=mode, chaos=chaos)
        for i in range(n)
    ]

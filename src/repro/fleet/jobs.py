"""Fleet job specifications, fingerprints, and canonical result bytes.

A :class:`JobSpec` is the *work order* a tenant submits: which kind of
evaluation (single replay, grid sweep, policy search), against which
trace and device, under which workload mode and replay configuration.
It is a frozen value object with a canonical JSON form, so two tenants
submitting "the same" job produce byte-identical spec dicts and hence
the same dedup cache key.

The dedup key is ``(trace fingerprint, config fingerprint)``: the trace
fingerprint hashes the trace *bytes* (two traces with the same label but
different contents never collide), the config fingerprint hashes the
spec's canonical dict.  :func:`canonical_result_bytes` is the other half
of the contract: it serialises a result payload with non-deterministic
keys stripped (wall-clock timings, node identity, telemetry snapshots),
so a cache hit can be byte-compared against a fresh execution.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from ..errors import FleetError
from ..faults.schedule import DiskFailFault, FaultSchedule
from ..trace.blktrace import Trace, dumps_packed

JOB_KINDS = ("replay", "grid", "search")

#: Result-payload keys that vary run-to-run without changing the
#: evaluation (wall clock, node identity); stripped before hashing or
#: byte-comparing results.  ``dtrace`` is the distributed-tracing span
#: list (wall-clock timestamps and random span ids) that rides home in
#: the payload — stripping it at every dict level keeps results
#: bit-identical with tracing on or off.
_NONDETERMINISTIC_KEYS = ("node_id", "elapsed_seconds", "dtrace")
#: ``engine_fallback`` is a diagnostic phrase describing *why* the
#: analytical kernel declined; its wording depends on which in-memory
#: trace representation the worker held, not on the evaluation.
_NONDETERMINISTIC_METADATA = ("telemetry", "interval_frames",
                              "engine_fallback")


def trace_fingerprint(trace: Any) -> str:
    """Content hash of a trace (its serialised bytes).

    Accepts both representations — a bunch-list :class:`Trace` and a
    columnar :class:`~repro.trace.packed.PackedTrace` — hashing the
    packed wire encoding either way, so the fingerprint depends only on
    the trace's *contents*, not on which form happened to be in memory.
    """
    if isinstance(trace, Trace):
        from ..trace.packed import PackedTrace

        trace = PackedTrace.from_trace(trace)
    return hashlib.sha256(dumps_packed(trace)).hexdigest()[:16]


def faults_to_dict(schedule: FaultSchedule) -> Dict[str, Any]:
    """Serialise the fault-schedule subset fleet jobs may carry.

    Timed disk failures plus the schedule seed cover the chaos-test
    surface; richer schedules stay an in-process API.
    """
    return {
        "seed": schedule.seed,
        "disk_failures": [
            {"at": f.at, "member": f.member} for f in schedule.disk_failures
        ],
    }


def faults_from_dict(payload: Dict[str, Any]) -> FaultSchedule:
    return FaultSchedule(
        seed=int(payload.get("seed", 0)),
        disk_failures=tuple(
            DiskFailFault(at=float(f["at"]), member=int(f["member"]))
            for f in payload.get("disk_failures", [])
        ),
    )


@dataclass(frozen=True)
class JobSpec:
    """One evaluation work order, canonically serialisable.

    ``kind`` selects the execution path: ``replay`` runs one
    :func:`~repro.replay.session.replay_trace`; ``grid`` runs
    :func:`~repro.workload.parallel.run_grid` over ``loads`` ×
    ``time_scales``; ``search`` runs
    :func:`~repro.workload.parallel.run_policy_search` over the same
    axes × ``policies`` (policy spec strings, e.g. ``"threshold:2.0"``).
    """

    kind: str = "replay"
    trace: str = ""
    device: str = "hdd-raid5"
    n_disks: int = 6
    #: Workload-mode dict (:meth:`~repro.config.WorkloadMode.to_dict`)
    #: — required when the job may land on a *remote* worker, whose
    #: generator node selects its trace by (device, mode); local
    #: workers resolve ``trace`` by label instead.
    mode: Optional[Dict[str, Any]] = None
    load: float = 1.0
    loads: Tuple[float, ...] = (1.0,)
    time_scales: Tuple[float, ...] = (1.0,)
    policies: Tuple[str, ...] = ()
    sampling_cycle: float = 60.0
    time_scale: float = 1.0
    seed: int = 0
    engine: str = "auto"
    faults: Optional[Dict[str, Any]] = field(default=None)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise FleetError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if not self.trace:
            raise FleetError("job spec needs a trace label")
        if self.kind == "search" and not self.policies:
            raise FleetError("search jobs need at least one policy spec")
        object.__setattr__(self, "loads", tuple(self.loads))
        object.__setattr__(self, "time_scales", tuple(self.time_scales))
        object.__setattr__(self, "policies", tuple(self.policies))

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe form (stable key order via sort at dump)."""
        return {
            "kind": self.kind,
            "trace": self.trace,
            "device": self.device,
            "n_disks": self.n_disks,
            "mode": dict(self.mode) if self.mode is not None else None,
            "load": self.load,
            "loads": list(self.loads),
            "time_scales": list(self.time_scales),
            "policies": list(self.policies),
            "sampling_cycle": self.sampling_cycle,
            "time_scale": self.time_scale,
            "seed": self.seed,
            "engine": self.engine,
            "faults": dict(self.faults) if self.faults is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FleetError(f"unknown job spec keys: {sorted(unknown)}")
        kwargs = dict(payload)
        for key in ("loads", "time_scales", "policies"):
            if key in kwargs and kwargs[key] is not None:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def fault_schedule(self) -> Optional[FaultSchedule]:
        return faults_from_dict(self.faults) if self.faults else None

    def config_fingerprint(self) -> str:
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def cache_key(self, trace_fp: str) -> str:
        """The dedup key: trace content × full configuration."""
        return f"{trace_fp}:{self.config_fingerprint()}"


def _strip(payload: Any) -> Any:
    """Drop non-deterministic keys from a result payload, recursively."""
    if isinstance(payload, dict):
        out = {}
        for key, value in payload.items():
            if key in _NONDETERMINISTIC_KEYS:
                continue
            if key == "metadata" and isinstance(value, dict):
                value = {
                    k: v for k, v in value.items()
                    if k not in _NONDETERMINISTIC_METADATA
                }
            out[key] = _strip(value)
        return out
    if isinstance(payload, list):
        return [_strip(v) for v in payload]
    return payload


def canonical_result_bytes(payload: Dict[str, Any]) -> bytes:
    """Deterministic byte form of a result payload.

    Sorted keys, compact separators, wall-clock / node-identity /
    telemetry keys stripped — two executions of the same
    :class:`JobSpec` serialise to *identical* bytes, which is what the
    dedup cache stores and what the chaos tests bit-compare against a
    serial replay.
    """
    return json.dumps(
        _strip(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


_job_sequence = itertools.count()


@dataclass
class FleetJob:
    """One admitted job: the spec plus its scheduling lifecycle.

    ``request_id`` equals ``job_id`` and is *stable across retry
    attempts*: a job reassigned to another worker after a worker death
    re-dispatches under the same id, so a generator node that already
    executed it serves its cached result instead of replaying
    (exactly-once execution on top of at-least-once dispatch).
    """

    job_id: str
    spec: JobSpec
    tenant: str
    priority: float = 0.0
    enqueue_tick: int = 0
    enqueue_seq: int = 0
    attempts: int = 0
    future: Any = None  # asyncio.Future, attached by the scheduler
    #: Distributed-tracing context (``trace_id``/``span_id`` dict) the
    #: *current attempt's* worker execution should parent its spans to.
    #: Set by the scheduler per dispatch; never fingerprinted — tracing
    #: must not change the dedup key.
    trace_context: Optional[Dict[str, Any]] = None
    #: Path of the flight-recorder dump taken when a worker died while
    #: holding this job (recorded into the job's ledger row).
    dump_path: str = ""

    @property
    def request_id(self) -> str:
        return self.job_id

    def effective_priority(self, tenant_priority: float,
                           aging_rate: float, tick: int) -> float:
        waited = max(0, tick - self.enqueue_tick)
        return tenant_priority + self.priority + aging_rate * waited


@dataclass(frozen=True)
class FleetResult:
    """What a submitter gets back: canonical bytes plus provenance."""

    job_id: str
    result_bytes: bytes
    cache_hit: bool
    attempts: int
    worker: str = ""

    @property
    def payload(self) -> Dict[str, Any]:
        return json.loads(self.result_bytes.decode("utf-8"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "result": self.payload,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "worker": self.worker,
        }

"""Replay-as-a-service: the multi-tenant evaluation fleet.

The paper's evaluation host serves one client; this package turns the
reproduction into a *service* that admits thousands of concurrent
replay / grid / search jobs from many tenants, shards them across a
pool of evaluation workers (in-process or remote generator nodes),
dedupes identical ``(trace, config)`` work against the run ledger's
result cache, and survives workers dying mid-job without ever executing
a job's side effects twice.  See ``docs/fleet.md``.
"""

from .jobs import (
    FleetJob,
    FleetResult,
    JobSpec,
    canonical_result_bytes,
    faults_from_dict,
    faults_to_dict,
    trace_fingerprint,
)
from .queue import FleetQueue, TenantSpec
from .scheduler import (
    HEALTH_DEAD,
    HEALTH_HEALTHY,
    HEALTH_SUSPECT,
    FleetScheduler,
    run_jobs,
)
from .service import FleetService
from .top import render_top, status_snapshot
from .workers import (
    EvaluationContext,
    FleetWorker,
    LocalWorker,
    RemoteWorker,
    device_factory,
    local_worker_pool,
)

__all__ = [
    "EvaluationContext",
    "FleetJob",
    "FleetQueue",
    "FleetResult",
    "FleetScheduler",
    "FleetService",
    "FleetWorker",
    "HEALTH_DEAD",
    "HEALTH_HEALTHY",
    "HEALTH_SUSPECT",
    "JobSpec",
    "LocalWorker",
    "RemoteWorker",
    "TenantSpec",
    "canonical_result_bytes",
    "device_factory",
    "faults_from_dict",
    "faults_to_dict",
    "local_worker_pool",
    "render_top",
    "run_jobs",
    "status_snapshot",
    "trace_fingerprint",
]

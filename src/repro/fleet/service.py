"""Replay-as-a-service: the fleet scheduler behind a TCP endpoint.

:class:`FleetService` runs a :class:`~repro.fleet.scheduler.FleetScheduler`
on a dedicated asyncio loop thread and serves the fleet frame kinds
(``fleet_submit`` / ``fleet_status`` / ``fleet_drain``) over the same
length-prefixed wire protocol the generator nodes speak, via
:class:`~repro.host.communicator.CommunicatorServer`.  Handler threads
bridge into the loop with ``asyncio.run_coroutine_threadsafe``; the
loop never blocks on the network.

Submissions are idempotent: each ``fleet_submit`` may carry a
``submit_id``, and a retried frame (the communicator retries over fresh
connections) maps back to the originally admitted job instead of
enqueueing a duplicate — the same exactly-once discipline the workers
apply one layer down.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Optional

from ..errors import FleetError, TracerError
from ..host.communicator import CommunicatorServer
from ..host.protocol import (
    Frame,
    KIND_ACK,
    KIND_ERROR,
    KIND_FLEET_DRAIN,
    KIND_FLEET_RESULT,
    KIND_FLEET_STATUS,
    KIND_FLEET_SUBMIT,
)
from .jobs import JobSpec
from .scheduler import FleetScheduler


class FleetService:
    """Own the loop thread, the scheduler, and the TCP server."""

    def __init__(
        self,
        scheduler: FleetScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: Optional[float] = None,
        result_timeout: float = 300.0,
    ) -> None:
        self.scheduler = scheduler
        self.result_timeout = result_timeout
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, daemon=True, name="fleet-loop"
        )
        self._submits: Dict[str, str] = {}  # submit_id -> job_id
        self._submits_lock = threading.Lock()
        self._server = CommunicatorServer(
            self._handle, host=host, port=port, idle_timeout=idle_timeout
        )

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self):
        return self._server.address

    @property
    def port(self) -> int:
        return self._server.port

    def start(self) -> "FleetService":
        self._loop_thread.start()
        self._call(self.scheduler.start())
        self._server.start()
        return self

    def close(self) -> None:
        self._server.stop()
        try:
            self._call(self.scheduler.stop())
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=5.0)
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, coro, timeout: Optional[float] = 60.0):
        """Run a coroutine on the scheduler loop from a handler thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout
        )

    # -- frame handling ------------------------------------------------------

    def _handle(self, frame: Frame) -> Optional[Frame]:
        try:
            if frame.kind == KIND_FLEET_SUBMIT:
                return self._handle_submit(frame.body)
            if frame.kind == KIND_FLEET_STATUS:
                return Frame(KIND_ACK, self._status())
            if frame.kind == KIND_FLEET_DRAIN:
                status = self._call(self.scheduler.drain(), timeout=None)
                return Frame(KIND_ACK, status)
        except TracerError as exc:
            return Frame(KIND_ERROR, {"message": str(exc)})
        return Frame(
            KIND_ERROR, {"message": f"unexpected frame {frame.kind!r}"}
        )

    def _status(self) -> Dict[str, Any]:
        async def _snap() -> Dict[str, Any]:
            return self.scheduler.status()

        return self._call(_snap())

    def _handle_submit(self, body: Dict[str, Any]) -> Frame:
        spec = JobSpec.from_dict(body.get("spec") or {})
        tenant = str(body.get("tenant") or "default")
        priority = float(body.get("priority", 0.0))
        submit_id = body.get("submit_id")
        job_id = self._admit(spec, tenant, priority, submit_id)
        if not body.get("wait", False):
            return Frame(KIND_ACK, {"job_id": job_id})
        result = self._await_result(job_id)
        return Frame(KIND_FLEET_RESULT, result.to_dict())

    def _admit(
        self,
        spec: JobSpec,
        tenant: str,
        priority: float,
        submit_id: Optional[str],
    ) -> str:
        with self._submits_lock:
            if submit_id is not None and submit_id in self._submits:
                return self._submits[submit_id]
            job = self._call(
                self.scheduler.submit(spec, tenant, priority=priority)
            )
            if submit_id is not None:
                self._submits[submit_id] = job.job_id
            return job.job_id

    def _await_result(self, job_id: str):
        job = self.scheduler.jobs.get(job_id)
        if job is None or job.future is None:
            raise FleetError(f"unknown job {job_id!r}")

        async def _wait():
            return await asyncio.wait_for(
                asyncio.shield(job.future), self.result_timeout
            )

        return self._call(_wait(), timeout=self.result_timeout + 30.0)

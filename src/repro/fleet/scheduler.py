"""The fleet scheduler: thousands of jobs, a handful of workers.

One asyncio event loop owns all scheduling state — admission, dedup,
placement, retry — so no lock guards it; workers execute on their own
executors and their completion re-enters the loop via
``asyncio.wrap_future``.  The flow per job:

1. **Admission** (:meth:`FleetScheduler.submit`).  The job's dedup key
   ``(trace fingerprint, config fingerprint)`` is checked against the
   run ledger's result cache (completed identical job → resolved
   immediately, ``cache_hit``) and against the in-flight leader table
   (identical job currently queued/running → attached as a *follower*
   that shares the leader's single execution).  Fresh work enters the
   multi-tenant queue.
2. **Placement.**  The dispatch loop pairs the queue's
   :meth:`~repro.fleet.queue.FleetQueue.select` choice with an idle
   worker; it sleeps only when no worker is idle or nothing is
   eligible, so the fleet is work-conserving.
3. **Completion.**  The payload is canonicalised
   (:func:`~repro.fleet.jobs.canonical_result_bytes`), stored in the
   ledger's result cache, recorded as a ``fleet/job:<id>`` provenance
   row for the leader *and every follower*, and all attached futures
   resolve with byte-identical results.
4. **Failure.**  :class:`~repro.errors.WorkerDied` removes the worker
   from the pool and requeues the job at its tenant's head under the
   *same* request id — a node that already executed it serves its
   cached result, so at-least-once dispatch stays exactly-once
   execution.  Other exceptions fail the job (and its followers): the
   evaluation itself was bad, not the worker.

PROGRESS frames and job lifecycle events fan out to any number of
watchers through :class:`~repro.telemetry.stream.FrameFanout`, whose
per-job sequence numbers make retried replays re-push nothing a watcher
already saw.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Callable, Dict, List, Optional

from ..errors import FleetError, WorkerDied
from ..host.ledger import RunLedger, new_run_id, record_fleet_job
from ..telemetry.registry import get_registry
from ..telemetry.stream import FrameFanout
from .jobs import FleetJob, FleetResult, JobSpec, canonical_result_bytes
from .queue import FleetQueue, TenantSpec
from .workers import EvaluationContext, FleetWorker


class FleetScheduler:
    """Admits, dedupes, places, retries, and records evaluation jobs."""

    def __init__(
        self,
        workers: List[FleetWorker],
        context: Optional[EvaluationContext] = None,
        ledger: Optional[RunLedger] = None,
        aging_rate: float = 0.1,
        default_quota: int = 4,
        max_attempts: int = 3,
    ) -> None:
        if not workers:
            raise FleetError("a fleet needs at least one worker")
        if max_attempts < 1:
            raise FleetError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue = FleetQueue(
            aging_rate=aging_rate, default_quota=default_quota
        )
        self.context = context
        self.ledger = ledger
        self.max_attempts = max_attempts
        self.workers: List[FleetWorker] = list(workers)
        self._idle: List[FleetWorker] = list(workers)
        self._dead: List[FleetWorker] = []
        self.jobs: Dict[str, FleetJob] = {}
        self._leaders: Dict[str, FleetJob] = {}
        self._followers: Dict[str, List[FleetJob]] = {}
        self._keys: Dict[str, str] = {}  # job_id -> cache key
        self._stream: Dict[str, Optional[float]] = {}
        self._job_fanouts: Dict[str, FrameFanout] = {}
        self._events = FrameFanout()
        self._event_seq = itertools.count()
        self._job_seq = itertools.count()
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._running_jobs: Dict[str, asyncio.Task] = {}
        self._draining = False
        self.completed = 0
        self.failed = 0
        self.executions_started = 0
        self.cache_hits = 0          # served from the ledger result cache
        self.inflight_hits = 0       # attached to an in-flight leader
        self.worker_deaths = 0
        self.retries = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "FleetScheduler":
        if self._dispatcher is not None:
            raise FleetError("scheduler already started")
        self._wake = asyncio.Event()
        self._dispatcher = asyncio.get_event_loop().create_task(
            self._dispatch_loop()
        )
        return self

    async def stop(self) -> None:
        """Cancel outstanding work and shut the workers down."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._running_jobs.values()):
            task.cancel()
        for worker in self.workers + self._dead:
            worker.close()

    async def drain(self) -> Dict[str, Any]:
        """Stop admitting, finish everything admitted, return status."""
        self._draining = True
        pending = [
            j.future for j in self.jobs.values()
            if j.future is not None and not j.future.done()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        return self.status()

    def register_tenant(self, spec: TenantSpec) -> None:
        self.queue.register(spec)

    # -- admission -----------------------------------------------------------

    def _fingerprint(self, spec: JobSpec) -> str:
        """Trace fingerprint for dedup: content hash when the trace is
        local, label hash otherwise (remote-only fleets trust labels)."""
        if self.context is not None:
            try:
                return self.context.trace_fp(spec.trace)
            except FleetError:
                pass
        import hashlib

        return hashlib.sha256(
            f"label:{spec.trace}".encode("utf-8")
        ).hexdigest()[:16]

    async def submit(
        self,
        spec: JobSpec,
        tenant: str,
        priority: float = 0.0,
        stream_interval: Optional[float] = None,
    ) -> FleetJob:
        """Admit one job; returns it with an awaitable ``future``."""
        if self._draining:
            raise FleetError("fleet is draining; not admitting jobs")
        if self._wake is None:
            raise FleetError("scheduler not started")
        loop = asyncio.get_event_loop()
        job = FleetJob(
            job_id=f"j{next(self._job_seq):06d}-{new_run_id()[:8]}",
            spec=spec,
            tenant=tenant,
            priority=priority,
        )
        job.future = loop.create_future()
        self.jobs[job.job_id] = job
        key = spec.cache_key(self._fingerprint(spec))
        self._keys[job.job_id] = key
        self._stream[job.job_id] = stream_interval
        self._emit("admitted", job)

        cached = self.ledger.cache_get(key) if self.ledger is not None else None
        if cached is not None:
            self.cache_hits += 1
            result = FleetResult(
                job_id=job.job_id,
                result_bytes=cached["result_json"].encode("utf-8"),
                cache_hit=True,
                attempts=0,
                worker=f"cache:{cached['run_id']}",
            )
            self._record(job, result)
            self._resolve(job, result)
            self._emit("cache_hit", job)
            self._update_gauges()
            return job

        leader = self._leaders.get(key)
        if leader is not None:
            self.inflight_hits += 1
            self._followers.setdefault(key, []).append(job)
            self._emit("attached", job, leader=leader.job_id)
            self._update_gauges()
            return job

        self._leaders[key] = job
        self.queue.admit(job)
        self._emit("queued", job)
        self._update_gauges()
        self._wake.set()
        return job

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while True:
            while self._idle:
                job = self.queue.select()
                if job is None:
                    break
                worker = self._idle.pop(0)
                task = asyncio.get_event_loop().create_task(
                    self._run_job(job, worker)
                )
                self._running_jobs[job.job_id] = task
            self._wake.clear()
            await self._wake.wait()

    async def _run_job(self, job: FleetJob, worker: FleetWorker) -> None:
        job.attempts += 1
        self.executions_started += 1
        self._emit("dispatched", job, worker=worker.name,
                   attempt=job.attempts)
        loop = asyncio.get_event_loop()
        interval = self._stream.get(job.job_id)
        on_frame = None
        if interval is not None and interval > 0:
            frame_seq = itertools.count()

            def on_frame(frame: Dict[str, Any],
                         _job_id: str = job.job_id) -> None:
                # Worker-thread side: marshal into the loop; the per-job
                # fanout's sequence numbers drop anything a previous
                # (died mid-replay) attempt already delivered.
                seq = next(frame_seq)
                loop.call_soon_threadsafe(
                    self._deliver_frame, _job_id, seq, frame
                )

        try:
            payload = await asyncio.wrap_future(
                worker.submit(job, on_frame=on_frame, stream_interval=interval)
            )
        except asyncio.CancelledError:
            raise
        except WorkerDied as exc:
            self._on_worker_died(job, worker, exc)
            return
        except Exception as exc:
            self._on_job_failed(job, worker, exc)
            return
        finally:
            self._running_jobs.pop(job.job_id, None)
        self._on_job_done(job, worker, payload)

    def _on_worker_died(self, job: FleetJob, worker: FleetWorker,
                        exc: WorkerDied) -> None:
        self.worker_deaths += 1
        worker.alive = False
        if worker in self.workers:
            self.workers.remove(worker)
            self._dead.append(worker)
        if worker in self._idle:  # pragma: no cover - defensive
            self._idle.remove(worker)
        self._emit("worker_died", job, worker=worker.name)
        if job.attempts >= self.max_attempts or not self.workers:
            self.queue.release(job)
            self._fail(job, FleetError(
                f"job {job.job_id} lost its worker {job.attempts} time(s), "
                f"giving up: {exc}"
            ))
        else:
            self.retries += 1
            self.queue.requeue_front(job)
            self._emit("requeued", job, attempt=job.attempts)
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()

    def _on_job_failed(self, job: FleetJob, worker: FleetWorker,
                       exc: Exception) -> None:
        self.queue.release(job)
        if worker.alive and worker in self.workers:
            self._idle.append(worker)
        self._fail(job, exc)
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()

    def _on_job_done(self, job: FleetJob, worker: FleetWorker,
                     payload: Dict[str, Any]) -> None:
        self.queue.release(job)
        if worker.alive and worker in self.workers:
            self._idle.append(worker)
        key = self._keys[job.job_id]
        result_bytes = canonical_result_bytes(payload)
        if self.ledger is not None:
            self.ledger.cache_put(
                key, result_bytes.decode("utf-8"), job.job_id
            )
        result = FleetResult(
            job_id=job.job_id,
            result_bytes=result_bytes,
            cache_hit=False,
            attempts=job.attempts,
            worker=worker.name,
        )
        self._record(job, result)
        self._resolve(job, result)
        self._emit("completed", job, worker=worker.name,
                   attempts=job.attempts)
        # Followers share the leader's bytes, with cache-hit provenance.
        for follower in self._followers.pop(key, []):
            fresult = FleetResult(
                job_id=follower.job_id,
                result_bytes=result_bytes,
                cache_hit=True,
                attempts=0,
                worker=f"leader:{job.job_id}",
            )
            self._record(follower, fresult)
            self._resolve(follower, fresult)
            self._emit("cache_hit", follower, leader=job.job_id)
        self._leaders.pop(key, None)
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()

    def _fail(self, job: FleetJob, exc: Exception) -> None:
        self.failed += 1
        if job.future is not None and not job.future.done():
            job.future.set_exception(exc)
        self._emit("failed", job, error=str(exc))
        key = self._keys.get(job.job_id)
        if key is not None and self._leaders.get(key) is job:
            self._leaders.pop(key, None)
            for follower in self._followers.pop(key, []):
                self.failed += 1
                if follower.future is not None and not follower.future.done():
                    follower.future.set_exception(exc)
                self._emit("failed", follower, error=str(exc))

    def _resolve(self, job: FleetJob, result: FleetResult) -> None:
        self.completed += 1
        if job.future is not None and not job.future.done():
            job.future.set_result(result)

    # -- provenance / observability ------------------------------------------

    def _record(self, job: FleetJob, result: FleetResult) -> None:
        if self.ledger is None:
            return
        record_fleet_job(
            self.ledger,
            job_id=job.job_id,
            tenant=job.tenant,
            spec_dict=job.spec.to_dict(),
            result_dict=self._summary_payload(result),
            cache_hit=result.cache_hit,
            attempts=result.attempts,
            worker=result.worker,
        )

    @staticmethod
    def _summary_payload(result: FleetResult) -> Dict[str, Any]:
        payload = result.payload
        # Grid/search payloads have no flat metrics at top level; the
        # ledger summary keys simply read as zeros for them.
        return payload if isinstance(payload, dict) else {}

    def watch(self, callback: Callable[[Dict[str, Any]], None],
              job_id: Optional[str] = None) -> Callable[[], None]:
        """Attach a watcher; returns its detach function.

        Without ``job_id`` the watcher sees every lifecycle event; with
        one, it sees that job's streamed PROGRESS frames.
        """
        if job_id is None:
            return self._events.add(callback)
        fanout = self._job_fanouts.setdefault(job_id, FrameFanout())
        return fanout.add(callback)

    def _deliver_frame(self, job_id: str, seq: int,
                       frame: Dict[str, Any]) -> None:
        fanout = self._job_fanouts.get(job_id)
        if fanout is not None:
            fanout.deliver(seq, frame)

    def _emit(self, event: str, job: FleetJob, **extra: Any) -> None:
        if len(self._events) == 0:
            next(self._event_seq)  # keep the sequence monotone anyway
            return
        body = {"event": event, "job_id": job.job_id, "tenant": job.tenant}
        body.update(extra)
        self._events.deliver(next(self._event_seq), body)

    def _update_gauges(self) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.gauge("fleet_queue_depth").set(float(self.queue.depth()))
        registry.gauge("fleet_workers_alive").set(float(len(self.workers)))
        served = self.completed + self.failed
        hits = self.cache_hits + self.inflight_hits
        if served:
            registry.gauge("fleet_dedup_hit_rate").set(hits / served)
        for tenant in self.queue.tenants:
            registry.gauge("fleet_in_flight", tenant=tenant).set(
                float(self.queue.in_flight(tenant))
            )

    def status(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the whole fleet."""
        return {
            "draining": self._draining,
            "queue": self.queue.stats(),
            "workers": [w.describe() for w in self.workers],
            "dead_workers": [w.describe() for w in self._dead],
            "jobs": {
                "submitted": len(self.jobs),
                "completed": self.completed,
                "failed": self.failed,
                "executions_started": self.executions_started,
                "retries": self.retries,
                "worker_deaths": self.worker_deaths,
            },
            "dedup": {
                "cache_hits": self.cache_hits,
                "inflight_hits": self.inflight_hits,
                "hit_rate": (
                    (self.cache_hits + self.inflight_hits)
                    / max(1, self.completed + self.failed)
                ),
            },
        }


async def run_jobs(
    scheduler: FleetScheduler,
    submissions: List[Dict[str, Any]],
) -> List[FleetResult]:
    """Submit a batch (``{"spec", "tenant", "priority"?}`` dicts) and
    await every result, in submission order."""
    jobs = []
    for sub in submissions:
        jobs.append(
            await scheduler.submit(
                sub["spec"], sub["tenant"],
                priority=float(sub.get("priority", 0.0)),
            )
        )
    return list(await asyncio.gather(*(j.future for j in jobs)))

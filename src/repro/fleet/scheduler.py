"""The fleet scheduler: thousands of jobs, a handful of workers.

One asyncio event loop owns all scheduling state — admission, dedup,
placement, retry — so no lock guards it; workers execute on their own
executors and their completion re-enters the loop via
``asyncio.wrap_future``.  The flow per job:

1. **Admission** (:meth:`FleetScheduler.submit`).  The job's dedup key
   ``(trace fingerprint, config fingerprint)`` is checked against the
   run ledger's result cache (completed identical job → resolved
   immediately, ``cache_hit``) and against the in-flight leader table
   (identical job currently queued/running → attached as a *follower*
   that shares the leader's single execution).  Fresh work enters the
   multi-tenant queue.
2. **Placement.**  The dispatch loop pairs the queue's
   :meth:`~repro.fleet.queue.FleetQueue.select` choice with an idle
   worker; it sleeps only when no worker is idle or nothing is
   eligible, so the fleet is work-conserving.
3. **Completion.**  The payload is canonicalised
   (:func:`~repro.fleet.jobs.canonical_result_bytes`), stored in the
   ledger's result cache, recorded as a ``fleet/job:<id>`` provenance
   row for the leader *and every follower*, and all attached futures
   resolve with byte-identical results.
4. **Failure.**  :class:`~repro.errors.WorkerDied` removes the worker
   from the pool and requeues the job at its tenant's head under the
   *same* request id — a node that already executed it serves its
   cached result, so at-least-once dispatch stays exactly-once
   execution.  Other exceptions fail the job (and its followers): the
   evaluation itself was bad, not the worker.

PROGRESS frames and job lifecycle events fan out to any number of
watchers through :class:`~repro.telemetry.stream.FrameFanout`, whose
per-job sequence numbers make retried replays re-push nothing a watcher
already saw.
"""

from __future__ import annotations

import asyncio
import itertools
import time as _time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import FleetError, WorkerDied
from ..host.ledger import RunLedger, new_run_id, record_fleet_job
from ..telemetry import dtrace
from ..telemetry.flightrec import autodump, get_flight_recorder
from ..telemetry.registry import get_registry
from ..telemetry.stream import FrameFanout
from .jobs import FleetJob, FleetResult, JobSpec, canonical_result_bytes
from .queue import FleetQueue, TenantSpec
from .workers import EvaluationContext, FleetWorker

#: Worker health states the heartbeat plane walks through.  A worker is
#: ``healthy`` while it answers beats, ``suspect`` after
#: ``suspect_after`` consecutive misses (no new dispatches; still
#: counted alive), and ``dead`` after ``dead_after`` misses (removed
#: from the pool, flight recorder dumped).  A successful beat from a
#: suspect worker restores it to ``healthy`` and to the idle pool.
HEALTH_HEALTHY = "healthy"
HEALTH_SUSPECT = "suspect"
HEALTH_DEAD = "dead"

#: Completed replay samples kept for the rolling IOPS / IOPS-per-watt
#: series ``tracer fleet top`` displays.
ROLLING_WINDOW = 64


class FleetScheduler:
    """Admits, dedupes, places, retries, and records evaluation jobs."""

    def __init__(
        self,
        workers: List[FleetWorker],
        context: Optional[EvaluationContext] = None,
        ledger: Optional[RunLedger] = None,
        aging_rate: float = 0.1,
        default_quota: int = 4,
        max_attempts: int = 3,
        tracing: Optional[bool] = None,
        heartbeat_interval: float = 0.0,
        heartbeat_timeout: float = 5.0,
        suspect_after: int = 2,
        dead_after: int = 4,
    ) -> None:
        if not workers:
            raise FleetError("a fleet needs at least one worker")
        if max_attempts < 1:
            raise FleetError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0 < suspect_after <= dead_after:
            raise FleetError(
                f"need 0 < suspect_after <= dead_after, got "
                f"{suspect_after}/{dead_after}"
            )
        self.queue = FleetQueue(
            aging_rate=aging_rate, default_quota=default_quota
        )
        self.context = context
        self.ledger = ledger
        self.max_attempts = max_attempts
        self.workers: List[FleetWorker] = list(workers)
        self._idle: List[FleetWorker] = list(workers)
        self._dead: List[FleetWorker] = []
        self.jobs: Dict[str, FleetJob] = {}
        self._leaders: Dict[str, FleetJob] = {}
        self._followers: Dict[str, List[FleetJob]] = {}
        self._keys: Dict[str, str] = {}  # job_id -> cache key
        self._stream: Dict[str, Optional[float]] = {}
        self._job_fanouts: Dict[str, FrameFanout] = {}
        self._events = FrameFanout()
        self._event_seq = itertools.count()
        self._job_seq = itertools.count()
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._running_jobs: Dict[str, asyncio.Task] = {}
        self._draining = False
        self.completed = 0
        self.failed = 0
        self.executions_started = 0
        self.cache_hits = 0          # served from the ledger result cache
        self.inflight_hits = 0       # attached to an in-flight leader
        self.worker_deaths = 0
        self.retries = 0
        # -- distributed tracing (None → TRACER_DTRACE decides).  Off
        # by default: no root spans are created, job.trace_context stays
        # None, and workers/sessions never enter a tracing scope — the
        # zero-cost-when-disabled invariant extends across the fleet.
        self._tracing = dtrace.env_enabled() if tracing is None else bool(
            tracing
        )
        #: Finished span dicts per job, kept after flush so tests and
        #: callers without a ledger can still read a job's tree.
        self.job_spans: Dict[str, List[Dict[str, Any]]] = {}
        self._root_spans: Dict[str, dtrace.SpanHandle] = {}
        self._open_spans: Dict[str, dtrace.SpanHandle] = {}
        # -- heartbeat metrics plane (interval 0.0 → off, zero cost).
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.suspect_after = int(suspect_after)
        self.dead_after = int(dead_after)
        self.heartbeat_deaths = 0
        self.health: Dict[str, str] = {
            w.name: HEALTH_HEALTHY for w in workers
        }
        self._misses: Dict[str, int] = {}
        self._beats: Dict[str, int] = {}
        self._quarantined: List[FleetWorker] = []
        self._busy: Dict[str, str] = {}  # worker name -> job id
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._rolling: Deque[Tuple[float, float]] = deque(
            maxlen=ROLLING_WINDOW
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "FleetScheduler":
        if self._dispatcher is not None:
            raise FleetError("scheduler already started")
        self._wake = asyncio.Event()
        self._dispatcher = asyncio.get_event_loop().create_task(
            self._dispatch_loop()
        )
        if self.heartbeat_interval > 0:
            self._heartbeat_task = asyncio.get_event_loop().create_task(
                self._heartbeat_loop()
            )
        return self

    async def stop(self) -> None:
        """Cancel outstanding work and shut the workers down."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._running_jobs.values()):
            task.cancel()
        for worker in self.workers + self._dead:
            worker.close()

    async def drain(self) -> Dict[str, Any]:
        """Stop admitting, finish everything admitted, return status."""
        self._draining = True
        pending = [
            j.future for j in self.jobs.values()
            if j.future is not None and not j.future.done()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        return self.status()

    def register_tenant(self, spec: TenantSpec) -> None:
        self.queue.register(spec)

    # -- admission -----------------------------------------------------------

    def _fingerprint(self, spec: JobSpec) -> str:
        """Trace fingerprint for dedup: content hash when the trace is
        local, label hash otherwise (remote-only fleets trust labels)."""
        if self.context is not None:
            try:
                return self.context.trace_fp(spec.trace)
            except FleetError:
                pass
        import hashlib

        return hashlib.sha256(
            f"label:{spec.trace}".encode("utf-8")
        ).hexdigest()[:16]

    async def submit(
        self,
        spec: JobSpec,
        tenant: str,
        priority: float = 0.0,
        stream_interval: Optional[float] = None,
    ) -> FleetJob:
        """Admit one job; returns it with an awaitable ``future``."""
        if self._draining:
            raise FleetError("fleet is draining; not admitting jobs")
        if self._wake is None:
            raise FleetError("scheduler not started")
        loop = asyncio.get_event_loop()
        job = FleetJob(
            job_id=f"j{next(self._job_seq):06d}-{new_run_id()[:8]}",
            spec=spec,
            tenant=tenant,
            priority=priority,
        )
        job.future = loop.create_future()
        self.jobs[job.job_id] = job
        key = spec.cache_key(self._fingerprint(spec))
        self._keys[job.job_id] = key
        self._stream[job.job_id] = stream_interval
        if self._tracing:
            # Root of the job's distributed trace: submit → (queue-wait
            # → dispatch attempts → worker/session spans) → cache-write.
            root = dtrace.SpanHandle.begin(
                dtrace.SPAN_JOB, job_id=job.job_id, tenant=tenant,
                kind=spec.kind,
            )
            self._root_spans[job.job_id] = root
            self.job_spans[job.job_id] = []
        self._emit("admitted", job)

        cached = self.ledger.cache_get(key) if self.ledger is not None else None
        if cached is not None:
            self.cache_hits += 1
            result = FleetResult(
                job_id=job.job_id,
                result_bytes=cached["result_json"].encode("utf-8"),
                cache_hit=True,
                attempts=0,
                worker=f"cache:{cached['run_id']}",
            )
            self._trace_child_span(
                job, dtrace.SPAN_CACHE_HIT, source=cached["run_id"]
            )
            self._record(job, result)
            self._resolve(job, result)
            self._trace_finish(job, "ok")
            self._emit("cache_hit", job)
            self._update_gauges()
            return job

        leader = self._leaders.get(key)
        if leader is not None:
            self.inflight_hits += 1
            self._followers.setdefault(key, []).append(job)
            self._emit("attached", job, leader=leader.job_id)
            self._update_gauges()
            return job

        self._leaders[key] = job
        self.queue.admit(job)
        self._trace_open_span(job, dtrace.SPAN_QUEUE_WAIT)
        self._emit("queued", job)
        self._update_gauges()
        self._wake.set()
        return job

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while True:
            while self._idle:
                job = self.queue.select()
                if job is None:
                    break
                worker = self._idle.pop(0)
                task = asyncio.get_event_loop().create_task(
                    self._run_job(job, worker)
                )
                self._running_jobs[job.job_id] = task
            self._wake.clear()
            await self._wake.wait()

    async def _run_job(self, job: FleetJob, worker: FleetWorker) -> None:
        job.attempts += 1
        self.executions_started += 1
        self._busy[worker.name] = job.job_id
        if self._tracing:
            # The queue-wait span ends at dispatch; the attempt span is
            # the context the worker executes under, so retries show up
            # as sibling attempt spans under the same root.
            self._trace_close_open(job, "ok")
            attempt = self._trace_open_span(
                job, dtrace.SPAN_ATTEMPT,
                worker=worker.name, attempt=job.attempts,
            )
            if attempt is not None:
                job.trace_context = attempt.context().to_dict()
        self._emit("dispatched", job, worker=worker.name,
                   attempt=job.attempts)
        loop = asyncio.get_event_loop()
        interval = self._stream.get(job.job_id)
        on_frame = None
        if interval is not None and interval > 0:
            frame_seq = itertools.count()

            def on_frame(frame: Dict[str, Any],
                         _job_id: str = job.job_id) -> None:
                # Worker-thread side: marshal into the loop; the per-job
                # fanout's sequence numbers drop anything a previous
                # (died mid-replay) attempt already delivered.
                seq = next(frame_seq)
                loop.call_soon_threadsafe(
                    self._deliver_frame, _job_id, seq, frame
                )

        try:
            payload = await asyncio.wrap_future(
                worker.submit(job, on_frame=on_frame, stream_interval=interval)
            )
        except asyncio.CancelledError:
            raise
        except WorkerDied as exc:
            self._on_worker_died(job, worker, exc)
            return
        except Exception as exc:
            self._on_job_failed(job, worker, exc)
            return
        finally:
            self._running_jobs.pop(job.job_id, None)
        self._on_job_done(job, worker, payload)

    def _on_worker_died(self, job: FleetJob, worker: FleetWorker,
                        exc: WorkerDied) -> None:
        self.worker_deaths += 1
        worker.alive = False
        self._busy.pop(worker.name, None)
        self.health[worker.name] = HEALTH_DEAD
        if worker in self.workers:
            self.workers.remove(worker)
            self._dead.append(worker)
        if worker in self._idle:  # pragma: no cover - defensive
            self._idle.remove(worker)
        if worker in self._quarantined:
            self._quarantined.remove(worker)
        # Black box: note the death in the flight recorder and, when a
        # dump path is armed, persist the ring buffer; the dump path
        # lands in the job's ledger row (satellite: autodump on death).
        get_flight_recorder().record(
            "worker_died", 0.0,
            worker=worker.name, job=job.job_id, error=str(exc),
        )
        dump = autodump("worker_died")
        if dump is not None:
            job.dump_path = str(dump)
        self._trace_close_open(job, "worker_died", error=str(exc))
        self._emit("worker_died", job, worker=worker.name)
        if job.attempts >= self.max_attempts or not self.workers:
            self.queue.release(job)
            self._fail(job, FleetError(
                f"job {job.job_id} lost its worker {job.attempts} time(s), "
                f"giving up: {exc}"
            ))
        else:
            self.retries += 1
            self.queue.requeue_front(job)
            self._trace_open_span(job, dtrace.SPAN_QUEUE_WAIT,
                                  retry_of_attempt=job.attempts)
            self._emit("requeued", job, attempt=job.attempts)
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()

    def _return_worker(self, worker: FleetWorker) -> None:
        """Put a finished worker back into dispatch rotation — unless
        the heartbeat plane has it quarantined (suspect workers take no
        new jobs until a beat restores them)."""
        self._busy.pop(worker.name, None)
        if not worker.alive or worker not in self.workers:
            return
        if self.health.get(worker.name, HEALTH_HEALTHY) == HEALTH_HEALTHY:
            if worker not in self._idle:
                self._idle.append(worker)
        elif worker not in self._quarantined:
            self._quarantined.append(worker)

    def _on_job_failed(self, job: FleetJob, worker: FleetWorker,
                       exc: Exception) -> None:
        self.queue.release(job)
        self._return_worker(worker)
        self._trace_close_open(job, "error", error=str(exc))
        self._fail(job, exc)
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()

    def _on_job_done(self, job: FleetJob, worker: FleetWorker,
                     payload: Dict[str, Any]) -> None:
        self.queue.release(job)
        self._return_worker(worker)
        key = self._keys[job.job_id]
        if self._tracing:
            self._trace_close_open(job, "ok")
            spans = self.job_spans.get(job.job_id)
            if spans is not None:
                # Worker-side spans (worker/node execute, session
                # phases) ride the *raw* payload home; collect them
                # before canonicalisation strips the carrier.
                spans.extend(self._payload_spans(payload))
        if isinstance(payload, dict) and "iops" in payload:
            self._rolling.append(
                (
                    float(payload.get("iops") or 0.0),
                    float(payload.get("mean_watts") or 0.0),
                )
            )
        result_bytes = canonical_result_bytes(payload)
        if self.ledger is not None:
            cache_span = None
            if self._tracing:
                root = self._root_spans.get(job.job_id)
                if root is not None:
                    cache_span = dtrace.SpanHandle.begin(
                        dtrace.SPAN_CACHE_WRITE, context=root.context()
                    )
            self.ledger.cache_put(
                key, result_bytes.decode("utf-8"), job.job_id
            )
            if cache_span is not None:
                self.job_spans[job.job_id].append(
                    cache_span.finish().to_dict()
                )
        result = FleetResult(
            job_id=job.job_id,
            result_bytes=result_bytes,
            cache_hit=False,
            attempts=job.attempts,
            worker=worker.name,
        )
        self._record(job, result)
        self._resolve(job, result)
        self._trace_finish(job, "ok")
        self._emit("completed", job, worker=worker.name,
                   attempts=job.attempts)
        # Followers share the leader's bytes, with cache-hit provenance.
        for follower in self._followers.pop(key, []):
            fresult = FleetResult(
                job_id=follower.job_id,
                result_bytes=result_bytes,
                cache_hit=True,
                attempts=0,
                worker=f"leader:{job.job_id}",
            )
            self._trace_child_span(
                follower, dtrace.SPAN_CACHE_HIT, leader=job.job_id
            )
            self._record(follower, fresult)
            self._resolve(follower, fresult)
            self._trace_finish(follower, "ok")
            self._emit("cache_hit", follower, leader=job.job_id)
        self._leaders.pop(key, None)
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()

    def _fail(self, job: FleetJob, exc: Exception) -> None:
        self.failed += 1
        if job.future is not None and not job.future.done():
            job.future.set_exception(exc)
        self._trace_finish(job, "failed")
        self._emit("failed", job, error=str(exc))
        key = self._keys.get(job.job_id)
        if key is not None and self._leaders.get(key) is job:
            self._leaders.pop(key, None)
            for follower in self._followers.pop(key, []):
                self.failed += 1
                if follower.future is not None and not follower.future.done():
                    follower.future.set_exception(exc)
                self._trace_finish(follower, "failed")
                self._emit("failed", follower, error=str(exc))

    def _resolve(self, job: FleetJob, result: FleetResult) -> None:
        self.completed += 1
        if job.future is not None and not job.future.done():
            job.future.set_result(result)

    # -- distributed tracing -------------------------------------------------

    def _trace_open_span(
        self, job: FleetJob, name: str, **attrs: Any
    ) -> Optional[dtrace.SpanHandle]:
        """Open a child span under the job's root; at most one open
        span per job (queue-wait or the current attempt)."""
        if not self._tracing:
            return None
        root = self._root_spans.get(job.job_id)
        if root is None:
            return None
        handle = dtrace.SpanHandle.begin(name, context=root.context(),
                                         **attrs)
        self._open_spans[job.job_id] = handle
        return handle

    def _trace_close_open(self, job: FleetJob, status: str,
                          **attrs: Any) -> None:
        handle = self._open_spans.pop(job.job_id, None)
        if handle is not None:
            self.job_spans[job.job_id].append(
                handle.finish(status=status, **attrs).to_dict()
            )

    def _trace_child_span(self, job: FleetJob, name: str,
                          **attrs: Any) -> None:
        """Record an instantaneous child span (cache hit provenance)."""
        if not self._tracing:
            return
        root = self._root_spans.get(job.job_id)
        if root is None:
            return
        handle = dtrace.SpanHandle.begin(name, context=root.context(),
                                         **attrs)
        self.job_spans[job.job_id].append(handle.finish().to_dict())

    def _trace_finish(self, job: FleetJob, status: str) -> None:
        """Seal the job's root span and flush its tree to the ledger."""
        if not self._tracing:
            return
        self._trace_close_open(job, status)
        root = self._root_spans.pop(job.job_id, None)
        if root is None:
            return
        spans = self.job_spans.get(job.job_id, [])
        spans.insert(0, root.finish(status=status).to_dict())
        if self.ledger is not None:
            self.ledger.spans_put(job.job_id, spans)

    @staticmethod
    def _payload_spans(payload: Any) -> List[Dict[str, Any]]:
        """Extract worker-side span dicts from a raw result payload."""
        if not isinstance(payload, dict):
            return []
        spans = payload.get("dtrace")
        if spans is None:
            spans = (payload.get("metadata") or {}).get("dtrace")
        return list(spans) if spans else []

    # -- heartbeat metrics plane ---------------------------------------------

    async def _heartbeat_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            await self._heartbeat_round(loop)

    async def _heartbeat_round(self, loop: asyncio.AbstractEventLoop) -> None:
        """Probe every live worker once; aggregate into fleet metrics.

        Probes run on executor threads (remote beats do a TCP
        round-trip) with a timeout, so one hung worker cannot stall the
        round — it just misses its beat and walks toward ``suspect``.
        """
        now = _time.time()
        rows: List[Dict[str, Any]] = []
        registry = get_registry()
        for worker in list(self.workers):
            name = worker.name
            beat: Optional[Dict[str, Any]] = None
            try:
                beat = await asyncio.wait_for(
                    loop.run_in_executor(None, worker.heartbeat),
                    timeout=self.heartbeat_timeout,
                )
            except asyncio.CancelledError:
                raise
            except Exception:
                beat = None
            if beat is None:
                self._on_heartbeat_missed(worker)
                continue
            self._beats[name] = self._beats.get(name, 0) + 1
            self._misses[name] = 0
            if self.health.get(name) == HEALTH_SUSPECT:
                self._recover_worker(worker)
            if registry.enabled and beat.get("telemetry"):
                # Remote workers ship per-beat telemetry *deltas*;
                # merging them makes the scheduler's registry read as
                # the whole fleet's (satellite: MetricsRegistry.merge).
                registry.merge(beat["telemetry"])
            rows.append({"created": now, "scope": name,
                         "metric": "worker.jobs_done",
                         "value": float(beat.get("jobs_done") or 0)})
            rows.append({"created": now, "scope": name,
                         "metric": "worker.busy",
                         "value": 1.0 if name in self._busy else 0.0})
            rows.append({"created": now, "scope": name,
                         "metric": "worker.beats",
                         "value": float(self._beats[name])})
        served = self.completed + self.failed
        hits = self.cache_hits + self.inflight_hits
        fleet_rows = {
            "queue_depth": float(self.queue.depth()),
            "workers_alive": float(len(self.workers)),
            "workers_suspect": float(sum(
                1 for s in self.health.values() if s == HEALTH_SUSPECT
            )),
            "completed": float(self.completed),
            "failed": float(self.failed),
            "dedup_hit_rate": hits / served if served else 0.0,
            "rolling_iops": self._rolling_iops(),
            "rolling_iops_per_watt": self._rolling_iops_per_watt(),
        }
        for metric, value in fleet_rows.items():
            rows.append({"created": now, "scope": "fleet",
                         "metric": f"fleet.{metric}", "value": value})
        for tenant in self.queue.tenants:
            rows.append({"created": now, "scope": f"tenant:{tenant}",
                         "metric": "tenant.depth",
                         "value": float(self.queue.depth(tenant))})
            rows.append({"created": now, "scope": f"tenant:{tenant}",
                         "metric": "tenant.in_flight",
                         "value": float(self.queue.in_flight(tenant))})
        if self.ledger is not None and rows:
            self.ledger.metrics_put(rows)
        self._update_gauges()

    def _on_heartbeat_missed(self, worker: FleetWorker) -> None:
        name = worker.name
        misses = self._misses.get(name, 0) + 1
        self._misses[name] = misses
        state = self.health.get(name, HEALTH_HEALTHY)
        if misses >= self.dead_after and state != HEALTH_DEAD:
            self._mark_dead(worker, misses)
        elif misses >= self.suspect_after and state == HEALTH_HEALTHY:
            self._mark_suspect(worker, misses)

    def _mark_suspect(self, worker: FleetWorker, misses: int) -> None:
        """Quarantine: no new dispatches, but the worker stays alive —
        this fires *before* any dispatch failure would."""
        name = worker.name
        self.health[name] = HEALTH_SUSPECT
        if worker in self._idle:
            self._idle.remove(worker)
        if worker not in self._quarantined:
            self._quarantined.append(worker)
        get_flight_recorder().record(
            "worker_suspect", 0.0, worker=name, misses=misses
        )
        self._emit_worker("worker_suspect", name, misses=misses)

    def _recover_worker(self, worker: FleetWorker) -> None:
        name = worker.name
        self.health[name] = HEALTH_HEALTHY
        if worker in self._quarantined:
            self._quarantined.remove(worker)
        if (
            worker in self.workers
            and name not in self._busy
            and worker not in self._idle
        ):
            self._idle.append(worker)
            if self._wake is not None:
                self._wake.set()
        self._emit_worker("worker_recovered", name)

    def _mark_dead(self, worker: FleetWorker, misses: int) -> None:
        """Heartbeat-declared death: drop the worker from the pool and
        dump the flight recorder, exactly as a dispatch death would."""
        name = worker.name
        self.heartbeat_deaths += 1
        self.health[name] = HEALTH_DEAD
        worker.alive = False
        if worker in self.workers:
            self.workers.remove(worker)
            self._dead.append(worker)
        if worker in self._idle:
            self._idle.remove(worker)
        if worker in self._quarantined:
            self._quarantined.remove(worker)
        get_flight_recorder().record(
            "worker_dead", 0.0,
            worker=name, reason="heartbeat silence", misses=misses,
        )
        dump = autodump("heartbeat_death")
        self._emit_worker(
            "worker_dead", name,
            reason="heartbeat", dump=str(dump) if dump else "",
        )

    def _rolling_iops(self) -> float:
        if not self._rolling:
            return 0.0
        return sum(i for i, _ in self._rolling) / len(self._rolling)

    def _rolling_iops_per_watt(self) -> float:
        if not self._rolling:
            return 0.0
        watts = sum(w for _, w in self._rolling) / len(self._rolling)
        return self._rolling_iops() / watts if watts > 0 else 0.0

    # -- provenance / observability ------------------------------------------

    def _record(self, job: FleetJob, result: FleetResult) -> None:
        if self.ledger is None:
            return
        record_fleet_job(
            self.ledger,
            job_id=job.job_id,
            tenant=job.tenant,
            spec_dict=job.spec.to_dict(),
            result_dict=self._summary_payload(result),
            cache_hit=result.cache_hit,
            attempts=result.attempts,
            worker=result.worker,
            dump_path=job.dump_path,
        )

    @staticmethod
    def _summary_payload(result: FleetResult) -> Dict[str, Any]:
        payload = result.payload
        # Grid/search payloads have no flat metrics at top level; the
        # ledger summary keys simply read as zeros for them.
        return payload if isinstance(payload, dict) else {}

    def watch(self, callback: Callable[[Dict[str, Any]], None],
              job_id: Optional[str] = None) -> Callable[[], None]:
        """Attach a watcher; returns its detach function.

        Without ``job_id`` the watcher sees every lifecycle event; with
        one, it sees that job's streamed PROGRESS frames.
        """
        if job_id is None:
            return self._events.add(callback)
        fanout = self._job_fanouts.setdefault(job_id, FrameFanout())
        return fanout.add(callback)

    def _deliver_frame(self, job_id: str, seq: int,
                       frame: Dict[str, Any]) -> None:
        fanout = self._job_fanouts.get(job_id)
        if fanout is not None:
            fanout.deliver(seq, frame)

    def _emit(self, event: str, job: FleetJob, **extra: Any) -> None:
        if len(self._events) == 0:
            next(self._event_seq)  # keep the sequence monotone anyway
            return
        body = {"event": event, "job_id": job.job_id, "tenant": job.tenant}
        body.update(extra)
        self._events.deliver(next(self._event_seq), body)

    def _emit_worker(self, event: str, worker: str, **extra: Any) -> None:
        """Lifecycle event about a worker, not a job (heartbeat plane)."""
        if len(self._events) == 0:
            next(self._event_seq)
            return
        body = {"event": event, "worker": worker}
        body.update(extra)
        self._events.deliver(next(self._event_seq), body)

    def _update_gauges(self) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.gauge("fleet_queue_depth").set(float(self.queue.depth()))
        registry.gauge("fleet_workers_alive").set(float(len(self.workers)))
        registry.gauge("fleet_workers_suspect").set(float(sum(
            1 for s in self.health.values() if s == HEALTH_SUSPECT
        )))
        served = self.completed + self.failed
        hits = self.cache_hits + self.inflight_hits
        if served:
            registry.gauge("fleet_dedup_hit_rate").set(hits / served)
        for tenant in self.queue.tenants:
            registry.gauge("fleet_in_flight", tenant=tenant).set(
                float(self.queue.in_flight(tenant))
            )

    def status(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the whole fleet."""
        return {
            "draining": self._draining,
            "queue": self.queue.stats(),
            "workers": [w.describe() for w in self.workers],
            "dead_workers": [w.describe() for w in self._dead],
            "jobs": {
                "submitted": len(self.jobs),
                "completed": self.completed,
                "failed": self.failed,
                "executions_started": self.executions_started,
                "retries": self.retries,
                "worker_deaths": self.worker_deaths,
            },
            "dedup": {
                "cache_hits": self.cache_hits,
                "inflight_hits": self.inflight_hits,
                "hit_rate": (
                    (self.cache_hits + self.inflight_hits)
                    / max(1, self.completed + self.failed)
                ),
            },
            "tracing": self._tracing,
            "health": {
                name: {
                    "state": state,
                    "busy": self._busy.get(name, ""),
                    "beats": self._beats.get(name, 0),
                    "misses": self._misses.get(name, 0),
                }
                for name, state in sorted(self.health.items())
            },
            "heartbeats": {
                "interval": self.heartbeat_interval,
                "deaths": self.heartbeat_deaths,
                "suspect": sum(
                    1 for s in self.health.values() if s == HEALTH_SUSPECT
                ),
            },
            "metrics": {
                "rolling_iops": self._rolling_iops(),
                "rolling_iops_per_watt": self._rolling_iops_per_watt(),
                "samples": len(self._rolling),
            },
        }


async def run_jobs(
    scheduler: FleetScheduler,
    submissions: List[Dict[str, Any]],
) -> List[FleetResult]:
    """Submit a batch (``{"spec", "tenant", "priority"?}`` dicts) and
    await every result, in submission order."""
    jobs = []
    for sub in submissions:
        jobs.append(
            await scheduler.submit(
                sub["spec"], sub["tenant"],
                priority=float(sub.get("priority", 0.0)),
            )
        )
    return list(await asyncio.gather(*(j.future for j in jobs)))

"""``tracer fleet top`` — a live terminal view of a running fleet.

Pure rendering: :func:`render_top` turns one
:meth:`~repro.fleet.scheduler.FleetScheduler.status` snapshot into a
terminal screen (header, per-tenant queue table, per-worker health
table), and :func:`status_snapshot` flattens the same snapshot into a
registry-shaped dict the standard exporters
(:func:`~repro.telemetry.exporters.to_prometheus`,
:func:`~repro.telemetry.exporters.to_jsonl`) consume — so a scrape
endpoint or a JSONL time series costs no extra plumbing.  The CLI polls
``fleet_status`` frames and repaints; nothing here touches the network.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Health-state → single-glyph marker used in the worker table.
_HEALTH_GLYPH = {"healthy": "+", "suspect": "?", "dead": "x"}


def _fmt(value: float, digits: int = 1) -> str:
    return f"{value:,.{digits}f}"


def render_top(status: Dict[str, Any]) -> str:
    """Render one fleet status snapshot as a terminal screen."""
    jobs = status.get("jobs", {})
    dedup = status.get("dedup", {})
    metrics = status.get("metrics", {})
    beats = status.get("heartbeats", {})
    queue = status.get("queue", {})
    lines: List[str] = []

    lines.append(
        "tracer fleet top"
        + ("  [draining]" if status.get("draining") else "")
        + ("  [tracing]" if status.get("tracing") else "")
    )
    lines.append(
        f"jobs: {jobs.get('submitted', 0)} submitted  "
        f"{jobs.get('completed', 0)} done  {jobs.get('failed', 0)} failed  "
        f"{jobs.get('retries', 0)} retries  "
        f"queue depth {queue.get('depth', 0)}"
    )
    lines.append(
        f"dedup: {dedup.get('cache_hits', 0)} cache + "
        f"{dedup.get('inflight_hits', 0)} in-flight "
        f"(hit rate {100.0 * dedup.get('hit_rate', 0.0):.1f}%)   "
        f"rolling: {_fmt(metrics.get('rolling_iops', 0.0))} IOPS, "
        f"{_fmt(metrics.get('rolling_iops_per_watt', 0.0), 2)} IOPS/W "
        f"over {metrics.get('samples', 0)} jobs"
    )
    if beats.get("interval", 0.0):
        lines.append(
            f"heartbeats: every {beats['interval']:g}s  "
            f"{beats.get('suspect', 0)} suspect  "
            f"{beats.get('deaths', 0)} heartbeat deaths  "
            f"{jobs.get('worker_deaths', 0)} dispatch deaths"
        )

    tenants = queue.get("tenants", {})
    if tenants:
        lines.append("")
        lines.append(
            f"{'TENANT':<16} {'DEPTH':>6} {'IN-FLIGHT':>10} "
            f"{'QUOTA':>6} {'PRIO':>6}"
        )
        for name, t in sorted(tenants.items()):
            lines.append(
                f"{name:<16} {t.get('depth', 0):>6} "
                f"{t.get('in_flight', 0):>10} {t.get('quota', 0):>6} "
                f"{t.get('priority', 0.0):>6.1f}"
            )

    health = status.get("health", {})
    workers = {w.get("name", "?"): w for w in status.get("workers", [])}
    if health:
        lines.append("")
        lines.append(
            f"{'WORKER':<20} {'STATE':<9} {'BUSY ON':<18} "
            f"{'BEATS':>6} {'MISS':>5} {'JOBS':>6}"
        )
        for name, h in sorted(health.items()):
            state = h.get("state", "?")
            glyph = _HEALTH_GLYPH.get(state, " ")
            desc = workers.get(name, {})
            lines.append(
                f"{glyph} {name:<18} {state:<9} "
                f"{h.get('busy') or '-':<18} {h.get('beats', 0):>6} "
                f"{h.get('misses', 0):>5} {desc.get('jobs_done', 0):>6}"
            )
    return "\n".join(lines) + "\n"


def status_snapshot(status: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten a fleet status dict into an exporter-ready snapshot.

    Shaped like a :meth:`MetricsRegistry.snapshot` (counters + gauges
    only), so ``to_prometheus`` / ``to_jsonl`` render it unchanged.
    """
    jobs = status.get("jobs", {})
    dedup = status.get("dedup", {})
    metrics = status.get("metrics", {})
    beats = status.get("heartbeats", {})
    queue = status.get("queue", {})
    counters: Dict[str, float] = {
        "fleet_jobs_submitted": jobs.get("submitted", 0),
        "fleet_jobs_completed": jobs.get("completed", 0),
        "fleet_jobs_failed": jobs.get("failed", 0),
        "fleet_retries": jobs.get("retries", 0),
        "fleet_worker_deaths": jobs.get("worker_deaths", 0),
        "fleet_heartbeat_deaths": beats.get("deaths", 0),
        "fleet_cache_hits": dedup.get("cache_hits", 0),
        "fleet_inflight_hits": dedup.get("inflight_hits", 0),
    }
    gauges: Dict[str, float] = {
        "fleet_queue_depth": float(queue.get("depth", 0)),
        "fleet_workers_alive": float(len(status.get("workers", []))),
        "fleet_workers_suspect": float(beats.get("suspect", 0)),
        "fleet_dedup_hit_rate": float(dedup.get("hit_rate", 0.0)),
        "fleet_rolling_iops": float(metrics.get("rolling_iops", 0.0)),
        "fleet_rolling_iops_per_watt": float(
            metrics.get("rolling_iops_per_watt", 0.0)
        ),
    }
    for name, t in sorted(status.get("queue", {}).get("tenants", {}).items()):
        gauges[f'fleet_tenant_depth{{tenant={name}}}'] = float(
            t.get("depth", 0)
        )
        gauges[f'fleet_tenant_in_flight{{tenant={name}}}'] = float(
            t.get("in_flight", 0)
        )
    for name, h in sorted(status.get("health", {}).items()):
        gauges[f'fleet_worker_beats{{worker={name}}}'] = float(
            h.get("beats", 0)
        )
        gauges[f'fleet_worker_misses{{worker={name}}}'] = float(
            h.get("misses", 0)
        )
    return {"counters": counters, "gauges": gauges}

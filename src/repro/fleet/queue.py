"""Multi-tenant job queue: quotas, priorities, and an aging policy.

Pure synchronous data structure — the asyncio scheduler drives it, and
the Hypothesis property suite exercises it directly.  The policy:

* **FIFO within a tenant.**  Only each tenant's queue *head* competes
  for the next dispatch slot, so one tenant's jobs never reorder.
* **Quota.**  A tenant with ``in_flight >= quota`` is ineligible; its
  jobs wait regardless of priority.  Quotas bound how much of the
  worker pool any tenant can occupy, never how much it may enqueue.
* **Priority with aging.**  Among eligible heads the scheduler picks
  the maximum *effective* priority ``tenant.priority + job.priority +
  aging_rate × waited_ticks`` (ties broken by admission order).  Every
  ``select`` advances the tick, so a waiting head's effective priority
  grows without bound: a job admitted ``d`` ticks later can only beat
  it while its static advantage exceeds ``aging_rate × d``.  With
  priorities spanning ``S``, nothing admitted more than ``S /
  aging_rate`` ticks later ever overtakes — the starvation bound the
  property suite checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

from ..errors import FleetError
from .jobs import FleetJob


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's scheduling contract."""

    name: str
    quota: int = 4
    priority: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("tenant needs a name")
        if self.quota < 1:
            raise FleetError(
                f"tenant {self.name!r} quota must be >= 1, got {self.quota}"
            )


class FleetQueue:
    """The admission queue behind :class:`~repro.fleet.scheduler.FleetScheduler`."""

    def __init__(self, aging_rate: float = 0.1,
                 default_quota: int = 4) -> None:
        if aging_rate < 0:
            raise FleetError(f"aging_rate must be >= 0, got {aging_rate}")
        self.aging_rate = aging_rate
        self.default_quota = default_quota
        self.tenants: Dict[str, TenantSpec] = {}
        self._queues: Dict[str, Deque[FleetJob]] = {}
        self._in_flight: Dict[str, int] = {}
        self._peak_in_flight: Dict[str, int] = {}
        self.tick = 0
        self._seq = 0
        self.admitted = 0
        self.selected = 0

    # -- tenancy -------------------------------------------------------------

    def register(self, spec: TenantSpec) -> None:
        self.tenants[spec.name] = spec
        self._queues.setdefault(spec.name, deque())
        self._in_flight.setdefault(spec.name, 0)
        self._peak_in_flight.setdefault(spec.name, 0)

    def _ensure(self, tenant: str) -> TenantSpec:
        if tenant not in self.tenants:
            self.register(TenantSpec(name=tenant, quota=self.default_quota))
        return self.tenants[tenant]

    # -- admission / selection ----------------------------------------------

    def admit(self, job: FleetJob) -> None:
        """Enqueue at the tail of the job's tenant queue."""
        self._ensure(job.tenant)
        job.enqueue_tick = self.tick
        job.enqueue_seq = self._seq
        self._seq += 1
        self.admitted += 1
        self._queues[job.tenant].append(job)

    def requeue_front(self, job: FleetJob) -> None:
        """Put a job whose worker died back at its tenant's head.

        The original ``enqueue_tick`` is kept, so a retried job retains
        (and keeps accruing) its aging credit instead of losing its
        place to jobs admitted while it ran.
        """
        self._ensure(job.tenant)
        self._in_flight[job.tenant] = max(
            0, self._in_flight[job.tenant] - 1
        )
        self._queues[job.tenant].appendleft(job)

    def eligible_tenants(self) -> List[str]:
        """Tenants with a queued job and spare quota, admission order."""
        return [
            name for name, q in self._queues.items()
            if q and self._in_flight[name] < self.tenants[name].quota
        ]

    def select(self) -> Optional[FleetJob]:
        """Pop the next job to dispatch, or None when nothing is eligible.

        Work-conserving by construction: returns None *only* when every
        tenant is empty or at quota.  Each call advances the aging tick.
        """
        self.tick += 1
        best: Optional[FleetJob] = None
        best_key = None
        for name in self.eligible_tenants():
            head = self._queues[name][0]
            key = (
                head.effective_priority(
                    self.tenants[name].priority, self.aging_rate, self.tick
                ),
                -head.enqueue_seq,
            )
            if best_key is None or key > best_key:
                best, best_key = head, key
        if best is None:
            return None
        self._queues[best.tenant].popleft()
        self._in_flight[best.tenant] += 1
        self._peak_in_flight[best.tenant] = max(
            self._peak_in_flight[best.tenant],
            self._in_flight[best.tenant],
        )
        self.selected += 1
        return best

    def release(self, job: FleetJob) -> None:
        """A selected job finished (or failed terminally): free its slot."""
        self._in_flight[job.tenant] = max(
            0, self._in_flight[job.tenant] - 1
        )

    # -- introspection -------------------------------------------------------

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(q) for q in self._queues.values())

    def in_flight(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return self._in_flight.get(tenant, 0)
        return sum(self._in_flight.values())

    def peak_in_flight(self, tenant: str) -> int:
        return self._peak_in_flight.get(tenant, 0)

    def stats(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "admitted": self.admitted,
            "selected": self.selected,
            "depth": self.depth(),
            "in_flight": self.in_flight(),
            "tenants": {
                name: {
                    "quota": spec.quota,
                    "priority": spec.priority,
                    "depth": self.depth(name),
                    "in_flight": self.in_flight(name),
                    "peak_in_flight": self.peak_in_flight(name),
                }
                for name, spec in sorted(self.tenants.items())
            },
        }

"""First-order RC thermal model driven by a power timeline.

A storage device in an enclosure behaves, to first order, like a
thermal RC circuit: dissipated power ``P`` pushes the device
temperature toward ``T_ambient + P · R_th`` (thermal resistance in
K/W) with time constant ``τ = R_th · C_th``.  Integrating over the
device's :class:`~repro.power.model.PowerTimeline` gives the
temperature history without any extra event machinery:

    T(t+Δ) = T_target + (T(t) − T_target) · exp(−Δ/τ)

where ``T_target`` uses the mean power over the step.  Steps are chosen
small relative to τ, so the piecewise-constant-power approximation is
tight (τ for a 3.5″ drive is tens of minutes; the default 1 s steps are
conservative by three orders of magnitude).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import TracerError
from ..power.model import PowerTimeline


class ThermalError(TracerError):
    """Invalid thermal configuration or query."""


@dataclass(frozen=True)
class ThermalSpec:
    """Thermal parameters of one device in its bay.

    Parameters
    ----------
    thermal_resistance:
        Kelvin per Watt from device to enclosure air.
    time_constant:
        τ in seconds (R_th · C_th).
    ambient:
        Enclosure air temperature in °C (assumed regulated by the fans
        accounted in the enclosure's non-disk power).
    max_operating:
        Vendor limit, for headroom reporting (°C).
    """

    thermal_resistance: float
    time_constant: float
    ambient: float = 25.0
    max_operating: float = 60.0

    def __post_init__(self) -> None:
        if self.thermal_resistance <= 0:
            raise ThermalError("thermal_resistance must be > 0")
        if self.time_constant <= 0:
            raise ThermalError("time_constant must be > 0")

    def steady_state(self, watts: float) -> float:
        """Equilibrium temperature at constant dissipation."""
        return self.ambient + watts * self.thermal_resistance


#: 3.5" 7200 rpm drive in a fan-cooled bay: ~1.3 K/W, τ ≈ 8 minutes.
HDD_THERMAL = ThermalSpec(thermal_resistance=1.3, time_constant=480.0)

#: 2.5" SSD: lower mass, better coupling: ~2.0 K/W, τ ≈ 2 minutes.
SSD_THERMAL = ThermalSpec(
    thermal_resistance=2.0, time_constant=120.0, max_operating=70.0
)


class ThermalModel:
    """Temperature history of one device from its power timeline.

    The model is *pull-based*: it lazily integrates the power timeline
    up to the queried time, caching its state, so callers can sample at
    arbitrary (non-decreasing) times without re-integrating from zero.
    """

    def __init__(
        self,
        timeline: PowerTimeline,
        spec: ThermalSpec,
        step: float = 1.0,
        start_temperature: float | None = None,
    ) -> None:
        if step <= 0:
            raise ThermalError(f"step must be > 0, got {step}")
        self.timeline = timeline
        self.spec = spec
        self.step = step
        self._time = 0.0
        self._temp = (
            start_temperature
            if start_temperature is not None
            else spec.steady_state(timeline.baseline_watts_at(0.0))
        )
        self._history: List[Tuple[float, float]] = [(0.0, self._temp)]

    @property
    def current_temperature(self) -> float:
        """Temperature at the last integrated instant."""
        return self._temp

    def _advance_one(self, dt: float) -> None:
        watts = self.timeline.mean_power(self._time, self._time + dt)
        target = self.spec.steady_state(watts)
        decay = math.exp(-dt / self.spec.time_constant)
        self._temp = target + (self._temp - target) * decay
        self._time += dt
        self._history.append((self._time, self._temp))

    def temperature_at(self, time: float) -> float:
        """Temperature in °C at ``time`` (must not precede prior queries)."""
        if time < self._time - 1e-12:
            # Serve from history (exact for recorded instants, nearest
            # step otherwise).
            times = np.array([t for t, _ in self._history])
            temps = np.array([T for _, T in self._history])
            return float(np.interp(time, times, temps))
        while self._time + self.step <= time:
            self._advance_one(self.step)
        remainder = time - self._time
        if remainder > 1e-12:
            self._advance_one(remainder)
        return self._temp

    def headroom_at(self, time: float) -> float:
        """Degrees below the vendor operating limit (negative = over)."""
        return self.spec.max_operating - self.temperature_at(time)

    def history(self) -> List[Tuple[float, float]]:
        """(time, °C) points integrated so far."""
        return list(self._history)

"""Thermal metrics — the paper's stated future work.

§VII: "We intend to bring in temperature as new metric of TRACER
evaluation framework, as temperature has obvious influences on energy,
performance and reliability of storage systems."

This package adds that metric to the reproduction:

* :mod:`~repro.thermal.model` — first-order RC thermal model driven by
  a device's power timeline (dissipated Watts heat the device toward
  ``T_ambient + P · R_th`` with time constant τ);
* :mod:`~repro.thermal.sensor` — thermistor model (quantisation,
  offset) so readings look like SMART temperature values;
* :mod:`~repro.thermal.monitor` — per-cycle temperature sampling on the
  simulation clock, aligned with the performance and power monitors.
"""

from .model import ThermalSpec, ThermalModel, HDD_THERMAL, SSD_THERMAL
from .sensor import Thermistor, ThermistorSpec
from .monitor import ThermalMonitor, ThermalSample

__all__ = [
    "ThermalSpec",
    "ThermalModel",
    "HDD_THERMAL",
    "SSD_THERMAL",
    "Thermistor",
    "ThermistorSpec",
    "ThermalMonitor",
    "ThermalSample",
]

"""Per-cycle temperature sampling on the simulation clock.

Mirrors :class:`~repro.power.analyzer.PowerAnalyzer`: arm it, let it
sample each device's thermal model every cycle, stop it, read the
per-cycle records — so replay sessions can log temperature in lock-step
with power and throughput (the integration the paper's future-work
section proposes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.engine import Simulator
from .model import ThermalError, ThermalModel
from .sensor import Thermistor


@dataclass(frozen=True)
class ThermalSample:
    """One device's temperature at one sampling instant."""

    time: float
    device: str
    true_celsius: float
    reported_celsius: float
    headroom: float


class ThermalMonitor:
    """Samples a set of named thermal models every cycle."""

    def __init__(
        self,
        models: Dict[str, ThermalModel],
        sampling_cycle: float = 1.0,
        sensor: Optional[Thermistor] = None,
    ) -> None:
        if sampling_cycle <= 0:
            raise ThermalError(f"sampling_cycle must be > 0, got {sampling_cycle}")
        if not models:
            raise ThermalError("need at least one thermal model to monitor")
        self.models = dict(models)
        self.sampling_cycle = sampling_cycle
        self.sensor = sensor if sensor is not None else Thermistor()
        self.samples: List[ThermalSample] = []
        self._armed = False
        self._sim: Optional[Simulator] = None
        self._pending = None

    def start(self, sim: Simulator) -> None:
        if self._armed:
            raise ThermalError("thermal monitor already started")
        self._armed = True
        self._sim = sim
        self.samples = []
        self._schedule()

    def _schedule(self) -> None:
        assert self._sim is not None
        self._pending = self._sim.schedule_after(
            self.sampling_cycle, self._tick, priority=11
        )

    def _tick(self) -> None:
        assert self._sim is not None
        self._record(self._sim.now)
        if self._armed:
            self._schedule()

    def _record(self, now: float) -> None:
        for name, model in self.models.items():
            true = model.temperature_at(now)
            self.samples.append(
                ThermalSample(
                    time=now,
                    device=name,
                    true_celsius=true,
                    reported_celsius=self.sensor.read(true),
                    headroom=model.spec.max_operating - true,
                )
            )

    def stop(self) -> None:
        if not self._armed:
            raise ThermalError("thermal monitor not started")
        self._armed = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        assert self._sim is not None
        self._record(self._sim.now)

    # -- Aggregates --------------------------------------------------------

    def max_temperature(self, device: Optional[str] = None) -> float:
        """Hottest sampled true temperature (of one device or overall)."""
        values = [
            s.true_celsius
            for s in self.samples
            if device is None or s.device == device
        ]
        if not values:
            raise ThermalError("no samples recorded")
        return max(values)

    def device_series(self, device: str) -> List[ThermalSample]:
        return [s for s in self.samples if s.device == device]

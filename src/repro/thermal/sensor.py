"""Thermistor model: what a SMART temperature attribute actually reports.

Drive temperature sensors quantise to 1 °C (SMART attribute 194), sit a
fixed offset from the hottest component, and lag slightly; the
quantisation especially matters when an experiment tries to resolve the
one-or-two-degree differences between load levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng import make_rng
from .model import ThermalError


@dataclass(frozen=True)
class ThermistorSpec:
    """Imperfections of a device temperature sensor."""

    quantisation: float = 1.0
    """Reporting granularity in °C (SMART reports whole degrees)."""
    offset: float = 0.0
    """Systematic bias in °C (sensor placement vs hottest component)."""
    noise: float = 0.0
    """Std-dev of zero-mean Gaussian read noise in °C."""

    def __post_init__(self) -> None:
        if self.quantisation < 0 or self.noise < 0:
            raise ThermalError("quantisation and noise must be >= 0")


IDEAL_THERMISTOR = ThermistorSpec(quantisation=0.0)
SMART_THERMISTOR = ThermistorSpec(quantisation=1.0)


class Thermistor:
    """Convert true temperature into sensor readings."""

    def __init__(
        self, spec: ThermistorSpec = SMART_THERMISTOR, seed: int | None = None
    ) -> None:
        self.spec = spec
        self._rng = make_rng(seed)

    def read(self, true_celsius: float) -> float:
        """One reading in °C."""
        value = true_celsius + self.spec.offset
        if self.spec.noise:
            value += float(self._rng.normal(0.0, self.spec.noise))
        if self.spec.quantisation:
            q = self.spec.quantisation
            value = round(value / q) * q
        return value

"""Configuration records shared across TRACER subsystems.

The paper (Section III-A1) defines a *workload mode* as a vector of
request size, random rate, read rate, and load proportion.  That vector is
what the evaluation host sends to the workload generator, what names trace
files in the repository, and what keys result records in the database —
so it lives here, at the root of the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

from .errors import WorkloadError
from .units import KiB

#: Request sizes used to build the paper's 125-trace synthetic matrix
#: (five sizes spanning 512 B .. 1 MB, Section V-C1 / Fig. 9-10 captions).
MATRIX_REQUEST_SIZES = (512, 4 * KiB, 16 * KiB, 64 * KiB, 1024 * KiB)

#: Five read ratios of the synthetic matrix.
MATRIX_READ_RATIOS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Five random ratios of the synthetic matrix.
MATRIX_RANDOM_RATIOS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The ten configured load proportions of every experiment (10% .. 100%).
LOAD_LEVELS = tuple((i + 1) / 10 for i in range(10))


def _check_ratio(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise WorkloadError(f"{name} must be within [0, 1], got {value!r}")
    return value


@dataclass(frozen=True)
class WorkloadMode:
    """The workload-mode vector of Section III-A1.

    Parameters
    ----------
    request_size:
        I/O request size in bytes.
    random_ratio:
        Fraction of requests whose start address is random (the rest
        continue sequentially from the previous request).
    read_ratio:
        Fraction of requests that are reads.
    load_proportion:
        Configured I/O intensity as a fraction of the peak trace
        (``1.0`` replays the full trace; ``0.2`` replays 2 of every
        10 bunches).  May exceed 1.0 only via time scaling, not via the
        proportional filter.
    """

    request_size: int
    random_ratio: float
    read_ratio: float
    load_proportion: float = 1.0

    def __post_init__(self) -> None:
        if int(self.request_size) <= 0:
            raise WorkloadError(
                f"request_size must be positive, got {self.request_size!r}"
            )
        object.__setattr__(self, "request_size", int(self.request_size))
        object.__setattr__(
            self, "random_ratio", _check_ratio("random_ratio", self.random_ratio)
        )
        object.__setattr__(
            self, "read_ratio", _check_ratio("read_ratio", self.read_ratio)
        )
        lp = float(self.load_proportion)
        if lp <= 0:
            raise WorkloadError(f"load_proportion must be > 0, got {lp!r}")
        object.__setattr__(self, "load_proportion", lp)

    def at_load(self, load_proportion: float) -> "WorkloadMode":
        """Return a copy of this mode with a different load proportion."""
        return replace(self, load_proportion=load_proportion)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise for the wire protocol and the results database."""
        return {
            "request_size": self.request_size,
            "random_ratio": self.random_ratio,
            "read_ratio": self.read_ratio,
            "load_proportion": self.load_proportion,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadMode":
        """Inverse of :meth:`to_dict`."""
        return cls(
            request_size=int(data["request_size"]),
            random_ratio=float(data["random_ratio"]),
            read_ratio=float(data["read_ratio"]),
            load_proportion=float(data.get("load_proportion", 1.0)),
        )


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs of a single replay run.

    ``sampling_cycle`` is the monitor/power-analyzer sampling period —
    "whose default value is 1 Second - is fully configurable"
    (Section III-A2).  ``time_scale`` multiplies I/O intensity by
    compressing (>1) or stretching (<1) inter-arrival gaps, the
    supplementary mechanism of Fig. 2.
    """

    sampling_cycle: float = 1.0
    time_scale: float = 1.0
    group_size: int = 10
    seed: int | None = None
    engine: str = "auto"
    """Replay engine selector: ``auto`` uses the analytical kernel
    (:mod:`repro.sim.kernel`) whenever the run qualifies and falls back
    to the event engine otherwise; ``event`` forces the event calendar;
    ``kernel`` demands the closed form and errors if it cannot run."""

    def __post_init__(self) -> None:
        if self.sampling_cycle <= 0:
            raise WorkloadError(
                f"sampling_cycle must be > 0, got {self.sampling_cycle!r}"
            )
        if self.time_scale <= 0:
            raise WorkloadError(f"time_scale must be > 0, got {self.time_scale!r}")
        if self.group_size < 1:
            raise WorkloadError(f"group_size must be >= 1, got {self.group_size!r}")
        if self.engine not in ("auto", "event", "kernel"):
            raise WorkloadError(
                f"engine must be 'auto', 'event', or 'kernel', "
                f"got {self.engine!r}"
            )


@dataclass(frozen=True)
class TestRequest:
    """What the evaluation host asks the workload generator to run.

    Combines the workload mode (selects the trace in the repository and
    the filter level) with the replay configuration, plus a free-form
    label recorded in the database.
    """

    #: Tell pytest not to collect this class despite the Test* name.
    __test__ = False

    mode: WorkloadMode
    replay: ReplayConfig = field(default_factory=ReplayConfig)
    label: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode.to_dict(),
            "replay": {
                "sampling_cycle": self.replay.sampling_cycle,
                "time_scale": self.replay.time_scale,
                "group_size": self.replay.group_size,
                "seed": self.replay.seed,
                "engine": self.replay.engine,
            },
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TestRequest":
        rp = data.get("replay", {})
        return cls(
            mode=WorkloadMode.from_dict(data["mode"]),
            replay=ReplayConfig(
                sampling_cycle=float(rp.get("sampling_cycle", 1.0)),
                time_scale=float(rp.get("time_scale", 1.0)),
                group_size=int(rp.get("group_size", 10)),
                seed=rp.get("seed"),
                engine=str(rp.get("engine", "auto")),
            ),
            label=str(data.get("label", "")),
        )

"""Live console reporting — the paper's GUI, as a terminal stream.

"The users are allowed to view real-time energy dissipation, I/O
throughput (IOPS and MBPS), and energy-efficiency values of a tested
storage system using the graphic user interface" (§III-B step 3).  The
:class:`ConsoleReporter` provides the headless equivalent: one line per
sampling cycle with throughput, power, and the combined efficiency
metrics, streamed while the replay runs.

Wire it in via :class:`~repro.replay.session.ReplaySession`'s
``reporter`` argument or the CLI's ``tracer replay --live``.
"""

from __future__ import annotations

import sys
import time as _time
from typing import Callable, Optional, TextIO

from ..metrics.efficiency import iops_per_watt, mbps_per_kilowatt
from ..power.analyzer import PowerAnalyzer
from .monitor import PerfSample


class ConsoleReporter:
    """Streams one formatted line per completed sampling cycle.

    The reporter is handed the session's power analyzer so each
    performance cycle is printed alongside the matching power sample
    (both close on the same simulated instant; performance closes
    first — the analyzer's sample for the same window is therefore the
    previous analyzer entry by the time we print, so power pairing uses
    the analyzer's latest *closed* window).
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self._analyzer: Optional[PowerAnalyzer] = None
        self._header_printed = False
        self.lines_emitted = 0

    def bind(self, analyzer: PowerAnalyzer) -> None:
        """Called by the session before the replay starts."""
        self._analyzer = analyzer
        self._header_printed = False
        self.lines_emitted = 0

    def _print_header(self) -> None:
        print(
            f"{'t(s)':>8} {'IOPS':>9} {'MBPS':>8} {'resp ms':>8} "
            f"{'Watts':>8} {'IOPS/W':>7} {'MBPS/kW':>8}",
            file=self.stream,
        )
        self._header_printed = True

    def on_sample(self, sample: PerfSample) -> None:
        """Monitor hook: one line per closed performance cycle."""
        if not self._header_printed:
            self._print_header()
        watts = 0.0
        if self._analyzer is not None:
            # Integrate the same window directly from the power source:
            # exact, and independent of monitor/analyzer tick ordering.
            watts = self._analyzer.source.energy_between(
                sample.start, sample.end
            ) / max(sample.duration, 1e-12)
        print(
            f"{sample.end:>8.1f} {sample.iops:>9.1f} {sample.mbps:>8.2f} "
            f"{sample.mean_response * 1000:>8.2f} {watts:>8.2f} "
            f"{iops_per_watt(sample.iops, watts):>7.2f} "
            f"{mbps_per_kilowatt(sample.mbps, watts):>8.1f}",
            file=self.stream,
        )
        self.lines_emitted += 1


class LiveFrameRenderer:
    """Renders streamed interval frames — the terminal view behind
    ``tracer watch``.

    Consumes interval-frame wire dicts (what
    :meth:`~repro.distributed.host_node.RemoteEvaluationHost.run_test`
    hands its ``on_progress`` callback) or
    :class:`~repro.telemetry.stream.IntervalFrame` objects, printing one
    line per frame: throughput, response time, power, queue depth, and
    the cumulative fault/degraded counters.

    Frames that crossed the wire carry a ``wall_emitted`` timestamp
    (the node's wall clock at push time, injected host-side); when
    present a ``lag ms`` column shows how far behind the live replay
    each delivered frame is — queueing plus transit delay, the
    fleet-top view of streaming freshness.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 clock: Callable[[], float] = _time.time) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.clock = clock
        self._header_printed = False
        self._show_lag = False
        self.frames_rendered = 0
        self.last_lag_seconds: Optional[float] = None

    def _print_header(self) -> None:
        lag = f" {'lag ms':>7}" if self._show_lag else ""
        print(
            f"{'#':>4} {'t(s)':>8} {'IOPS':>9} {'MBPS':>8} {'resp ms':>8} "
            f"{'Watts':>8} {'qdepth':>6} {'faults':>6} {'degr':>5}" + lag,
            file=self.stream,
        )
        self._header_printed = True

    def on_frame(self, frame) -> None:
        """Render one interval frame (wire dict or IntervalFrame)."""
        if not isinstance(frame, dict):
            frame = frame.to_dict()
        if not self._header_printed:
            # Lag column appears only for wire frames that carry the
            # emit timestamp; decided at first frame so local replays
            # keep the historical layout.
            self._show_lag = "wall_emitted" in frame
            self._print_header()
        duration = max(frame["end"] - frame["start"], 1e-12)
        completed = frame["completed"]
        iops = completed / duration
        mbps = (frame["total_bytes"] / 1e6) / duration
        resp = frame["response_sum"] / completed if completed else 0.0
        watts = frame["energy_joules"] / duration
        faults = sum(frame.get("faults", {}).values())
        line = (
            f"{frame['index']:>4} {frame['end']:>8.2f} {iops:>9.1f} "
            f"{mbps:>8.2f} {resp * 1000:>8.2f} {watts:>8.2f} "
            f"{frame['queue_depth']:>6} {faults:>6} "
            f"{frame.get('degraded_requests', 0):>5}"
        )
        if self._show_lag and "wall_emitted" in frame:
            self.last_lag_seconds = max(
                0.0, self.clock() - float(frame["wall_emitted"])
            )
            line += f" {self.last_lag_seconds * 1000:>7.1f}"
        print(line, file=self.stream)
        self.frames_rendered += 1

"""Replay captures: the frozen observable record a policy oracle consumes.

A :class:`ReplayCapture` is everything an *analytic* energy policy needs
to re-score a finished replay — per-member busy segments (exactly the
raw ``PowerTimeline`` segments the replay committed), per-request
response/finish times in completion-event order, and the integer
workload totals.  All three replay paths (event engine, per-point
kernel, fused grid) can produce one, and by the kernel contract the
arrays are bit-identical across paths for qualifying cells.  That is
what makes the policy post-pass an *oracle*: the same pure function
over the same bits yields the same metrics, no matter which engine
produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..trace.record import READ

__all__ = ["MemberProfile", "ReplayCapture", "CaptureSink", "workload_totals"]


@dataclass(frozen=True)
class MemberProfile:
    """One device's committed busy segments plus its baseline draw."""

    name: str
    starts: np.ndarray
    ends: np.ndarray
    watts: np.ndarray
    base_watts: float

    @property
    def busy_seconds(self) -> float:
        return float(np.sum(self.ends - self.starts))


@dataclass(frozen=True)
class ReplayCapture:
    """Frozen record of one replay, sufficient for policy re-scoring."""

    end: float
    finishes: np.ndarray
    responses: np.ndarray
    members: Tuple[MemberProfile, ...]
    #: Enclosure overhead watts for arrays; ``None`` for bare devices.
    overhead_watts: Optional[float]
    reads: int
    writes: int
    read_bytes: int
    write_bytes: int

    @property
    def completed(self) -> int:
        return int(self.finishes.shape[0])

    def arrivals(self) -> np.ndarray:
        """Request arrival instants, reconstructed identically on every
        path as ``finishes - responses`` (never from submit times)."""
        return self.finishes - self.responses


class CaptureSink:
    """Mutable receptacle a session fills with the run's capture.

    The event path streams completions into it via :meth:`observe`;
    both paths call :meth:`finish` once with the member snapshot.
    """

    def __init__(self) -> None:
        self.capture: Optional[ReplayCapture] = None
        self._fin: List[float] = []
        self._resp: List[float] = []
        self._reads = 0
        self._writes = 0
        self._read_bytes = 0
        self._write_bytes = 0

    # -- event-path streaming --------------------------------------
    def observe(self, completion) -> None:
        self._fin.append(float(completion.finish_time))
        self._resp.append(float(completion.response_time))
        package = completion.package
        if package.op == READ:
            self._reads += 1
            self._read_bytes += int(package.nbytes)
        else:
            self._writes += 1
            self._write_bytes += int(package.nbytes)

    def observed_totals(self) -> Tuple[int, int, int, int]:
        return (self._reads, self._writes, self._read_bytes, self._write_bytes)

    def observed_series(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self._fin, dtype=np.float64),
            np.asarray(self._resp, dtype=np.float64),
        )

    # -- shared assembly -------------------------------------------
    def finish(
        self,
        device,
        *,
        end: float,
        finishes: np.ndarray,
        responses: np.ndarray,
        totals: Tuple[int, int, int, int],
    ) -> ReplayCapture:
        members = snapshot_members(device)
        meter = getattr(device, "meter", None)
        overhead = float(meter.overhead_watts) if meter is not None else None
        reads, writes, read_bytes, write_bytes = totals
        self.capture = ReplayCapture(
            end=float(end),
            finishes=np.asarray(finishes, dtype=np.float64),
            responses=np.asarray(responses, dtype=np.float64),
            members=members,
            overhead_watts=overhead,
            reads=reads,
            writes=writes,
            read_bytes=read_bytes,
            write_bytes=write_bytes,
        )
        return self.capture


def snapshot_members(device) -> Tuple[MemberProfile, ...]:
    """Copy each member's committed timeline out of ``device``."""
    disks = getattr(device, "disks", None)
    members = list(disks) if disks is not None else [device]
    profiles = []
    for member in members:
        timeline = member.timeline
        profiles.append(
            MemberProfile(
                name=member.name,
                starts=np.asarray(timeline._starts, dtype=np.float64),
                ends=np.asarray(timeline._ends, dtype=np.float64),
                watts=np.asarray(timeline._watts, dtype=np.float64),
                base_watts=float(timeline._base_watts[0]),
            )
        )
    return tuple(profiles)


def workload_totals(packed) -> Tuple[int, int, int, int]:
    """(reads, writes, read_bytes, write_bytes) from packed columns."""
    ops = packed.packages["op"]
    nbytes = packed.packages["nbytes"]
    is_read = ops == READ
    return (
        int(np.count_nonzero(is_read)),
        int(ops.shape[0] - np.count_nonzero(is_read)),
        int(nbytes[is_read].sum()),
        int(nbytes[~is_read].sum()),
    )

"""Open-loop trace replay on the simulation clock.

"Chosen I/O bunches by the filter algorithm are replayed based on the
original time stamps ... Concurrent I/O requests in a selected bunch
must be replayed in parallel" (§IV-A).  The engine schedules one
dispatch event per bunch at ``origin + (timestamp - first_timestamp)``
and submits every package of the bunch at that instant.

Both trace representations replay here.  A legacy object
:class:`~repro.trace.record.Trace` dispatches bunch objects; a columnar
:class:`~repro.trace.packed.PackedTrace` takes the fast path — all bunch
events enter the calendar through one :meth:`Simulator.schedule_batch`
(single heapify) and each dispatch hands a row range of the package
table to :meth:`StorageDevice.submit_slice` instead of materialising
IOPackage objects up front.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ReplayError
from ..sim.engine import Simulator
from ..storage.base import Completion, StorageDevice
from ..trace.packed import PackedTrace, TraceLike
from ..trace.record import Bunch, Trace

CompletionHook = Callable[[Completion], None]


class ReplayEngine:
    """Replays one trace against one device.

    Parameters
    ----------
    trace:
        The (already filtered/scaled) trace to replay — object or packed.
    device:
        Target device; must be attached to the same simulator.
    on_completion:
        Called for every finished request (the monitor's hook).
    on_finished:
        Called once, when the last request of the trace completes.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: TraceLike,
        device: StorageDevice,
        on_completion: Optional[CompletionHook] = None,
        on_finished: Optional[Callable[[], None]] = None,
    ) -> None:
        if len(trace) == 0:
            raise ReplayError("cannot replay an empty trace")
        self.sim = sim
        self.trace = trace
        self.device = device
        self.on_completion = on_completion
        self.on_finished = on_finished
        self.issued = 0
        self.completed = 0
        self.total_packages = trace.package_count
        self._started = False
        self.start_time: float = 0.0
        self.end_time: Optional[float] = None

    @property
    def done(self) -> bool:
        return self._started and self.completed >= self.total_packages

    def start(self) -> None:
        """Schedule every bunch; replay begins at the current sim time."""
        if self._started:
            raise ReplayError("replay already started")
        self._started = True
        self.start_time = self.sim.now
        if isinstance(self.trace, PackedTrace):
            times = self.start_time + (
                self.trace.timestamps - self.trace.timestamps[0]
            )
            self.sim.schedule_batch(
                times,
                self._dispatch_packed,
                args_seq=[(i,) for i in range(len(self.trace))],
                priority=5,
            )
        else:
            origin = self.trace.bunches[0].timestamp
            self.sim.schedule_batch(
                [
                    self.start_time + (bunch.timestamp - origin)
                    for bunch in self.trace
                ],
                self._dispatch_bunch,
                args_seq=[(bunch,) for bunch in self.trace],
                priority=5,
            )

    def _dispatch_bunch(self, bunch: Bunch) -> None:
        for package in bunch.packages:
            self.issued += 1
            self.device.submit(package, self._on_done)

    def _dispatch_packed(self, i: int) -> None:
        offsets = self.trace.offsets
        start = int(offsets[i])
        stop = int(offsets[i + 1])
        self.issued += stop - start
        self.device.submit_slice(self.trace, start, stop, self._on_done)

    def _on_done(self, completion: Completion) -> None:
        self.completed += 1
        if self.on_completion is not None:
            self.on_completion(completion)
        if self.completed >= self.total_packages:
            self.end_time = self.sim.now
            if self.on_finished is not None:
                self.on_finished()

    def run_to_completion(self, max_events: Optional[int] = None) -> None:
        """Step the simulator until every replayed request completes.

        Tolerates perpetual side events (monitor/analyzer sampling
        ticks) that would make ``sim.run()`` never return.  With
        ``max_events``, at most that many events execute before a
        :class:`ReplayError` is raised.
        """
        if not self._started:
            self.start()
        steps = 0
        while not self.done:
            if max_events is not None and steps >= max_events:
                raise ReplayError(f"exceeded max_events={max_events} during replay")
            if not self.sim.step():
                raise ReplayError(
                    f"simulation drained with {self.total_packages - self.completed} "
                    "requests outstanding — device lost completions"
                )
            steps += 1

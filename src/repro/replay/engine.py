"""Open-loop trace replay on the simulation clock.

"Chosen I/O bunches by the filter algorithm are replayed based on the
original time stamps ... Concurrent I/O requests in a selected bunch
must be replayed in parallel" (§IV-A).  The engine schedules one
dispatch event per bunch at ``origin + (timestamp - first_timestamp)``
and submits every package of the bunch at that instant.

Both trace representations replay here.  A legacy object
:class:`~repro.trace.record.Trace` dispatches bunch objects; a columnar
:class:`~repro.trace.packed.PackedTrace` takes the fast path — all bunch
events enter the calendar through one :meth:`Simulator.schedule_batch`
(single heapify) and each dispatch hands a row range of the package
table to :meth:`StorageDevice.submit_slice` instead of materialising
IOPackage objects up front.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ReplayError
from ..sim.engine import Simulator
from ..storage.base import Completion, StorageDevice
from ..trace.packed import PackedTrace, TraceLike
from ..trace.record import Bunch, IOPackage, Trace

CompletionHook = Callable[[Completion], None]

#: Instrumented completion handling observes latency histograms and
#: records pipeline spans once per this many completions.  The stride is
#: the overhead budget's main knob: at 64 the enabled packed pipeline
#: measures within ~2% of disabled (the <10% bench gate), while a
#: 100k-package replay still feeds >1500 samples per histogram.
_COMPLETION_SAMPLE_EVERY = 64

#: Dispatch spans are recorded once per this many bunches — one span
#: per bunch would dominate the instrumented dispatch cost.
_DISPATCH_SPAN_EVERY = 256


class ReplayEngine:
    """Replays one trace against one device.

    Parameters
    ----------
    trace:
        The (already filtered/scaled) trace to replay — object or packed.
    device:
        Target device; must be attached to the same simulator.
    on_completion:
        Called for every finished request (the monitor's hook).
    on_finished:
        Called once, when the last request of the trace completes.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: TraceLike,
        device: StorageDevice,
        on_completion: Optional[CompletionHook] = None,
        on_finished: Optional[Callable[[], None]] = None,
    ) -> None:
        if len(trace) == 0:
            raise ReplayError("cannot replay an empty trace")
        self.sim = sim
        self.trace = trace
        self.device = device
        self.on_completion = on_completion
        self.on_finished = on_finished
        self.issued = 0
        self.completed = 0
        self.total_packages = trace.package_count
        # Resolved once: duck-typed devices that implement ``submit``
        # but not the packed batch hook still replay packed traces —
        # the dispatcher falls back to per-package object dispatch.
        self._submit_slice = getattr(device, "submit_slice", None)
        self._started = False
        self.start_time: float = 0.0
        self.end_time: Optional[float] = None
        # Construction-time telemetry gate: when disabled the class
        # methods run unchanged (the seed hot path); when enabled the
        # dispatch/completion handlers are shadowed by instrumented
        # variants via instance attributes.
        from ..telemetry import get_registry

        reg = get_registry()
        if reg.enabled:
            path = "packed" if isinstance(trace, PackedTrace) else "object"
            self._tele_path = path
            self._tele_spans = reg.spans
            self._tele_bunches = reg.counter("replay.bunches", path=path)
            self._tele_issued = reg.counter("replay.packages_issued", path=path)
            self._tele_completed = reg.counter(
                "replay.packages_completed", path=path
            )
            self._tele_queue = reg.histogram("replay.queue_seconds")
            self._tele_service = reg.histogram("replay.service_seconds")
            self._tele_response = reg.histogram("replay.response_seconds")
            self._tele_bunch_i = 0
            self._dispatch_packed = (  # type: ignore[method-assign]
                self._dispatch_packed_instrumented
            )
            self._dispatch_bunch = (  # type: ignore[method-assign]
                self._dispatch_bunch_instrumented
            )
            self._on_done = self._on_done_instrumented  # type: ignore[method-assign]

    @property
    def done(self) -> bool:
        return self._started and self.completed >= self.total_packages

    def start(self) -> None:
        """Schedule every bunch; replay begins at the current sim time."""
        if self._started:
            raise ReplayError("replay already started")
        self._started = True
        self.start_time = self.sim.now
        if isinstance(self.trace, PackedTrace):
            times = self.start_time + (
                self.trace.timestamps - self.trace.timestamps[0]
            )
            self.sim.schedule_batch(
                times,
                self._dispatch_packed,
                args_seq=[(i,) for i in range(len(self.trace))],
                priority=5,
            )
        else:
            origin = self.trace.bunches[0].timestamp
            self.sim.schedule_batch(
                [
                    self.start_time + (bunch.timestamp - origin)
                    for bunch in self.trace
                ],
                self._dispatch_bunch,
                args_seq=[(bunch,) for bunch in self.trace],
                priority=5,
            )

    def _dispatch_bunch(self, bunch: Bunch) -> None:
        for package in bunch.packages:
            self.issued += 1
            self.device.submit(package, self._on_done)

    def _dispatch_packed(self, i: int) -> None:
        offsets = self.trace.offsets
        start = int(offsets[i])
        stop = int(offsets[i + 1])
        self.issued += stop - start
        if self._submit_slice is not None:
            self._submit_slice(self.trace, start, stop, self._on_done)
        else:
            self._dispatch_rows(start, stop)

    def _dispatch_rows(self, start: int, stop: int) -> None:
        """Per-package fallback for devices without ``submit_slice``."""
        submit = self.device.submit
        fast_pkg = IOPackage._from_validated
        on_done = self._on_done
        for sector, nbytes, op in self.trace.packages[start:stop].tolist():
            submit(fast_pkg(sector, nbytes, op), on_done)

    def _on_done(self, completion: Completion) -> None:
        self.completed += 1
        if self.on_completion is not None:
            self.on_completion(completion)
        if self.completed >= self.total_packages:
            self.end_time = self.sim.now
            if self.on_finished is not None:
                self.on_finished()

    # -- Instrumented variants (installed when telemetry is enabled) ------

    def _dispatch_bunch_instrumented(self, bunch: Bunch) -> None:
        self._tele_bunches.inc()
        self._tele_bunch_i += 1
        if self._tele_bunch_i % _DISPATCH_SPAN_EVERY == 1:
            self._tele_spans.record(
                "replay.dispatch", self.sim.now, self.sim.now,
                packages=len(bunch.packages), path=self._tele_path,
            )
        n = len(bunch.packages)
        for package in bunch.packages:
            self.issued += 1
            self.device.submit(package, self._on_done)
        self._tele_issued.inc(n)

    def _dispatch_packed_instrumented(self, i: int) -> None:
        offsets = self.trace.offsets
        start = int(offsets[i])
        stop = int(offsets[i + 1])
        self._tele_bunches.inc()
        self._tele_issued.inc(stop - start)
        self._tele_bunch_i += 1
        if self._tele_bunch_i % _DISPATCH_SPAN_EVERY == 1:
            self._tele_spans.record(
                "replay.dispatch", self.sim.now, self.sim.now,
                packages=stop - start, path=self._tele_path,
            )
        self.issued += stop - start
        if self._submit_slice is not None:
            self._submit_slice(self.trace, start, stop, self._on_done)
        else:
            self._dispatch_rows(start, stop)

    def _on_done_instrumented(self, completion: Completion) -> None:
        # Per-completion work is one increment, one modulo, and the
        # branch; histograms, spans, and the completed counter advance
        # on the deterministic sampling stride, with an exact remainder
        # sync on the final completion.
        self.completed += 1
        if self.completed % _COMPLETION_SAMPLE_EVERY == 0:
            self._tele_completed.inc(_COMPLETION_SAMPLE_EVERY)
            self._tele_queue.observe(completion.wait_time)
            self._tele_service.observe(completion.service_time)
            self._tele_response.observe(completion.response_time)
            self._tele_spans.record(
                "io.queue", completion.submit_time, completion.start_time,
            )
            self._tele_spans.record(
                "io.service", completion.start_time, completion.finish_time,
            )
        if self.on_completion is not None:
            self.on_completion(completion)
        if self.completed >= self.total_packages:
            self._tele_completed.inc(
                self.completed % _COMPLETION_SAMPLE_EVERY
            )
            self.end_time = self.sim.now
            if self.on_finished is not None:
                self.on_finished()

    def run_to_completion(self, max_events: Optional[int] = None) -> None:
        """Step the simulator until every replayed request completes.

        Tolerates perpetual side events (monitor/analyzer sampling
        ticks) that would make ``sim.run()`` never return.  With
        ``max_events``, at most that many events execute before a
        :class:`ReplayError` is raised.
        """
        if not self._started:
            self.start()
        steps = 0
        while not self.done:
            if max_events is not None and steps >= max_events:
                self._record_stall("replay_max_events", max_events=max_events)
                raise ReplayError(f"exceeded max_events={max_events} during replay")
            if not self.sim.step():
                self._record_stall("replay_drained")
                raise ReplayError(
                    f"simulation drained with {self.total_packages - self.completed} "
                    "requests outstanding — device lost completions"
                )
            steps += 1

    def _record_stall(self, reason: str, **fields) -> None:
        """Flight-record a fatal replay condition and flush any armed dump."""
        from ..telemetry.flightrec import autodump, get_flight_recorder

        get_flight_recorder().record(
            "replay.stall", self.sim.now,
            reason=reason, issued=self.issued, completed=self.completed,
            outstanding=self.total_packages - self.completed, **fields,
        )
        autodump(reason)

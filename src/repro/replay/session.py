"""One full measured replay: load control + replay + monitor + power.

This is the operation the paper's GUI triggers per test: pick a trace,
set a load proportion (and optionally a time-scale), replay it against
the device under test while the performance monitor and the power
analyzer sample in lock-step, and produce the record the evaluation
host stores.
"""

from __future__ import annotations

from typing import Optional

from ..config import ReplayConfig
from ..core.loadcontrol import LoadController
from ..errors import ReplayError
from ..faults.injector import FaultInjector, unwrap
from ..faults.schedule import FaultSchedule
from ..power.analyzer import PowerAnalyzer
from ..power.sensor import HallSensor
from ..sim.engine import Simulator
from ..storage.array import DiskArray
from ..storage.base import StorageDevice
from ..trace.packed import PackedTrace, TraceLike
from ..trace.record import Trace
from .engine import ReplayEngine
from .monitor import PerformanceMonitor
from .results import ReplayResult


class ReplaySession:
    """Configure once, run one measured replay.

    Parameters
    ----------
    device:
        Device under test.  If it is a :class:`~repro.storage.array.DiskArray`
        the power analyzer clamps around the whole enclosure (as the
        paper's magnetic loop does); other devices must expose
        ``energy_between``.
    config:
        Sampling cycle, time-scale, and filter group size.
    sensor:
        Optional imperfect Hall sensor for the power channel.
    faults:
        Optional seeded :class:`~repro.faults.schedule.FaultSchedule`;
        when given, the device is wrapped in a
        :class:`~repro.faults.injector.FaultInjector` and the run's
        injected faults are surfaced in ``ReplayResult.fault_events``.
    """

    def __init__(
        self,
        device: StorageDevice,
        config: Optional[ReplayConfig] = None,
        sensor: Optional[HallSensor] = None,
        thermal: bool = False,
        reporter=None,
        faults: Optional[FaultSchedule] = None,
        stream_interval: Optional[float] = None,
        on_frame=None,
        engine: Optional[str] = None,
        capture=None,
    ) -> None:
        if faults is not None and not faults.empty:
            device = FaultInjector(device, faults)
        self.device = device
        # Optional CaptureSink the run fills with a ReplayCapture —
        # the frozen record the energy-policy oracle re-scores.
        self.capture_sink = capture
        self.config = config or ReplayConfig()
        if engine is not None:
            from dataclasses import replace

            self.config = replace(self.config, engine=engine)
        self.sensor = sensor
        self.thermal = thermal
        self.reporter = reporter
        # Streaming observability: seconds of sim time per interval
        # frame (0 = off).  ``None`` defers to TRACER_TELEMETRY_INTERVAL
        # so long remote replays can be made observable per process.
        from ..telemetry.stream import resolve_interval

        self.stream_interval = resolve_interval(stream_interval)
        self.on_frame = on_frame
        self.controller = LoadController(group_size=self.config.group_size)

    def _thermal_monitor(self):
        """Build a per-member thermal monitor when requested.

        Only meaningful for :class:`~repro.storage.array.DiskArray`
        targets (single devices can wrap their own timeline directly).
        """
        if not self.thermal:
            return None
        from ..storage.hdd import HardDiskDrive
        from ..thermal.model import HDD_THERMAL, SSD_THERMAL, ThermalModel
        from ..thermal.monitor import ThermalMonitor

        target = unwrap(self.device)
        if not isinstance(target, DiskArray) or not target.disks:
            return None
        models = {}
        for disk in target.disks:
            spec = (
                HDD_THERMAL if isinstance(disk, HardDiskDrive) else SSD_THERMAL
            )
            models[disk.name] = ThermalModel(disk.timeline, spec)
        return ThermalMonitor(models, sampling_cycle=self.config.sampling_cycle)

    def _power_source(self):
        target = unwrap(self.device)
        if isinstance(target, DiskArray):
            return target.meter
        return target

    def _kernel_blockers(self) -> Optional[str]:
        """Session-level conditions only the event engine can honour."""
        if isinstance(self.device, FaultInjector):
            return "fault injection active"
        if self.thermal:
            return "thermal monitoring enabled"
        if self.reporter is not None:
            return "live reporter attached"
        if self.on_frame is not None:
            return "per-frame callback attached"
        return None

    def _kernel_result(
        self, outcome, manipulated, load_proportion, sim, slog, start
    ) -> ReplayResult:
        """Assemble a :class:`ReplayResult` from a kernel outcome.

        Mirrors the event path's assembly field for field so results
        compare bit-identical downstream (JSON, ledger, goldens).
        """
        end = sim.now
        duration = end - start
        completed = outcome.completed
        slog.event(
            "finish", time=end, trace=manipulated.label,
            completed=completed, duration=end - start,
        )
        metadata = {
            "time_scale": self.config.time_scale,
            "group_size": self.config.group_size,
            "bunches_replayed": len(manipulated),
            "engine": "kernel",
        }
        if self.stream_interval > 0:
            metadata["interval_frames"] = [
                f.to_dict() for f in outcome.frames
            ]
        analyzer = outcome.analyzer
        return ReplayResult(
            trace_label=manipulated.label,
            load_proportion=load_proportion,
            duration=duration,
            completed=completed,
            total_bytes=outcome.total_bytes,
            mean_response=(
                outcome.total_response / completed if completed else 0.0
            ),
            mean_watts=analyzer.mean_watts,
            energy_joules=analyzer.total_energy,
            perf_samples=list(outcome.perf_samples),
            power_samples=list(analyzer.samples),
            thermal_samples=[],
            fault_events=[],
            metadata=metadata,
        )

    def run(
        self,
        trace: TraceLike,
        load_proportion: float = 1.0,
        sim: Optional[Simulator] = None,
        drain: bool = True,
    ) -> ReplayResult:
        """Replay ``trace`` at ``load_proportion`` and measure.

        ``trace`` may be a legacy object :class:`Trace` or a columnar
        :class:`~repro.trace.packed.PackedTrace`; packed traces stay on
        the vectorised filter/scale/dispatch fast path throughout.

        Parameters
        ----------
        sim:
            Simulator to run on; a fresh one is created by default.  The
            device is (re)attached to it.
        drain:
            Measure until the last request *completes* (True, default) —
            power and throughput then cover the natural span of the run.
        """
        if len(trace) == 0:
            raise ReplayError("cannot replay an empty trace")
        sim = sim if sim is not None else Simulator()
        self.device.attach(sim)

        # Telemetry: mark the process-wide registry so this run can
        # report its own delta, and profile the pipeline stages with
        # wall timers (profiling section, excluded from deterministic
        # snapshots).  When disabled, ``reg`` stays None and the run
        # body is branch-free.
        from ..telemetry import get_registry

        reg: Optional[object] = None
        tele_mark = None
        _reg = get_registry()
        if _reg.enabled:
            import time as _time

            reg = _reg
            tele_mark = _reg.mark()
            tele_path = "packed" if isinstance(trace, PackedTrace) else "object"
            t_filter = _reg.timer("session.filter_seconds", path=tele_path)
            t_replay = _reg.timer("session.replay_wall_seconds", path=tele_path)
            _wall0 = _time.perf_counter()

        # Distributed tracing: when this run executes under a fleet
        # trace context (repro.telemetry.dtrace), its phases land as
        # spans with wall-clock, sim-clock, and energy attribution.
        # One thread-local check per run; no active context ⇒ no cost.
        from ..telemetry import dtrace

        _traced = dtrace.active()
        if _traced:
            import time as _wtime

            _t_phase = _wtime.time()

        manipulated = self.controller.apply(trace, load_proportion)
        if self.config.time_scale != 1.0:
            from ..core.timescale import TimeScaler

            manipulated = TimeScaler(self.config.time_scale).apply(manipulated)
        if reg is not None:
            t_filter.add(_time.perf_counter() - _wall0)
        if _traced:
            _t_now = _wtime.time()
            dtrace.record_span(
                dtrace.SPAN_FILTER, _t_phase, _t_now,
                load=load_proportion, time_scale=self.config.time_scale,
            )
            _t_phase = _t_now
        if len(manipulated) == 0:
            raise ReplayError(
                f"load proportion {load_proportion} left no bunches to replay"
            )

        from ..obslog import get_logger

        slog = get_logger("replay.session")
        start = sim.now
        slog.event(
            "start", time=start, trace=manipulated.label,
            load=load_proportion, packages=manipulated.package_count,
            streaming=self.stream_interval,
        )

        # Engine selection: the analytical kernel computes qualifying
        # fault-free replays in closed form (bit-identical results); the
        # event calendar covers everything else.  ``auto`` probes the
        # kernel and records why it fell back; ``kernel`` demands it.
        engine_mode = self.config.engine
        kernel_reason: Optional[str] = None
        if engine_mode in ("auto", "kernel"):
            kernel_reason = self._kernel_blockers()
            kernel_outcome = None
            if kernel_reason is None:
                from ..sim.kernel import try_kernel_replay

                kernel_outcome, kernel_reason = try_kernel_replay(
                    sim, manipulated, self.device,
                    sampling_cycle=self.config.sampling_cycle,
                    sensor=self.sensor,
                    stream_interval=self.stream_interval,
                )
            if kernel_outcome is not None:
                if self.capture_sink is not None:
                    from .capture import workload_totals

                    self.capture_sink.finish(
                        unwrap(self.device),
                        end=sim.now,
                        finishes=kernel_outcome.finishes,
                        responses=kernel_outcome.responses,
                        totals=workload_totals(manipulated),
                    )
                if _traced:
                    dtrace.record_span(
                        dtrace.SPAN_REPLAY, _t_phase, _wtime.time(),
                        sim_start=start, sim_end=sim.now,
                        energy_joules=kernel_outcome.analyzer.total_energy,
                        engine="kernel",
                    )
                return self._kernel_result(
                    kernel_outcome, manipulated, load_proportion, sim,
                    slog, start,
                )
            if engine_mode == "kernel":
                raise ReplayError(
                    "engine='kernel' requested but the run does not "
                    f"qualify: {kernel_reason}"
                )

        monitor = PerformanceMonitor(
            sampling_cycle=self.config.sampling_cycle,
            on_sample=(
                self.reporter.on_sample if self.reporter is not None else None
            ),
        )
        analyzer = PowerAnalyzer(
            self._power_source(),
            sampling_cycle=self.config.sampling_cycle,
            sensor=self.sensor,
        )
        if self.reporter is not None:
            self.reporter.bind(analyzer)
        target = unwrap(self.device)
        recorder = None
        on_completion = monitor.record
        if self.stream_interval > 0:
            # Streaming on: the interval recorder owns its instruments
            # (independent of the gated registry, so frame series are
            # identical whether telemetry is enabled or not) and shares
            # the engine's completion hook with the monitor.  When off,
            # the engine keeps the bare monitor hook — the seed path.
            from ..telemetry.stream import IntervalRecorder

            recorder = IntervalRecorder(
                self.stream_interval,
                power_source=self._power_source(),
                members=(
                    target.disks if isinstance(target, DiskArray) else [target]
                ),
                injector=(
                    self.device
                    if isinstance(self.device, FaultInjector)
                    else None
                ),
                array=target if isinstance(target, DiskArray) else None,
                on_frame=self.on_frame,
            )
            record_perf = monitor.record
            observe_frame = recorder.observe

            def on_completion(completion):
                record_perf(completion)
                observe_frame(completion)

        if self.capture_sink is not None:
            inner_hook = on_completion
            observe_capture = self.capture_sink.observe

            def on_completion(completion, _inner=inner_hook):
                _inner(completion)
                observe_capture(completion)

        engine = ReplayEngine(
            sim, manipulated, self.device, on_completion=on_completion
        )
        thermal_monitor = self._thermal_monitor()

        monitor.start(sim)
        analyzer.start(sim)
        if recorder is not None:
            recorder.start(sim)
        if thermal_monitor is not None:
            thermal_monitor.start(sim)
        if reg is not None:
            _wall0 = _time.perf_counter()
        engine.start()
        engine.run_to_completion()
        if reg is not None:
            t_replay.add(_time.perf_counter() - _wall0)
        monitor.stop()
        if recorder is not None:
            recorder.stop()
        analyzer.stop()
        if thermal_monitor is not None:
            thermal_monitor.stop()
        end = sim.now
        slog.event(
            "finish", time=end, trace=manipulated.label,
            completed=monitor.total_completed, duration=end - start,
        )

        if self.capture_sink is not None:
            fin_series, resp_series = self.capture_sink.observed_series()
            self.capture_sink.finish(
                target,
                end=end,
                finishes=fin_series,
                responses=resp_series,
                totals=self.capture_sink.observed_totals(),
            )

        duration = end - start
        total_bytes = monitor.total_bytes
        completed = monitor.total_completed
        responses = monitor.total_response
        metadata = {
            "time_scale": self.config.time_scale,
            "group_size": self.config.group_size,
            "bunches_replayed": len(manipulated),
            "engine": "event",
        }
        if engine_mode == "auto" and kernel_reason is not None:
            metadata["engine_fallback"] = kernel_reason
        if recorder is not None:
            metadata["interval_frames"] = [
                f.to_dict() for f in recorder.frames
            ]
        fault_events = []
        if isinstance(self.device, FaultInjector):
            fault_events = list(self.device.fault_events)
            metadata["fault_counters"] = dict(self.device.counters)
        if isinstance(target, DiskArray) and target.degraded_requests:
            metadata["degraded_requests"] = target.degraded_requests
            metadata["reconstruct_reads"] = target.reconstruct_reads
            metadata["failed_disk"] = target.failed_disk
        if reg is not None:
            _reg.spans.record(
                "session.stage", start, end, stage="replay", path=tele_path
            )
            # Power-model state residency (busy vs idle per member) and
            # queue-discipline totals — sim-clock / plain-int sources,
            # so the gauges stay deterministic.
            members = target.disks if isinstance(target, DiskArray) else [target]
            for disk in members:
                timeline = getattr(disk, "timeline", None)
                if timeline is not None:
                    busy = timeline.busy_time(start, end)
                    _reg.gauge("power.busy_seconds", device=disk.name).set(busy)
                    _reg.gauge("power.busy_fraction", device=disk.name).set(
                        busy / duration if duration > 0 else 0.0
                    )
                queue = getattr(disk, "_queue", None)
                if queue is not None:
                    _reg.gauge(
                        "queue.pushed_total", device=disk.name
                    ).set(queue.pushed_total)
                    _reg.gauge(
                        "queue.popped_total", device=disk.name
                    ).set(queue.popped_total)
                    _reg.gauge(
                        "queue.high_water", device=disk.name
                    ).set(getattr(disk, "queued_high_water", 0))
            metadata["telemetry"] = _reg.collect(since=tele_mark)
        if _traced:
            dtrace.record_span(
                dtrace.SPAN_REPLAY, _t_phase, _wtime.time(),
                sim_start=start, sim_end=end,
                energy_joules=analyzer.total_energy,
                engine="event",
            )
        return ReplayResult(
            trace_label=manipulated.label,
            load_proportion=load_proportion,
            duration=duration,
            completed=completed,
            total_bytes=total_bytes,
            mean_response=responses / completed if completed else 0.0,
            mean_watts=analyzer.mean_watts,
            energy_joules=analyzer.total_energy,
            perf_samples=list(monitor.samples),
            power_samples=list(analyzer.samples),
            thermal_samples=(
                list(thermal_monitor.samples)
                if thermal_monitor is not None
                else []
            ),
            fault_events=fault_events,
            metadata=metadata,
        )


def replay_trace(
    trace: TraceLike,
    device: StorageDevice,
    load_proportion: float = 1.0,
    config: Optional[ReplayConfig] = None,
    faults: Optional[FaultSchedule] = None,
    stream_interval: Optional[float] = None,
    on_frame=None,
    engine: Optional[str] = None,
    capture=None,
) -> ReplayResult:
    """Convenience one-shot wrapper around :class:`ReplaySession`."""
    return ReplaySession(
        device,
        config=config,
        faults=faults,
        stream_interval=stream_interval,
        on_frame=on_frame,
        engine=engine,
        capture=capture,
    ).run(trace, load_proportion)

"""Trace replay: the engine that issues bunches, the performance monitor,
and the session orchestration tying filter + replay + power measurement
together.

* :class:`~repro.replay.engine.ReplayEngine` — open-loop issue of
  bunches at their (rebased) timestamps; intra-bunch packages submit
  concurrently, per §IV-A.
* :class:`~repro.replay.monitor.PerformanceMonitor` — per-cycle IOPS /
  MBPS / response-time sampling (default cycle 1 s, configurable).
* :class:`~repro.replay.session.ReplaySession` — one full measured
  replay: applies the load controller, arms monitor and power analyzer,
  runs to completion, returns a :class:`~repro.replay.results.ReplayResult`.
* :mod:`~repro.replay.realtime` — optional wall-clock replayer (the
  paper's actual modality), best-effort under the GIL.
"""

from .engine import ReplayEngine
from .monitor import PerformanceMonitor, PerfSample
from .results import ReplayResult, CycleRecord
from .session import ReplaySession, replay_trace

__all__ = [
    "ReplayEngine",
    "PerformanceMonitor",
    "PerfSample",
    "ReplayResult",
    "CycleRecord",
    "ReplaySession",
    "replay_trace",
]

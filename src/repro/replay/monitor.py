"""Per-cycle performance monitoring.

"the trace replay tool ... monitors and tracks performance information
like I/O throughput (measured in MBPS and IOPS) and average response
time" (§III-A2), sampled on the same configurable cycle as the power
analyzer (default 1 s) so performance and power samples align.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ReplayError
from ..sim.engine import Simulator
from ..storage.base import Completion


@dataclass(frozen=True)
class PerfSample:
    """Performance over one sampling cycle."""

    start: float
    end: float
    completed: int
    total_bytes: int
    total_response: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def iops(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mbps(self) -> float:
        return (self.total_bytes / 1e6) / self.duration if self.duration > 0 else 0.0

    @property
    def mean_response(self) -> float:
        return self.total_response / self.completed if self.completed else 0.0


class PerformanceMonitor:
    """Counts completions per sampling cycle on the simulation clock.

    ``on_sample`` (if given) is invoked with each completed
    :class:`PerfSample` the moment its cycle closes — the hook the live
    console reporter (and any GUI stand-in) listens on.
    """

    def __init__(
        self,
        sampling_cycle: float = 1.0,
        on_sample=None,
    ) -> None:
        if sampling_cycle <= 0:
            raise ReplayError(f"sampling_cycle must be > 0, got {sampling_cycle}")
        self.sampling_cycle = float(sampling_cycle)
        self.on_sample = on_sample
        self.samples: List[PerfSample] = []
        self._sim: Optional[Simulator] = None
        self._armed = False
        self._cycle_start = 0.0
        self._count = 0
        self._bytes = 0
        self._response = 0.0
        self._pending_event = None
        from ..telemetry import get_registry

        reg = get_registry()
        self._tele = reg if reg.enabled else None
        if self._tele is not None:
            self._tele_cycles = reg.counter("monitor.cycles")
            self._tele_forced = reg.counter("monitor.forced_closes")

    def start(self, sim: Simulator) -> None:
        if self._armed:
            raise ReplayError("monitor already started")
        self._armed = True
        self._sim = sim
        self._cycle_start = sim.now
        self._count = 0
        self._bytes = 0
        self._response = 0.0
        self.samples = []
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        assert self._sim is not None
        self._pending_event = self._sim.schedule(
            self._cycle_start + self.sampling_cycle, self._tick, priority=10
        )

    def _tick(self) -> None:
        assert self._sim is not None
        self._close_cycle(self._sim.now)
        if self._armed:
            self._schedule_tick()

    def _close_cycle(self, end: float, force: bool = False) -> None:
        # A cycle that saw no time normally stays open (ticks land on
        # boundaries; an empty zero-width window is not a sample).  But
        # on a forced close (stop()) any pending counts must still be
        # emitted, otherwise completions recorded in a zero-duration
        # final window — instant devices, sub-cycle runs — vanish from
        # ``samples`` while the totals still include them.
        if end <= self._cycle_start and not (force and self._count):
            return
        sample = PerfSample(
            start=self._cycle_start,
            end=end,
            completed=self._count,
            total_bytes=self._bytes,
            total_response=self._response,
        )
        self.samples.append(sample)
        self._cycle_start = end
        self._count = 0
        self._bytes = 0
        self._response = 0.0
        if self._tele is not None:
            self._tele_cycles.inc()
            if force:
                self._tele_forced.inc()
        if self.on_sample is not None:
            self.on_sample(sample)

    def record(self, completion: Completion) -> None:
        """Hook for the replay engine: account one finished request."""
        if not self._armed:
            raise ReplayError("monitor not started")
        self._count += 1
        self._bytes += completion.package.nbytes
        self._response += completion.response_time

    def stop(self) -> None:
        """Disarm; closes the final partial cycle if it saw any time."""
        if not self._armed:
            raise ReplayError("monitor not started")
        self._armed = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        assert self._sim is not None
        self._close_cycle(self._sim.now, force=True)

    # -- Aggregates over all samples --------------------------------------

    @property
    def total_completed(self) -> int:
        return sum(s.completed for s in self.samples) + self._count

    @property
    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self.samples) + self._bytes

    @property
    def total_response(self) -> float:
        """Summed response time, including any still-open cycle."""
        return sum(s.total_response for s in self.samples) + self._response

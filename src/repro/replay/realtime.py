"""Best-effort wall-clock replay (the paper's actual modality).

The calibration notes for this reproduction flag the obvious problem:
timing-accurate block replay from pure Python fights the GIL, the OS
scheduler, and ``time.sleep`` granularity.  The deterministic DES path
(:mod:`repro.replay.engine`) is therefore the default everywhere.  This
module exists to demonstrate the architecture end-to-end in real time:
it replays bunches against any callable target using a thread pool for
intra-bunch concurrency, and *measures its own timing error* so users
can see exactly how (im)precise wall-clock replay is on their host.

The target is a plain callable ``handle(package) -> None`` executed for
each request (e.g. writes against a file, or a no-op sink); simulated
:class:`~repro.storage.base.StorageDevice` objects live on the DES clock
and are not valid targets here.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ReplayError
from ..trace.record import IOPackage, Trace

RequestHandler = Callable[[IOPackage], None]


@dataclass(frozen=True)
class RealtimeReport:
    """Timing fidelity of one wall-clock replay."""

    bunches: int
    packages: int
    wall_duration: float
    trace_duration: float
    mean_lateness: float
    max_lateness: float

    @property
    def slowdown(self) -> float:
        """Wall time over trace time (1.0 = perfectly on schedule)."""
        if self.trace_duration <= 0:
            return 1.0
        return self.wall_duration / self.trace_duration


class RealtimeReplayer:
    """Wall-clock, thread-pooled trace replayer.

    Parameters
    ----------
    handler:
        Called once per IOPackage, from worker threads.
    workers:
        Thread-pool width for intra-bunch concurrency.
    speedup:
        >1 compresses the schedule (like the time scaler, but applied
        at dispatch).
    """

    def __init__(
        self,
        handler: RequestHandler,
        workers: int = 8,
        speedup: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ReplayError(f"workers must be >= 1, got {workers}")
        if speedup <= 0:
            raise ReplayError(f"speedup must be > 0, got {speedup}")
        self.handler = handler
        self.workers = workers
        self.speedup = speedup

    def replay(self, trace: Trace) -> RealtimeReport:
        """Replay the whole trace; blocks until every request returns."""
        if len(trace) == 0:
            raise ReplayError("cannot replay an empty trace")
        origin_ts = trace.bunches[0].timestamp
        latenesses: List[float] = []
        lock = threading.Lock()
        packages = 0

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            start_wall = time.perf_counter()
            futures = []
            for bunch in trace:
                target = (bunch.timestamp - origin_ts) / self.speedup
                while True:
                    now = time.perf_counter() - start_wall
                    remaining = target - now
                    if remaining <= 0:
                        break
                    # Sleep coarsely, then spin the final millisecond —
                    # the standard trick to beat sleep() granularity.
                    if remaining > 0.002:
                        time.sleep(remaining - 0.001)
                late = (time.perf_counter() - start_wall) - target
                with lock:
                    latenesses.append(max(late, 0.0))
                for pkg in bunch.packages:
                    packages += 1
                    futures.append(pool.submit(self.handler, pkg))
            wait(futures)
            wall = time.perf_counter() - start_wall
        # Surface handler exceptions.
        for fut in futures:
            exc = fut.exception()
            if exc is not None:
                raise ReplayError(f"request handler failed: {exc!r}") from exc
        return RealtimeReport(
            bunches=len(trace),
            packages=packages,
            wall_duration=wall,
            trace_duration=trace.duration / self.speedup,
            mean_lateness=sum(latenesses) / len(latenesses) if latenesses else 0.0,
            max_lateness=max(latenesses) if latenesses else 0.0,
        )

"""Replay result records.

A :class:`ReplayResult` is the unit the evaluation host stores in its
database: workload/replay configuration, per-cycle performance and power
series, and the aggregate metrics of §V-B (IOPS, MBPS, response time,
Watts, IOPS/Watt, MBPS/Kilowatt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..faults.schedule import FaultEvent
from ..metrics.efficiency import iops_per_watt, mbps_per_kilowatt
from ..power.analyzer import PowerSample
from .monitor import PerfSample


@dataclass(frozen=True)
class CycleRecord:
    """One aligned (performance, power) sampling cycle."""

    start: float
    end: float
    iops: float
    mbps: float
    mean_response: float
    watts: float

    @property
    def iops_per_watt(self) -> float:
        return iops_per_watt(self.iops, self.watts)

    @property
    def mbps_per_kilowatt(self) -> float:
        return mbps_per_kilowatt(self.mbps, self.watts)


@dataclass
class ReplayResult:
    """Everything measured during one replay run."""

    trace_label: str
    load_proportion: float
    duration: float
    completed: int
    total_bytes: int
    mean_response: float
    mean_watts: float
    energy_joules: float
    perf_samples: List[PerfSample] = field(default_factory=list)
    power_samples: List[PowerSample] = field(default_factory=list)
    thermal_samples: List[Any] = field(default_factory=list)
    """Per-cycle :class:`~repro.thermal.monitor.ThermalSample` records,
    populated when the session ran with thermal monitoring enabled
    (the paper's future-work temperature metric)."""
    fault_events: List[FaultEvent] = field(default_factory=list)
    """Injected faults that fired during this run (seeded fault
    injection), in simulation-time order.  Empty for clean runs."""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def iops(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mbps(self) -> float:
        return (self.total_bytes / 1e6) / self.duration if self.duration > 0 else 0.0

    @property
    def iops_per_watt(self) -> float:
        return iops_per_watt(self.iops, self.mean_watts)

    @property
    def mbps_per_kilowatt(self) -> float:
        return mbps_per_kilowatt(self.mbps, self.mean_watts)

    @property
    def interval_frames(self) -> List[Dict[str, Any]]:
        """Streamed interval-frame dicts, when the session ran with a
        streaming interval (``[]`` otherwise).  Frames live in
        ``metadata`` so they ride the wire protocol unchanged."""
        return list(self.metadata.get("interval_frames", []))

    @property
    def max_temperature(self) -> float:
        """Hottest sampled device temperature (°C); 0.0 if not monitored."""
        if not self.thermal_samples:
            return 0.0
        return max(s.true_celsius for s in self.thermal_samples)

    def cycles(self) -> List[CycleRecord]:
        """Join performance and power samples into aligned cycle records.

        Samples are produced on the same clock with the same cycle, so
        they pair one-to-one; if one series is longer (partial final
        window on one side), the tail pairs with the nearest window.
        """
        records = []
        n = min(len(self.perf_samples), len(self.power_samples))
        for i in range(n):
            perf = self.perf_samples[i]
            power = self.power_samples[i]
            records.append(
                CycleRecord(
                    start=perf.start,
                    end=perf.end,
                    iops=perf.iops,
                    mbps=perf.mbps,
                    mean_response=perf.mean_response,
                    watts=power.watts,
                )
            )
        return records

    def to_dict(self) -> Dict[str, Any]:
        """Flat summary for the database / wire protocol (no series)."""
        return {
            "trace_label": self.trace_label,
            "load_proportion": self.load_proportion,
            "duration": self.duration,
            "completed": self.completed,
            "total_bytes": self.total_bytes,
            "iops": self.iops,
            "mbps": self.mbps,
            "mean_response": self.mean_response,
            "mean_watts": self.mean_watts,
            "energy_joules": self.energy_joules,
            "iops_per_watt": self.iops_per_watt,
            "mbps_per_kilowatt": self.mbps_per_kilowatt,
            "fault_events": [e.to_dict() for e in self.fault_events],
            "metadata": dict(self.metadata),
        }

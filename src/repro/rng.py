"""Seeded random-number helpers.

Every stochastic component in the reproduction (workload generators,
sensor noise, arrival processes) draws from a ``numpy.random.Generator``
created here, so whole experiments are reproducible from a single integer
seed.  Components never call ``numpy.random`` module-level functions.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x7ACE_12


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` for the library default seed.  The default is a fixed
    constant — *not* entropy — because reproducibility is the point of an
    evaluation framework.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_seed(base: int, *labels: str) -> int:
    """Derive a stable child seed from a base seed and string labels.

    Used to give independent streams to sub-components (e.g. one stream
    per disk's sensor noise) without the streams being correlated or
    order-dependent.
    """
    h = hashlib.sha256()
    h.update(str(int(base)).encode("ascii"))
    for label in labels:
        h.update(b"\x00")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


def spawn(seed: int | None, *labels: str) -> np.random.Generator:
    """Convenience: ``make_rng(derive_seed(seed or default, *labels))``."""
    base = DEFAULT_SEED if seed is None else seed
    return make_rng(derive_seed(base, *labels))

"""Span-style tracing of the replay pipeline.

A span is one interval on the *simulation* clock attributed to a stage
of the pipeline: a bunch entering the calendar, a request waiting in a
device queue, media service, fault-injected delay.  Because spans carry
simulated times only, a seeded run reproduces its span log exactly.

The recorder is bounded: after ``max_spans`` entries only the drop
counter advances, so span tracing never turns a long replay into a
memory leak.  TraceTracker-style layer reconstruction (PAPERS.md) needs
the *shape* of where time goes, which the first few hundred spans plus
the exhaustive histograms provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Default cap on retained span records per recorder.
DEFAULT_MAX_SPANS = 512

#: Span categories used by the built-in instrumentation, in pipeline
#: order.  Components may add their own; these names are the catalog
#: documented in docs/observability.md.
SPAN_DISPATCH = "replay.dispatch"
SPAN_QUEUE = "io.queue"
SPAN_SERVICE = "io.service"
SPAN_COMPLETE = "io.complete"
SPAN_FAULT = "fault.delay"
SPAN_DEGRADED = "raid.degraded"
SPAN_STAGE = "session.stage"


@dataclass(frozen=True)
class Span:
    """One attributed interval on the simulation clock."""

    category: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Bounded, append-only span log."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = int(max_spans)
        self._spans: List[Span] = []
        self.total_recorded = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def record(
        self,
        category: str,
        start: float,
        end: float,
        **attrs: Any,
    ) -> None:
        """Append one span; silently counts drops past the cap."""
        self.total_recorded += 1
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return
        self._spans.append(Span(category, float(start), float(end), attrs))

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def snapshot(self, since: int = 0) -> Dict[str, Any]:
        """JSON-safe view; ``since`` skips spans recorded before a mark.

        ``since`` counts *recorded* spans (including dropped ones), so a
        delta taken after the cap was reached reports only drop counts —
        deterministic either way.
        """
        retained_cursor = min(since, len(self._spans))
        spans = [s.to_dict() for s in self._spans[retained_cursor:]]
        return {
            "spans": spans,
            "total_recorded": self.total_recorded - since,
            "dropped": max(
                self.dropped - max(since - self.max_spans, 0), 0
            ),
        }

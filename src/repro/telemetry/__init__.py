"""``repro.telemetry`` — zero-cost-when-disabled replay instrumentation.

Public surface:

* :func:`get_registry`, :func:`telemetry_enabled`, :func:`set_enabled`,
  :func:`enabled_telemetry` — the process-wide switchboard;
* :class:`MetricsRegistry` with :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` (fixed buckets), :class:`Timer` (wall clock);
* :class:`SpanRecorder` / :class:`Span` — bounded pipeline tracing;
* exporters: :func:`to_jsonl`, :func:`to_prometheus`,
  :func:`write_jsonl`, :func:`format_table`.

Enable for a process with ``TRACER_TELEMETRY=1`` (the CI telemetry
matrix job does exactly this) or for a scope with
:func:`enabled_telemetry`.  The flag is a *construction-time* gate:
components built while it is off carry no instrumentation at all.
"""

from .dtrace import (
    DTRACE_ENV,
    SpanHandle,
    TraceContext,
    build_tree,
    new_trace_id,
    render_tree,
    tracing_scope,
)
from .exporters import format_table, to_jsonl, to_prometheus, write_jsonl
from .flightrec import (
    DEFAULT_CAPACITY,
    FLIGHTREC_ENV,
    FlightEvent,
    FlightRecorder,
    arm_autodump,
    autodump,
    autodump_armed,
    get_flight_recorder,
    install_excepthook,
)
from .registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    TELEMETRY_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
    Timer,
    enabled_telemetry,
    get_registry,
    set_enabled,
    telemetry_enabled,
)
from .stream import (
    TELEMETRY_INTERVAL_ENV,
    IntervalFrame,
    IntervalRecorder,
    default_interval,
    frames_to_jsonl,
    resolve_interval,
    write_frames_jsonl,
)
from .spans import (
    DEFAULT_MAX_SPANS,
    SPAN_COMPLETE,
    SPAN_DEGRADED,
    SPAN_DISPATCH,
    SPAN_FAULT,
    SPAN_QUEUE,
    SPAN_SERVICE,
    SPAN_STAGE,
    Span,
    SpanRecorder,
)

__all__ = [
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "IntervalFrame",
    "IntervalRecorder",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TelemetryError",
    "Timer",
    "SpanHandle",
    "TraceContext",
    "DEFAULT_CAPACITY",
    "DEFAULT_MAX_SPANS",
    "DTRACE_ENV",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "FLIGHTREC_ENV",
    "TELEMETRY_ENV",
    "TELEMETRY_INTERVAL_ENV",
    "SPAN_COMPLETE",
    "SPAN_DEGRADED",
    "SPAN_DISPATCH",
    "SPAN_FAULT",
    "SPAN_QUEUE",
    "SPAN_SERVICE",
    "SPAN_STAGE",
    "arm_autodump",
    "autodump",
    "autodump_armed",
    "build_tree",
    "default_interval",
    "enabled_telemetry",
    "format_table",
    "frames_to_jsonl",
    "get_flight_recorder",
    "get_registry",
    "install_excepthook",
    "new_trace_id",
    "render_tree",
    "resolve_interval",
    "set_enabled",
    "telemetry_enabled",
    "to_jsonl",
    "to_prometheus",
    "tracing_scope",
    "write_frames_jsonl",
    "write_jsonl",
]

"""Interval-frame streaming: periodic flush of in-flight replay metrics.

A :class:`ReplaySession` configured with a streaming interval attaches
an :class:`IntervalRecorder` to the replay: every ``interval`` seconds
of *simulation* time the recorder closes an :class:`IntervalFrame` —
the delta of throughput, latency histogram, energy, queue depth, and
fault/degraded counters over that window — and hands it to an
``on_frame`` callback (the live console, the distributed ``PROGRESS``
push) while also retaining the full series for
``ReplayResult.metadata["interval_frames"]``.

Determinism is the contract: every number in a frame derives from the
simulation clock, the completion stream, or deterministic device
counters — never a wall clock — and the recorder's tick events are
scheduled like the performance monitor's, so identically seeded runs
produce byte-identical frame series on the object and packed replay
paths, with telemetry enabled or disabled (the recorder owns its
instruments rather than borrowing the gated registry's).

Streaming is off by default; enable per session or process-wide with
``TRACER_TELEMETRY_INTERVAL=<seconds>``.  When off, nothing here is
constructed and the replay hot path is untouched.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ReplayError
from ..sim.engine import Simulator
from .flightrec import get_flight_recorder
from .registry import DEFAULT_TIME_BUCKETS, Histogram

#: Environment variable: seconds of sim time per interval frame (> 0
#: enables streaming process-wide; unset/0 disables it).
TELEMETRY_INTERVAL_ENV = "TRACER_TELEMETRY_INTERVAL"

PathLike = Union[str, Path]

#: Recorder ticks run after the performance monitor's (priority 10) at
#: the same instant, so a frame boundary never splits a monitor cycle.
_TICK_PRIORITY = 11

_FAULT_COUNTER_KEYS: Tuple[str, ...] = (
    "sector_errors", "slowdown_delayed", "stuck_held", "disk_failures",
)


def default_interval() -> float:
    """The process-wide streaming interval from the environment (0 = off)."""
    raw = os.environ.get(TELEMETRY_INTERVAL_ENV, "").strip()
    if not raw:
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        return 0.0
    return value if value > 0 else 0.0


def resolve_interval(interval: Optional[float]) -> float:
    """An explicit per-session interval, falling back to the environment."""
    if interval is None:
        return default_interval()
    value = float(interval)
    return value if value > 0 else 0.0


@dataclass(frozen=True)
class IntervalFrame:
    """One streamed window of replay metrics (all sim-clock quantities)."""

    index: int
    start: float
    end: float
    completed: int
    total_bytes: int
    response_sum: float
    energy_joules: float
    queue_depth: int
    latency_buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS
    latency_counts: Tuple[int, ...] = ()
    faults: Dict[str, int] = field(default_factory=dict)
    degraded_requests: int = 0
    reconstruct_reads: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def iops(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return (self.total_bytes / 1e6) / self.duration

    @property
    def mean_response(self) -> float:
        return self.response_sum / self.completed if self.completed else 0.0

    @property
    def watts(self) -> float:
        return self.energy_joules / self.duration if self.duration > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; key set is fixed so frame schemas never drift."""
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "completed": self.completed,
            "total_bytes": self.total_bytes,
            "response_sum": self.response_sum,
            "iops": self.iops,
            "mbps": self.mbps,
            "mean_response": self.mean_response,
            "energy_joules": self.energy_joules,
            "watts": self.watts,
            "queue_depth": self.queue_depth,
            "latency": {
                "buckets": list(self.latency_buckets),
                "counts": list(self.latency_counts),
            },
            "faults": dict(self.faults),
            "degraded_requests": self.degraded_requests,
            "reconstruct_reads": self.reconstruct_reads,
        }


class IntervalRecorder:
    """Closes one :class:`IntervalFrame` per sim-time interval.

    Parameters
    ----------
    interval:
        Seconds of simulation time per frame (> 0).
    power_source:
        Anything with ``energy_between(t0, t1)``; per-frame energy is
        integrated over exactly the frame window.
    members:
        Devices whose queues contribute to the frame's ``queue_depth``
        (in-flight = pushed − popped, read at the tick instant).
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; its
        counters are windowed into per-frame deltas.
    array:
        Optional :class:`~repro.storage.array.DiskArray` for degraded /
        reconstruct-read deltas.
    on_frame:
        Called with each closed :class:`IntervalFrame` (live view,
        wire push).  Exceptions propagate — a broken consumer should
        fail the run loudly, not silently drop frames.
    """

    def __init__(
        self,
        interval: float,
        power_source=None,
        members: Sequence[Any] = (),
        injector=None,
        array=None,
        on_frame: Optional[Callable[[IntervalFrame], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ReplayError(f"streaming interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.power_source = power_source
        self.members = list(members)
        self.injector = injector
        self.array = array
        self.on_frame = on_frame
        self.frames: List[IntervalFrame] = []
        self._sim: Optional[Simulator] = None
        self._armed = False
        self._frame_start = 0.0
        self._count = 0
        self._bytes = 0
        self._response = 0.0
        self._hist = Histogram(DEFAULT_TIME_BUCKETS)
        self._prev_faults = self._fault_counts()
        self._prev_degraded = 0
        self._prev_reconstruct = 0
        self._pending_event = None
        self._flightrec = get_flight_recorder()

    # -- Lifecycle ---------------------------------------------------------

    def start(self, sim: Simulator) -> None:
        if self._armed:
            raise ReplayError("interval recorder already started")
        self._armed = True
        self._sim = sim
        self._frame_start = sim.now
        self._count = 0
        self._bytes = 0
        self._response = 0.0
        self._hist = Histogram(DEFAULT_TIME_BUCKETS)
        self.frames = []
        self._prev_faults = self._fault_counts()
        self._prev_degraded = self._degraded()
        self._prev_reconstruct = self._reconstructs()
        self._schedule_tick()

    def observe(self, completion) -> None:
        """Completion hook (composed with the monitor's in the session)."""
        self._count += 1
        self._bytes += completion.package.nbytes
        self._response += completion.response_time
        self._hist.observe(completion.response_time)

    def stop(self) -> None:
        """Disarm; closes the final partial frame if it saw time or work."""
        if not self._armed:
            raise ReplayError("interval recorder not started")
        self._armed = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        assert self._sim is not None
        self._close_frame(self._sim.now, force=True)

    # -- Frame machinery ---------------------------------------------------

    def _schedule_tick(self) -> None:
        assert self._sim is not None
        self._pending_event = self._sim.schedule(
            self._frame_start + self.interval, self._tick,
            priority=_TICK_PRIORITY,
        )

    def _tick(self) -> None:
        assert self._sim is not None
        self._close_frame(self._sim.now)
        if self._armed:
            self._schedule_tick()

    def _fault_counts(self) -> Dict[str, int]:
        if self.injector is None:
            return {}
        return {k: self.injector.counters.get(k, 0)
                for k in _FAULT_COUNTER_KEYS}

    def _degraded(self) -> int:
        return getattr(self.array, "degraded_requests", 0) or 0

    def _reconstructs(self) -> int:
        return getattr(self.array, "reconstruct_reads", 0) or 0

    def _queue_depth(self) -> int:
        depth = 0
        for member in self.members:
            queue = getattr(member, "_queue", None)
            if queue is not None:
                depth += queue.pushed_total - queue.popped_total
        return depth

    def _close_frame(self, end: float, force: bool = False) -> None:
        # Mirror the monitor's closing rule: boundary ticks on an empty
        # zero-width window are not frames, but a forced close (stop)
        # must still flush pending counts.
        if end <= self._frame_start and not (force and self._count):
            return
        energy = (
            self.power_source.energy_between(self._frame_start, end)
            if self.power_source is not None
            else 0.0
        )
        faults_now = self._fault_counts()
        frame = IntervalFrame(
            index=len(self.frames),
            start=self._frame_start,
            end=end,
            completed=self._count,
            total_bytes=self._bytes,
            response_sum=self._response,
            energy_joules=energy,
            queue_depth=self._queue_depth(),
            latency_buckets=self._hist.buckets,
            latency_counts=tuple(self._hist.counts),
            faults={
                k: faults_now[k] - self._prev_faults.get(k, 0)
                for k in faults_now
            },
            degraded_requests=self._degraded() - self._prev_degraded,
            reconstruct_reads=self._reconstructs() - self._prev_reconstruct,
        )
        self.frames.append(frame)
        self._frame_start = end
        self._count = 0
        self._bytes = 0
        self._response = 0.0
        self._hist = Histogram(DEFAULT_TIME_BUCKETS)
        self._prev_faults = faults_now
        self._prev_degraded = frame.degraded_requests + self._prev_degraded
        self._prev_reconstruct = (
            frame.reconstruct_reads + self._prev_reconstruct
        )
        self._flightrec.record(
            "stream.interval", frame.end,
            index=frame.index, completed=frame.completed,
            queue_depth=frame.queue_depth,
        )
        if self.on_frame is not None:
            self.on_frame(frame)


class FrameFanout:
    """Deliver one job's interval frames to many watchers, exactly once.

    The fleet scheduler (and any other multi-consumer front end) owns
    one fanout per streamed job: every producer-side frame arrives via
    :meth:`deliver` tagged with its sequence number, and only frames
    *advancing* the sequence are forwarded — so a retried dispatch whose
    frames are replayed from a server-side cache, a reconnect that
    re-pushes an overlapping window, or out-of-order duplicates can
    never reach a watcher twice.  Watchers added mid-stream only see
    frames from their attach point on (live view semantics; the full
    series still rides the terminal result).

    A watcher that raises is dropped — one broken consumer must never
    stall the stream for the others (mirroring
    :meth:`Communicator.request`'s single-consumer rule).
    """

    def __init__(self) -> None:
        self._watchers: Dict[int, Callable[[Dict[str, Any]], None]] = {}
        self._next_token = 0
        self._seen_up_to = -1
        self.delivered = 0
        self.duplicates_dropped = 0

    def add(self, watcher: Callable[[Dict[str, Any]], None]) -> Callable[[], None]:
        """Attach a watcher; returns a zero-argument detach callable."""
        token = self._next_token
        self._next_token += 1
        self._watchers[token] = watcher

        def detach() -> None:
            self._watchers.pop(token, None)

        return detach

    def __len__(self) -> int:
        return len(self._watchers)

    def deliver(self, seq: int, frame: Dict[str, Any]) -> bool:
        """Forward ``frame`` to every watcher unless ``seq`` is stale.

        Returns True when the frame advanced the stream (was fanned
        out), False when it was a duplicate and dropped.
        """
        if seq <= self._seen_up_to:
            self.duplicates_dropped += 1
            return False
        self._seen_up_to = seq
        self.delivered += 1
        for token, watcher in list(self._watchers.items()):
            try:
                watcher(frame)
            except Exception:
                self._watchers.pop(token, None)
        return True


def frames_to_jsonl(frames: Iterable[Any]) -> str:
    """Frames (objects or wire dicts) as canonical JSON Lines text.

    Keys are sorted and floats rendered by :func:`json.dumps` defaults,
    so two deterministic runs produce byte-identical text — the property
    the golden streaming test pins.
    """
    lines = []
    for frame in frames:
        payload = frame.to_dict() if hasattr(frame, "to_dict") else frame
        lines.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def write_frames_jsonl(frames: Iterable[Any], path: PathLike) -> Path:
    """Write a frame series to ``path`` as JSON Lines."""
    out = Path(path)
    out.write_text(frames_to_jsonl(frames))
    return out

"""The process-wide metrics registry.

TRACER's value is *measurement*: the paper's evaluation host records
workload mode, power, performance, and efficiency for every test.  This
module gives the replay engine itself the same treatment — counters,
gauges, and histograms describing where simulated I/O time goes — so the
"fast as the hardware allows" claim is verifiable and regressions are
visible at the metric level rather than only in end-to-end numbers.

Design rules (see ``docs/observability.md``):

* **Zero cost when disabled.**  Components consult
  :func:`telemetry_enabled` *at construction* and install instrumented
  method variants only when it is on; the disabled hot path executes the
  exact same bytecode as an uninstrumented build.
* **Deterministic snapshots.**  Counters, gauges, histograms, and spans
  are driven exclusively by simulation-clock quantities and deterministic
  sampling (every Nth observation), so two identically seeded runs
  produce identical :meth:`MetricsRegistry.snapshot` outputs.  Wall-clock
  timers are kept in a separate section that is excluded from snapshots
  by default.
* **Fixed histogram buckets.**  Bucket boundaries are part of the metric
  definition, never derived from data, so histograms compare exactly
  across runs and hosts.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import TracerError
from .spans import SpanRecorder

#: Environment variable that force-enables telemetry for the process.
TELEMETRY_ENV = "TRACER_TELEMETRY"

#: Default bucket boundaries (seconds) for latency-style histograms.
#: Chosen to span controller overheads (~tens of µs) through degraded
#: multi-second responses; fixed so snapshots are comparable run-to-run.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default boundaries for size-style histograms (bytes).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    512.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
)


class TelemetryError(TracerError):
    """Misuse of the telemetry layer (bad metric names, bucket specs)."""


def _metric_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical metric identity: ``name`` plus sorted label pairs."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, packages, faults)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (queue high-water, residency fraction)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram with an exact sum and count.

    ``buckets`` are upper bounds of each bin; observations above the
    last boundary land in the implicit overflow bin.  Boundaries are
    frozen at construction so two runs bucket identically.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram bounds must strictly increase, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bin
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class Timer:
    """Accumulated *wall-clock* seconds (profiling only).

    Wall time is inherently non-deterministic, so timers live in their
    own registry section and are excluded from deterministic snapshots.
    """

    __slots__ = ("total_seconds", "calls")

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.calls = 0

    def add(self, seconds: float, calls: int = 1) -> None:
        self.total_seconds += seconds
        self.calls += calls

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - t0)


class MetricsRegistry:
    """Holds every instrument created by instrumented components.

    One registry exists per process (see :func:`get_registry`); tests may
    construct private registries.  Instrument accessors are idempotent:
    asking for the same ``(name, labels)`` twice returns the same object,
    so components need not coordinate.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}
        self.spans = SpanRecorder()

    # -- Instrument accessors -------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = _metric_key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _metric_key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge()
        return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = _metric_key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(buckets)
            elif tuple(float(b) for b in buckets) != inst.buckets:
                raise TelemetryError(
                    f"histogram {key!r} re-registered with different buckets"
                )
        return inst

    def timer(self, name: str, **labels: str) -> Timer:
        key = _metric_key(name, labels)
        with self._lock:
            inst = self._timers.get(key)
            if inst is None:
                inst = self._timers[key] = Timer()
        return inst

    # -- Snapshots -------------------------------------------------------

    def snapshot(self, include_timers: bool = False) -> Dict[str, Any]:
        """Deterministic state of every instrument, sorted by key.

        The returned structure is plain JSON types only, so it can ride
        the distributed wire protocol and land in the host database
        unchanged.  ``include_timers`` adds the wall-clock profiling
        section (non-deterministic; off by default).
        """
        with self._lock:
            snap: Dict[str, Any] = {
                "counters": {
                    k: self._counters[k].value for k in sorted(self._counters)
                },
                "gauges": {
                    k: self._gauges[k].value for k in sorted(self._gauges)
                },
                "histograms": {
                    k: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for k, h in sorted(self._histograms.items())
                },
                "spans": self.spans.snapshot(),
            }
            if include_timers:
                snap["timers"] = {
                    k: {
                        "total_seconds": t.total_seconds,
                        "calls": t.calls,
                    }
                    for k, t in sorted(self._timers.items())
                }
        return snap

    def mark(self) -> Dict[str, Any]:
        """Opaque marker for :meth:`collect` (a snapshot plus span cursor)."""
        snap = self.snapshot()
        snap["_span_cursor"] = self.spans.total_recorded
        return snap

    def collect(self, since: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Deterministic snapshot, optionally as a delta from a mark.

        The registry is process-wide and cumulative; a replay session
        that wants *its own* numbers marks the registry when it starts
        and collects the delta when it finishes.  Counter and histogram
        values are subtracted; gauges and spans report their final state
        (spans: only those recorded after the mark, subject to the
        recorder's cap).
        """
        after = self.snapshot()
        if since is None:
            return after
        counters = {}
        for key, value in after["counters"].items():
            delta = value - since["counters"].get(key, 0)
            if delta:
                counters[key] = delta
        histograms = {}
        for key, hist in after["histograms"].items():
            prev = since["histograms"].get(key)
            if prev is None:
                # Registered during the window: report even with zero
                # samples, so every delta carries every live histogram
                # and Prometheus scrape schemas stay stable across runs
                # (a quiet run still exports its empty bucket lines).
                histograms[key] = hist
                continue
            counts = [a - b for a, b in zip(hist["counts"], prev["counts"])]
            histograms[key] = {
                "buckets": hist["buckets"],
                "counts": counts,
                "sum": hist["sum"] - prev["sum"],
                "count": hist["count"] - prev["count"],
            }
        cursor = since.get("_span_cursor", 0)
        return {
            "counters": counters,
            "gauges": after["gauges"],
            "histograms": histograms,
            "spans": self.spans.snapshot(since=cursor),
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot (or delta) into this one.

        The fleet aggregation primitive: every worker heartbeat carries
        a telemetry delta from its process, and the scheduler merges
        them all into its own registry, so fleet-wide metrics read as if
        one registry had observed everything.  Semantics per instrument
        (property-tested in ``tests/telemetry/test_registry_merge.py``):

        * **counters** sum;
        * **gauges** last-write-wins (the incoming value replaces ours,
          matching what a single registry would hold after the same
          final ``set``);
        * **histograms** add bucket-wise — bucket *boundaries* must
          match (they are part of the metric definition), else
          :class:`TelemetryError`;
        * **timers** (when present) accumulate seconds and calls.

        Span sections are ignored: spans are per-process narratives, and
        the fleet's causal story lives in ``repro.telemetry.dtrace``.
        """
        with self._lock:
            for key, value in (snapshot.get("counters") or {}).items():
                inst = self._counters.get(key)
                if inst is None:
                    inst = self._counters[key] = Counter()
                inst.value += int(value)
            for key, value in (snapshot.get("gauges") or {}).items():
                ginst = self._gauges.get(key)
                if ginst is None:
                    ginst = self._gauges[key] = Gauge()
                ginst.value = float(value)
            for key, hist in (snapshot.get("histograms") or {}).items():
                bounds = tuple(float(b) for b in hist["buckets"])
                hinst = self._histograms.get(key)
                if hinst is None:
                    hinst = self._histograms[key] = Histogram(bounds)
                elif hinst.buckets != bounds:
                    raise TelemetryError(
                        f"histogram {key!r} merged with different buckets"
                    )
                hinst.counts = [
                    a + b for a, b in zip(hinst.counts, hist["counts"])
                ]
                hinst.sum += float(hist["sum"])
                hinst.count += int(hist["count"])
            for key, timer in (snapshot.get("timers") or {}).items():
                tinst = self._timers.get(key)
                if tinst is None:
                    tinst = self._timers[key] = Timer()
                tinst.total_seconds += float(timer["total_seconds"])
                tinst.calls += int(timer["calls"])

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived generator nodes)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._timers.clear()
            self.spans = SpanRecorder()


def _env_enabled() -> bool:
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


_REGISTRY = MetricsRegistry(enabled=_env_enabled())


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented component uses."""
    return _REGISTRY


def telemetry_enabled() -> bool:
    """Whether components built *now* should install instrumentation."""
    return _REGISTRY.enabled


def set_enabled(enabled: bool) -> None:
    """Toggle instrumentation for components constructed afterwards.

    Existing objects keep the instrumentation decision they were built
    with — the flag is a construction-time gate, not a runtime switch,
    which is what keeps the disabled path free of per-event checks.
    """
    _REGISTRY.enabled = bool(enabled)


@contextmanager
def enabled_telemetry(reset: bool = True) -> Iterator[MetricsRegistry]:
    """Enable telemetry for a scope (tests, CLI runs); restores on exit.

    ``reset`` clears the registry on entry so the scope observes only
    its own activity.
    """
    prior = _REGISTRY.enabled
    if reset:
        _REGISTRY.reset()
    _REGISTRY.enabled = True
    try:
        yield _REGISTRY
    finally:
        _REGISTRY.enabled = prior

"""Snapshot exporters: JSON lines and Prometheus text format.

Both formats render a :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`
dict.  Rendering is pure and deterministic — identical snapshots produce
byte-identical output — so exported artifacts can themselves be golden-
tested.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple, Union

PathLike = Union[str, Path]

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry key back into (name, labels)."""
    m = _KEY_RE.match(key)
    if m is None:  # pragma: no cover - keys are always well-formed
        return key, {}
    labels: Dict[str, str] = {}
    raw = m.group("labels")
    if raw:
        for pair in raw.split(","):
            k, _, v = pair.partition("=")
            labels[k] = v
    return m.group("name"), labels


def _iter_records(snapshot: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Flatten a snapshot into one record per metric."""
    for key, value in snapshot.get("counters", {}).items():
        name, labels = _split_key(key)
        yield {"type": "counter", "name": name, "labels": labels, "value": value}
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _split_key(key)
        yield {"type": "gauge", "name": name, "labels": labels, "value": value}
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = _split_key(key)
        yield {
            "type": "histogram",
            "name": name,
            "labels": labels,
            "buckets": hist["buckets"],
            "counts": hist["counts"],
            "sum": hist["sum"],
            "count": hist["count"],
        }
    for key, timer in snapshot.get("timers", {}).items():
        name, labels = _split_key(key)
        yield {
            "type": "timer",
            "name": name,
            "labels": labels,
            "total_seconds": timer["total_seconds"],
            "calls": timer["calls"],
        }
    spans = snapshot.get("spans")
    if spans is not None:
        yield {
            "type": "spans",
            "name": "spans",
            "labels": {},
            "total_recorded": spans.get("total_recorded", 0),
            "dropped": spans.get("dropped", 0),
            "spans": spans.get("spans", []),
        }


def to_jsonl(snapshot: Dict[str, Any]) -> str:
    """One JSON object per line, one line per metric (plus one for spans)."""
    lines = [
        json.dumps(record, sort_keys=True) for record in _iter_records(snapshot)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(snapshot: Dict[str, Any], path: PathLike) -> Path:
    """Write :func:`to_jsonl` output to ``path``; returns the path."""
    target = Path(path)
    target.write_text(to_jsonl(snapshot))
    return target


def _prom_name(name: str) -> str:
    """Metric name mangling: dots become underscores (Prometheus rules)."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(snapshot: Dict[str, Any]) -> str:
    """Prometheus exposition text format (counters/gauges/histograms).

    Spans have no Prometheus representation and are summarised as two
    gauges (recorded/dropped); timers export as ``*_seconds_total``.
    """
    out: List[str] = []
    for key, value in snapshot.get("counters", {}).items():
        name, labels = _split_key(key)
        pname = _prom_name(name) + "_total"
        out.append(f"# TYPE {pname} counter")
        out.append(f"{pname}{_prom_labels(labels)} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _split_key(key)
        pname = _prom_name(name)
        out.append(f"# TYPE {pname} gauge")
        out.append(f"{pname}{_prom_labels(labels)} {value}")
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = _split_key(key)
        pname = _prom_name(name)
        out.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            le = _prom_labels(labels, f'le="{bound}"')
            out.append(f"{pname}_bucket{le} {cumulative}")
        cumulative += hist["counts"][-1]
        le = _prom_labels(labels, 'le="+Inf"')
        out.append(f"{pname}_bucket{le} {cumulative}")
        out.append(f"{pname}_sum{_prom_labels(labels)} {hist['sum']}")
        out.append(f"{pname}_count{_prom_labels(labels)} {hist['count']}")
    for key, timer in snapshot.get("timers", {}).items():
        name, labels = _split_key(key)
        pname = _prom_name(name) + "_seconds_total"
        out.append(f"# TYPE {pname} counter")
        out.append(f"{pname}{_prom_labels(labels)} {timer['total_seconds']}")
    spans = snapshot.get("spans")
    if spans is not None:
        out.append("# TYPE tracer_spans_recorded gauge")
        out.append(f"tracer_spans_recorded {spans.get('total_recorded', 0)}")
        out.append("# TYPE tracer_spans_dropped gauge")
        out.append(f"tracer_spans_dropped {spans.get('dropped', 0)}")
    return "\n".join(out) + ("\n" if out else "")


def format_table(snapshot: Dict[str, Any]) -> str:
    """Human-readable metric table for the CLI subcommand."""
    rows: List[str] = []
    for key, value in snapshot.get("counters", {}).items():
        rows.append(f"{key:<52} counter   {value}")
    for key, value in snapshot.get("gauges", {}).items():
        rows.append(f"{key:<52} gauge     {value:.6g}")
    for key, hist in snapshot.get("histograms", {}).items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        rows.append(
            f"{key:<52} histogram n={hist['count']} mean={mean:.6g}"
        )
    for key, timer in snapshot.get("timers", {}).items():
        rows.append(
            f"{key:<52} timer     {timer['total_seconds']:.4f}s "
            f"({timer['calls']} calls)"
        )
    spans = snapshot.get("spans")
    if spans is not None:
        rows.append(
            f"{'spans':<52} spans     recorded={spans.get('total_recorded', 0)} "
            f"dropped={spans.get('dropped', 0)}"
        )
    return "\n".join(rows)

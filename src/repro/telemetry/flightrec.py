"""The flight recorder: a bounded ring of recent structured events.

Where the metrics registry answers "how much" (counters, histograms),
the flight recorder answers "what just happened": fault injections,
protocol retries, monitor state transitions, interval summaries.  It is
**always on** — a :class:`collections.deque` with a fixed ``maxlen``
costs nothing while empty and stays bounded forever — so a crash or an
injected disk failure can always be reconstructed from the last N
events, even in a run that never enabled telemetry.

Two rules keep it off the perf-gated hot path:

* nothing records per-completion or per-event-loop-step — only rare
  occurrences (faults, retries, state changes) and per-interval
  summaries land here;
* recording is a lock, a counter increment, and a deque append.

Dumps are JSON Lines: a header line (reason, capacity, event count)
followed by one line per event in sequence order.  Arm automatic dumps
with :func:`arm_autodump` or the ``TRACER_FLIGHTREC`` environment
variable; components that detect a fatal condition (disk failure,
exhausted protocol retries, runaway event loop, drained simulation)
call :func:`autodump` and the recorder writes its ring to the armed
path before the error propagates.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Environment variable: when set to a path, autodump is armed at import.
FLIGHTREC_ENV = "TRACER_FLIGHTREC"

#: Environment variable overriding the ring capacity for the process.
FLIGHTREC_CAPACITY_ENV = "TRACER_FLIGHTREC_CAPACITY"

#: Default ring capacity (events retained).
DEFAULT_CAPACITY = 1024

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FlightEvent:
    """One recorded occurrence.

    ``seq`` increases monotonically for the life of the recorder (it
    keeps counting past evictions, so gaps reveal how much history the
    ring dropped).  ``time`` is simulation time where one exists, else
    0.0 — wall clocks stay out so dumps diff cleanly across runs.
    """

    seq: int
    category: str
    time: float
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "category": self.category,
            "time": self.time,
            **self.fields,
        }


class FlightRecorder:
    """Thread-safe bounded event ring."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: "deque[FlightEvent]" = deque(maxlen=self.capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def record(self, category: str, time: float = 0.0, **fields: Any) -> int:
        """Append one event; returns its sequence number."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            self._ring.append(
                FlightEvent(seq=seq, category=category, time=float(time),
                            fields=fields)
            )
        return seq

    def events(self) -> List[FlightEvent]:
        """The retained events, oldest first."""
        with self._lock:
            return list(self._ring)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (including any evicted from the ring)."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seq = 0

    def to_jsonl(self, reason: str = "manual") -> str:
        """The dump text: header line + one JSON line per event."""
        events = self.events()
        lines = [
            json.dumps(
                {
                    "flightrec": True,
                    "reason": reason,
                    "capacity": self.capacity,
                    "events": len(events),
                    "total_recorded": self.total_recorded,
                },
                sort_keys=True,
            )
        ]
        # default=str: a dump must never fail because a recorded field
        # (a path, an exception, a dataclass) is not JSON-native.
        lines.extend(
            json.dumps(e.to_dict(), sort_keys=True, default=str)
            for e in events
        )
        return "\n".join(lines) + "\n"

    def dump(self, path: PathLike, reason: str = "manual") -> Path:
        """Write the ring to ``path`` as JSON Lines (overwrites)."""
        out = Path(path)
        out.write_text(self.to_jsonl(reason=reason))
        return out


def _env_capacity() -> int:
    raw = os.environ.get(FLIGHTREC_CAPACITY_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return DEFAULT_CAPACITY
        if value >= 1:
            return value
    return DEFAULT_CAPACITY


_RECORDER = FlightRecorder(capacity=_env_capacity())
_AUTODUMP_PATH: Optional[str] = os.environ.get(FLIGHTREC_ENV, "").strip() or None
_AUTODUMP_LOCK = threading.Lock()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide recorder every component records into."""
    return _RECORDER


def arm_autodump(path: Optional[PathLike]) -> None:
    """Arm (or, with ``None``, disarm) automatic dumps to ``path``."""
    global _AUTODUMP_PATH
    with _AUTODUMP_LOCK:
        _AUTODUMP_PATH = str(path) if path is not None else None


def autodump_armed() -> Optional[str]:
    """The armed dump path, or None."""
    with _AUTODUMP_LOCK:
        return _AUTODUMP_PATH


def autodump(reason: str) -> Optional[Path]:
    """Dump the ring to the armed path, if any.

    Called by components on fatal conditions *before* raising; failures
    to write are swallowed — forensics must never turn a diagnosable
    error into a different one.
    """
    with _AUTODUMP_LOCK:
        path = _AUTODUMP_PATH
    if path is None:
        return None
    try:
        return _RECORDER.dump(path, reason=reason)
    except OSError:
        return None


_EXCEPTHOOK_INSTALLED = False


def install_excepthook() -> None:
    """Dump on unhandled exceptions (CLI entry points call this).

    Idempotent; chains to the previously installed hook.
    """
    global _EXCEPTHOOK_INSTALLED
    if _EXCEPTHOOK_INSTALLED:
        return
    import sys

    _EXCEPTHOOK_INSTALLED = True
    previous = sys.excepthook

    def _hook(exc_type, exc, tb):  # pragma: no cover - process teardown
        _RECORDER.record(
            "crash", 0.0, error=f"{exc_type.__name__}: {exc}"
        )
        autodump("crash")
        previous(exc_type, exc, tb)

    sys.excepthook = _hook

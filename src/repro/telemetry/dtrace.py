"""Causal distributed tracing across the fleet.

PR 3's :class:`~repro.telemetry.spans.SpanRecorder` attributes *simulated*
time within one process; this module follows one *job* across processes
and machines — scheduler → worker → generator node — the TraceTracker
idea (PAPERS.md, arXiv 1709.04806) applied to the replay fleet.  Every
span carries:

* ``trace_id`` / ``span_id`` / ``parent_id`` — the causal chain.  A
  :class:`TraceContext` is the portable ``(trace_id, span_id)`` pair a
  parent hands to the work it spawns; whatever runs under that context
  parents its spans to it, no matter which process it lands in.
* wall-clock start/end (``time.time()``) — real elapsed time, the thing
  the sim clock cannot show (queue waits, wire latency, retry gaps);
* optional sim-clock start/end — the replay's own timeline;
* optional ``energy_joules`` — pulled from the
  :class:`~repro.power.analyzer.PowerAnalyzer`, so a span answers
  "how many joules were spent here".

Propagation is explicit and cheap: a context rides as a three-key dict
on the wire (``RUN_TEST`` bodies, fleet job state) and activates on the
executing thread via :func:`tracing_scope`.  When no scope is active
every hook is a single thread-local read returning ``None`` — replays
outside a traced fleet job record nothing and pay nothing, and because
span payloads are stripped by
:func:`~repro.fleet.jobs.canonical_result_bytes`, results are
bit-identical with tracing on or off.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

#: Environment variable enabling fleet tracing by default
#: (``FleetScheduler(tracing=None)`` consults it).
DTRACE_ENV = "TRACER_DTRACE"

#: Span names used by the built-in fleet instrumentation, in lifecycle
#: order (documented in docs/observability.md).
SPAN_JOB = "fleet.job"
SPAN_QUEUE_WAIT = "fleet.queue_wait"
SPAN_ATTEMPT = "fleet.attempt"
SPAN_CACHE_HIT = "fleet.cache_hit"
SPAN_CACHE_WRITE = "fleet.cache_write"
SPAN_EXECUTE = "worker.execute"
SPAN_NODE_EXECUTE = "node.execute"
SPAN_FILTER = "session.filter"
SPAN_REPLAY = "session.replay"


def new_trace_id() -> str:
    """A fresh globally unique trace id."""
    return uuid.uuid4().hex[:16]


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The portable causal position: which trace, under which span.

    Spans created under this context get ``parent_id = span_id``; the
    dict form is what crosses process and wire boundaries.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
        )


class SpanHandle:
    """One in-flight span; :meth:`finish` seals it.

    Handles are explicit so single-threaded orchestrators (the asyncio
    fleet scheduler interleaves many jobs on one thread) can hold spans
    open across await points; the thread-local :func:`span` scope is a
    convenience wrapper for straight-line code.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "status",
        "wall_start", "wall_end", "sim_start", "sim_end",
        "energy_joules", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        **attrs: Any,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.status = "ok"
        self.wall_start = time.time()
        self.wall_end: Optional[float] = None
        self.sim_start: Optional[float] = None
        self.sim_end: Optional[float] = None
        self.energy_joules: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs)

    @classmethod
    def begin(
        cls,
        name: str,
        context: Optional[TraceContext] = None,
        trace_id: Optional[str] = None,
        **attrs: Any,
    ) -> "SpanHandle":
        """Open a span under ``context`` (or start a fresh trace)."""
        if context is not None:
            return cls(name, context.trace_id, context.span_id, **attrs)
        return cls(
            name,
            trace_id if trace_id is not None else new_trace_id(),
            None,
            **attrs,
        )

    def context(self) -> TraceContext:
        """The context children of this span should run under."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def finish(
        self,
        status: str = "ok",
        sim_start: Optional[float] = None,
        sim_end: Optional[float] = None,
        energy_joules: Optional[float] = None,
        **attrs: Any,
    ) -> "SpanHandle":
        self.wall_end = time.time()
        self.status = status
        if sim_start is not None:
            self.sim_start = float(sim_start)
        if sim_end is not None:
            self.sim_end = float(sim_end)
        if energy_joules is not None:
            self.energy_joules = float(energy_joules)
        if attrs:
            self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "status": self.status,
            "wall_start": self.wall_start,
            "wall_end": (
                self.wall_end if self.wall_end is not None else self.wall_start
            ),
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "energy_joules": self.energy_joules,
            "attrs": dict(self.attrs),
        }


# -- thread-local activation ------------------------------------------------

class _ActiveScope(threading.local):
    context: Optional[TraceContext] = None
    sink: Optional[List[Dict[str, Any]]] = None


_ACTIVE = _ActiveScope()


def active() -> bool:
    """Whether a tracing scope is active on this thread."""
    return _ACTIVE.context is not None


def current_context() -> Optional[TraceContext]:
    """The active context, or None (the disabled fast path)."""
    return _ACTIVE.context


@contextmanager
def tracing_scope(
    context: TraceContext,
) -> Iterator[List[Dict[str, Any]]]:
    """Activate ``context`` on this thread; yields the span sink.

    Every span finished inside the scope (via :func:`span`,
    :func:`start_span`/:func:`finish_span`, or :func:`record_span`)
    lands in the yielded list as a JSON-safe dict — the caller attaches
    it to whatever payload travels back toward the scheduler.
    """
    prior_ctx, prior_sink = _ACTIVE.context, _ACTIVE.sink
    sink: List[Dict[str, Any]] = []
    _ACTIVE.context, _ACTIVE.sink = context, sink
    try:
        yield sink
    finally:
        _ACTIVE.context, _ACTIVE.sink = prior_ctx, prior_sink


def start_span(name: str, **attrs: Any) -> Optional[SpanHandle]:
    """Open a span under the active scope; None when tracing is off."""
    ctx = _ACTIVE.context
    if ctx is None:
        return None
    return SpanHandle.begin(name, context=ctx, **attrs)


def finish_span(handle: Optional[SpanHandle], **kwargs: Any) -> None:
    """Seal ``handle`` into the active sink (no-op for None handles)."""
    if handle is None:
        return
    handle.finish(**kwargs)
    sink = _ACTIVE.sink
    if sink is not None:
        sink.append(handle.to_dict())


def record_span(
    name: str,
    wall_start: float,
    wall_end: float,
    sim_start: Optional[float] = None,
    sim_end: Optional[float] = None,
    energy_joules: Optional[float] = None,
    status: str = "ok",
    **attrs: Any,
) -> None:
    """Record an already-measured span under the active scope.

    Straight-line code (the replay session) measures its phases with
    plain timestamps and records them after the fact — no handle
    juggling across branches, and nothing happens when tracing is off.
    """
    ctx = _ACTIVE.context
    sink = _ACTIVE.sink
    if ctx is None or sink is None:
        return
    handle = SpanHandle.begin(name, context=ctx, **attrs)
    handle.wall_start = float(wall_start)
    handle.wall_end = float(wall_end)
    handle.status = status
    handle.sim_start = sim_start if sim_start is None else float(sim_start)
    handle.sim_end = sim_end if sim_end is None else float(sim_end)
    handle.energy_joules = (
        energy_joules if energy_joules is None else float(energy_joules)
    )
    sink.append(handle.to_dict())


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[SpanHandle]]:
    """Scoped span: opens under the active context and nests below it.

    Inside the ``with`` block the new span *is* the active context, so
    spans created within parent to it.  Yields None (and costs one
    thread-local read) when tracing is off.
    """
    ctx = _ACTIVE.context
    if ctx is None:
        yield None
        return
    handle = SpanHandle.begin(name, context=ctx, **attrs)
    _ACTIVE.context = handle.context()
    try:
        yield handle
        finish_after = {"status": "ok"}
    except BaseException:
        finish_after = {"status": "error"}
        raise
    finally:
        _ACTIVE.context = ctx
        finish_span(handle, **finish_after)


# -- span trees -------------------------------------------------------------

def build_tree(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble span dicts into parent/child trees.

    Returns ``{"roots": [node...], "orphans": [span...], "count": n}``
    where a node is ``{"span": dict, "children": [node...]}``.  A root
    has ``parent_id`` None; an *orphan* names a parent that is not in
    the set — the chaos tests assert there are none, because a broken
    chain means context propagation lost a hop.  Children sort by wall
    start (admission order), so retries render as ordered siblings.
    """
    by_id = {s["span_id"]: {"span": s, "children": []} for s in spans}
    roots: List[Dict[str, Any]] = []
    orphans: List[Dict[str, Any]] = []
    for node in by_id.values():
        parent = node["span"].get("parent_id")
        if parent is None:
            roots.append(node)
        elif parent in by_id:
            by_id[parent]["children"].append(node)
        else:
            orphans.append(node["span"])

    def _sort(nodes: List[Dict[str, Any]]) -> None:
        nodes.sort(
            key=lambda n: (n["span"].get("wall_start", 0.0),
                           n["span"].get("name", ""))
        )
        for n in nodes:
            _sort(n["children"])

    _sort(roots)
    return {"roots": roots, "orphans": orphans, "count": len(spans)}


def _describe(s: Dict[str, Any]) -> str:
    parts = [s.get("name", "?")]
    status = s.get("status", "ok")
    if status != "ok":
        parts.append(f"[{status}]")
    wall = (s.get("wall_end") or 0.0) - (s.get("wall_start") or 0.0)
    parts.append(f"{wall * 1000:.1f}ms")
    if s.get("sim_start") is not None and s.get("sim_end") is not None:
        parts.append(f"sim {s['sim_end'] - s['sim_start']:.3f}s")
    if s.get("energy_joules") is not None:
        parts.append(f"{s['energy_joules']:.2f}J")
    attrs = s.get("attrs") or {}
    for key in sorted(attrs):
        parts.append(f"{key}={attrs[key]}")
    return "  ".join(str(p) for p in parts)


def render_tree(spans: List[Dict[str, Any]]) -> str:
    """ASCII span tree — what ``tracer trace show`` prints."""
    tree = build_tree(spans)
    lines: List[str] = []

    def _walk(node: Dict[str, Any], prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + _describe(node["span"]))
        child_prefix = prefix + ("   " if is_last else "│  ")
        children = node["children"]
        for i, child in enumerate(children):
            _walk(child, child_prefix, i == len(children) - 1)

    for root in tree["roots"]:
        lines.append(_describe(root["span"]))
        children = root["children"]
        for i, child in enumerate(children):
            _walk(child, "", i == len(children) - 1)
    if tree["orphans"]:
        lines.append(f"! {len(tree['orphans'])} orphan span(s):")
        for s in tree["orphans"]:
            lines.append(f"  ? {_describe(s)} (parent {s.get('parent_id')})")
    return "\n".join(lines)


def env_enabled() -> bool:
    """Whether ``TRACER_DTRACE`` turns fleet tracing on by default."""
    import os

    return os.environ.get(DTRACE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )

"""Distributed TRACER (paper Fig. 3).

"we can make use of TRACER to test a large-scale storage system where
multiple evaluation hosts, power analyzers and mass amount of storage
are efficiently connected."

* :mod:`~repro.distributed.generator_node` — a workload-generator node:
  owns a trace repository and a device under test, serves `run_test`
  frames over TCP;
* :mod:`~repro.distributed.host_node` — the remote evaluation host: the
  client that dispatches tests to generator nodes and stores records
  locally;
* :mod:`~repro.distributed.multichannel` — parallel evaluation of many
  arrays in one simulation with a multichannel power analyzer.
"""

from .generator_node import GeneratorNode
from .host_node import RemoteEvaluationHost
from .multichannel import MultiArrayEvaluation, ArrayRun

__all__ = [
    "GeneratorNode",
    "RemoteEvaluationHost",
    "MultiArrayEvaluation",
    "ArrayRun",
]

"""Remote evaluation host: dispatches tests to generator nodes over TCP.

Mirrors :class:`~repro.host.evaluation.EvaluationHost`'s test surface but
executes replays on remote generator nodes, storing the returned
summaries in a local results database (the paper's host machine keeps
the database; generators do the I/O).

Failure semantics: the underlying :class:`~repro.host.communicator.Communicator`
retries each request over a fresh connection with exponential backoff,
so transient connection drops are absorbed within the configured
attempt budget and anything worse surfaces as a clean
:class:`~repro.errors.ProtocolError`.  Every ``run_test`` dispatch
carries a unique ``request_id``, which the generator node uses to
deduplicate retried dispatches — a replay never runs twice because its
reply got lost on the wire.
"""

from __future__ import annotations

import itertools
import time as _time
import uuid
from typing import Callable, Dict, List, Optional, Sequence

from ..config import LOAD_LEVELS, ReplayConfig, TestRequest, WorkloadMode
from ..errors import ProtocolError
from ..host.communicator import Communicator, RetryPolicy
from ..host.database import ResultsDatabase
from ..host.protocol import (
    Frame,
    KIND_ERROR,
    KIND_HELLO,
    KIND_LIST_TRACES,
    KIND_RUN_TEST,
    KIND_TEST_RESULT,
    KIND_TRACE_LIST,
)
from ..host.records import TestRecord


class RemoteEvaluationHost:
    """Client-side evaluation host for one generator node.

    Construction connects and performs the HELLO handshake; if either
    step fails the socket is closed before the error propagates (no
    leaked connections from refused handshakes).
    """

    def __init__(
        self,
        host: str,
        port: int,
        database: Optional[ResultsDatabase] = None,
        clock: Callable[[], float] = _time.time,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.database = database if database is not None else ResultsDatabase()
        self.clock = clock
        self.node_id = "?"
        self.device_label = "?"
        self.comm: Optional[Communicator] = None
        self._client_id = uuid.uuid4().hex[:12]
        self._sequence = itertools.count()
        comm = self._connect(host, port, timeout, retry)
        try:
            self._handshake(comm)
        except BaseException:
            comm.close()
            raise
        self.comm = comm

    @staticmethod
    def _connect(
        host: str, port: int, timeout: float, retry: Optional[RetryPolicy]
    ) -> Communicator:
        """Dial the node (retried/bounded inside the communicator)."""
        return Communicator(host, port, timeout=timeout, retry=retry)

    def _handshake(self, comm: Communicator) -> None:
        """HELLO dialogue: learn the node's identity and device label."""
        reply = comm.request(Frame(KIND_HELLO, {}))
        if reply.kind == KIND_ERROR:
            raise ProtocolError(
                f"node refused hello: {reply.body.get('message')}"
            )
        self.node_id = reply.body.get("node_id", "?")
        self.device_label = reply.body.get("device", "?")

    def close(self) -> None:
        if self.comm is not None:
            self.comm.close()

    def __enter__(self) -> "RemoteEvaluationHost":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_comm(self) -> Communicator:
        if self.comm is None:
            raise ProtocolError("remote host is closed")
        return self.comm

    def list_traces(self) -> List[str]:
        reply = self._require_comm().request(Frame(KIND_LIST_TRACES, {}))
        if reply.kind != KIND_TRACE_LIST:
            raise ProtocolError(f"unexpected reply {reply.kind!r}")
        return list(reply.body.get("traces", []))

    def run_test(self, request: TestRequest) -> TestRecord:
        """Run one test remotely; store and return the record.

        The dispatch is tagged with a unique request id, so if the reply
        is lost and the communicator retries, the node returns the
        cached result of the first execution instead of replaying again.
        """
        request_id = f"{self._client_id}-{next(self._sequence)}"
        reply = self._require_comm().request(
            Frame(
                KIND_RUN_TEST,
                {"request": request.to_dict(), "request_id": request_id},
            )
        )
        if reply.kind == KIND_ERROR:
            raise ProtocolError(f"remote test failed: {reply.body.get('message')}")
        if reply.kind != KIND_TEST_RESULT:
            raise ProtocolError(f"unexpected reply {reply.kind!r}")
        body: Dict = reply.body
        record = TestRecord(
            test_time=self.clock(),
            device_label=self.device_label,
            mode=request.mode,
            mean_amperes=body["mean_watts"] / 220.0,
            mean_volts=220.0,
            mean_watts=body["mean_watts"],
            energy_joules=body["energy_joules"],
            iops=body["iops"],
            mbps=body["mbps"],
            mean_response=body["mean_response"],
            duration=body["duration"],
            iops_per_watt=body["iops_per_watt"],
            mbps_per_kilowatt=body["mbps_per_kilowatt"],
            label=request.label,
        )
        record_id = self.database.insert(record)
        telemetry = body.get("metadata", {}).get("telemetry")
        if telemetry:
            # The node ran with telemetry on; its snapshot rode the wire
            # in the result metadata — keep it with the record.
            self.database.insert_telemetry(record_id, telemetry)
        return record

    def run_load_sweep(
        self,
        mode: WorkloadMode,
        levels: Sequence[float] = LOAD_LEVELS,
        replay: Optional[ReplayConfig] = None,
        label: str = "",
    ) -> List[TestRecord]:
        """Sweep load levels on the remote node."""
        records = []
        for level in levels:
            request = TestRequest(
                mode=mode.at_load(level),
                replay=replay if replay is not None else ReplayConfig(),
                label=label,
            )
            records.append(self.run_test(request))
        return records

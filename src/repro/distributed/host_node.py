"""Remote evaluation host: dispatches tests to generator nodes over TCP.

Mirrors :class:`~repro.host.evaluation.EvaluationHost`'s test surface but
executes replays on remote generator nodes, storing the returned
summaries in a local results database (the paper's host machine keeps
the database; generators do the I/O).
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Sequence

from ..config import LOAD_LEVELS, ReplayConfig, TestRequest, WorkloadMode
from ..errors import ProtocolError
from ..host.communicator import Communicator
from ..host.database import ResultsDatabase
from ..host.protocol import (
    Frame,
    KIND_ERROR,
    KIND_HELLO,
    KIND_LIST_TRACES,
    KIND_RUN_TEST,
    KIND_TEST_RESULT,
    KIND_TRACE_LIST,
)
from ..host.records import TestRecord


class RemoteEvaluationHost:
    """Client-side evaluation host for one generator node."""

    def __init__(
        self,
        host: str,
        port: int,
        database: Optional[ResultsDatabase] = None,
        clock: Callable[[], float] = _time.time,
        timeout: float = 60.0,
    ) -> None:
        self.comm = Communicator(host, port, timeout=timeout)
        self.database = database if database is not None else ResultsDatabase()
        self.clock = clock
        reply = self.comm.request(Frame(KIND_HELLO, {}))
        if reply.kind == KIND_ERROR:
            raise ProtocolError(f"node refused hello: {reply.body.get('message')}")
        self.node_id = reply.body.get("node_id", "?")
        self.device_label = reply.body.get("device", "?")

    def close(self) -> None:
        self.comm.close()

    def __enter__(self) -> "RemoteEvaluationHost":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def list_traces(self) -> List[str]:
        reply = self.comm.request(Frame(KIND_LIST_TRACES, {}))
        if reply.kind != KIND_TRACE_LIST:
            raise ProtocolError(f"unexpected reply {reply.kind!r}")
        return list(reply.body.get("traces", []))

    def run_test(self, request: TestRequest) -> TestRecord:
        """Run one test remotely; store and return the record."""
        reply = self.comm.request(
            Frame(KIND_RUN_TEST, {"request": request.to_dict()})
        )
        if reply.kind == KIND_ERROR:
            raise ProtocolError(f"remote test failed: {reply.body.get('message')}")
        if reply.kind != KIND_TEST_RESULT:
            raise ProtocolError(f"unexpected reply {reply.kind!r}")
        body: Dict = reply.body
        record = TestRecord(
            test_time=self.clock(),
            device_label=self.device_label,
            mode=request.mode,
            mean_amperes=body["mean_watts"] / 220.0,
            mean_volts=220.0,
            mean_watts=body["mean_watts"],
            energy_joules=body["energy_joules"],
            iops=body["iops"],
            mbps=body["mbps"],
            mean_response=body["mean_response"],
            duration=body["duration"],
            iops_per_watt=body["iops_per_watt"],
            mbps_per_kilowatt=body["mbps_per_kilowatt"],
            label=request.label,
        )
        self.database.insert(record)
        return record

    def run_load_sweep(
        self,
        mode: WorkloadMode,
        levels: Sequence[float] = LOAD_LEVELS,
        replay: Optional[ReplayConfig] = None,
        label: str = "",
    ) -> List[TestRecord]:
        """Sweep load levels on the remote node."""
        records = []
        for level in levels:
            request = TestRequest(
                mode=mode.at_load(level),
                replay=replay if replay is not None else ReplayConfig(),
                label=label,
            )
            records.append(self.run_test(request))
        return records

"""Remote evaluation host: dispatches tests to generator nodes over TCP.

Mirrors :class:`~repro.host.evaluation.EvaluationHost`'s test surface but
executes replays on remote generator nodes, storing the returned
summaries in a local results database (the paper's host machine keeps
the database; generators do the I/O).

Failure semantics: the underlying :class:`~repro.host.communicator.Communicator`
retries each request over a fresh connection with exponential backoff,
so transient connection drops are absorbed within the configured
attempt budget and anything worse surfaces as a clean
:class:`~repro.errors.ProtocolError`.  Every ``run_test`` dispatch
carries a unique ``request_id``, which the generator node uses to
deduplicate retried dispatches — a replay never runs twice because its
reply got lost on the wire.
"""

from __future__ import annotations

import itertools
import time as _time
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..config import LOAD_LEVELS, ReplayConfig, TestRequest, WorkloadMode
from ..errors import ProtocolError
from ..host.communicator import Communicator, RetryPolicy
from ..host.database import ResultsDatabase
from ..host.ledger import RunLedger, build_record
from ..host.protocol import (
    Frame,
    KIND_ERROR,
    KIND_HELLO,
    KIND_LIST_TRACES,
    KIND_RUN_TEST,
    KIND_TEST_RESULT,
    KIND_TRACE_LIST,
)
from ..host.records import TestRecord
from ..telemetry.stream import frames_to_jsonl

#: Callback for streamed interval frames: ``on_progress(frame_dict)``
#: receives each interval frame's wire dict, in order, at most once.
ProgressFn = Callable[[Dict], None]


class RemoteEvaluationHost:
    """Client-side evaluation host for one generator node.

    Construction connects and performs the HELLO handshake; if either
    step fails the socket is closed before the error propagates (no
    leaked connections from refused handshakes).
    """

    def __init__(
        self,
        host: str,
        port: int,
        database: Optional[ResultsDatabase] = None,
        clock: Callable[[], float] = _time.time,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        ledger: Optional[RunLedger] = None,
        frames_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.database = database if database is not None else ResultsDatabase()
        self.clock = clock
        self.ledger = ledger
        self.frames_dir = Path(frames_dir) if frames_dir is not None else None
        self.node_id = "?"
        self.device_label = "?"
        self.comm: Optional[Communicator] = None
        self._client_id = uuid.uuid4().hex[:12]
        self._sequence = itertools.count()
        comm = self._connect(host, port, timeout, retry)
        try:
            self._handshake(comm)
        except BaseException:
            comm.close()
            raise
        self.comm = comm

    @staticmethod
    def _connect(
        host: str, port: int, timeout: float, retry: Optional[RetryPolicy]
    ) -> Communicator:
        """Dial the node (retried/bounded inside the communicator)."""
        return Communicator(host, port, timeout=timeout, retry=retry)

    def _handshake(self, comm: Communicator) -> None:
        """HELLO dialogue: learn the node's identity and device label."""
        reply = comm.request(Frame(KIND_HELLO, {}))
        if reply.kind == KIND_ERROR:
            raise ProtocolError(
                f"node refused hello: {reply.body.get('message')}"
            )
        self.node_id = reply.body.get("node_id", "?")
        self.device_label = reply.body.get("device", "?")

    def close(self) -> None:
        if self.comm is not None:
            self.comm.close()

    def __enter__(self) -> "RemoteEvaluationHost":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_comm(self) -> Communicator:
        if self.comm is None:
            raise ProtocolError("remote host is closed")
        return self.comm

    def list_traces(self) -> List[str]:
        reply = self._require_comm().request(Frame(KIND_LIST_TRACES, {}))
        if reply.kind != KIND_TRACE_LIST:
            raise ProtocolError(f"unexpected reply {reply.kind!r}")
        return list(reply.body.get("traces", []))

    def run_test(
        self,
        request: TestRequest,
        on_progress: Optional[ProgressFn] = None,
        stream_interval: Optional[float] = None,
    ) -> TestRecord:
        """Run one test remotely; store and return the record.

        The dispatch is tagged with a unique request id, so if the reply
        is lost and the communicator retries, the node returns the
        cached result of the first execution instead of replaying again.

        With ``stream_interval`` set, the node pushes one ``progress``
        frame per interval mid-replay; each interval frame's wire dict
        is handed to ``on_progress`` exactly once and in order (frames
        for other request ids, replays after a retried dispatch, and
        out-of-order duplicates are dropped by sequence number).
        """
        request_id = f"{self._client_id}-{next(self._sequence)}"
        body = self.run_test_raw(
            request,
            request_id=request_id,
            on_progress=on_progress,
            stream_interval=stream_interval,
        )
        record = TestRecord(
            test_time=self.clock(),
            device_label=self.device_label,
            mode=request.mode,
            mean_amperes=body["mean_watts"] / 220.0,
            mean_volts=220.0,
            mean_watts=body["mean_watts"],
            energy_joules=body["energy_joules"],
            iops=body["iops"],
            mbps=body["mbps"],
            mean_response=body["mean_response"],
            duration=body["duration"],
            iops_per_watt=body["iops_per_watt"],
            mbps_per_kilowatt=body["mbps_per_kilowatt"],
            label=request.label,
        )
        record_id = self.database.insert(record)
        telemetry = body.get("metadata", {}).get("telemetry")
        if telemetry:
            # The node ran with telemetry on; its snapshot rode the wire
            # in the result metadata — keep it with the record.
            self.database.insert_telemetry(record_id, telemetry)
        self._record_run(request, request_id, body)
        return record

    def run_test_raw(
        self,
        request: TestRequest,
        request_id: Optional[str] = None,
        on_progress: Optional[ProgressFn] = None,
        stream_interval: Optional[float] = None,
        trace_context: Optional[Dict] = None,
    ) -> Dict:
        """Run one test remotely; return the raw result-wire body.

        Unlike :meth:`run_test` this neither touches the local database
        nor the ledger — the caller owns persistence.  ``request_id``
        may be supplied by the caller (the fleet scheduler passes its
        job id so a job reassigned to a *new* connection against the
        same node is still served from the node's result cache instead
        of replaying); when omitted a fresh unique id is generated.
        ``trace_context`` (a ``repro.telemetry.dtrace`` context dict)
        rides the wire so the node's execution spans parent into the
        caller's distributed trace.
        """
        if request_id is None:
            request_id = f"{self._client_id}-{next(self._sequence)}"
        body_out: Dict = {
            "request": request.to_dict(),
            "request_id": request_id,
        }
        if trace_context is not None:
            body_out["trace_context"] = dict(trace_context)
        consume = None
        if stream_interval is not None and stream_interval > 0:
            body_out["stream"] = {
                "progress": on_progress is not None,
                "interval": float(stream_interval),
            }
            if on_progress is not None:
                seen_up_to = [-1]

                def consume(progress: Frame) -> None:
                    pbody = progress.body
                    if pbody.get("request_id") != request_id:
                        return
                    seq = pbody.get("seq")
                    frame = pbody.get("frame")
                    if not isinstance(seq, int) or not isinstance(frame, dict):
                        return
                    if seq <= seen_up_to[0]:
                        return
                    seen_up_to[0] = seq
                    emitted = pbody.get("emitted_at")
                    if emitted is not None:
                        # Surface the node's wall-clock emit time beside
                        # the sim-clock fields so watchers can compute
                        # replay lag (now - wall_emitted).  Injected
                        # host-side: the IntervalFrame dict schema
                        # itself stays golden-pinned.
                        frame = dict(frame)
                        frame["wall_emitted"] = float(emitted)
                    on_progress(frame)

        reply = self._require_comm().request(
            Frame(KIND_RUN_TEST, body_out), on_progress=consume
        )
        if reply.kind == KIND_ERROR:
            raise ProtocolError(f"remote test failed: {reply.body.get('message')}")
        if reply.kind != KIND_TEST_RESULT:
            raise ProtocolError(f"unexpected reply {reply.kind!r}")
        return dict(reply.body)

    def _record_run(
        self, request: TestRequest, request_id: str, body: Dict
    ) -> None:
        """Persist interval frames and the run-ledger row, when enabled."""
        frames = body.get("metadata", {}).get("interval_frames") or []
        frames_path: Optional[Path] = None
        if frames and self.frames_dir is not None:
            self.frames_dir.mkdir(parents=True, exist_ok=True)
            frames_path = self.frames_dir / f"run-{request_id}.jsonl"
            frames_path.write_text(frames_to_jsonl(frames), encoding="utf-8")
        if self.ledger is not None:
            self.ledger.append(
                build_record(
                    body,
                    origin=f"remote:{self.node_id}",
                    mode=request.mode.to_dict(),
                    replay=request.to_dict()["replay"],
                    run_id=request_id,
                    frames_path=str(frames_path) if frames_path else "",
                    created=self.clock(),
                )
            )

    def run_load_sweep(
        self,
        mode: WorkloadMode,
        levels: Sequence[float] = LOAD_LEVELS,
        replay: Optional[ReplayConfig] = None,
        label: str = "",
    ) -> List[TestRecord]:
        """Sweep load levels on the remote node."""
        records = []
        for level in levels:
            request = TestRequest(
                mode=mode.at_load(level),
                replay=replay if replay is not None else ReplayConfig(),
                label=label,
            )
            records.append(self.run_test(request))
        return records

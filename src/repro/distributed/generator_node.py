"""Workload-generator node: the TCP-serving side of Fig. 3.

A node owns one device under test (via a factory), one trace repository,
and answers the host's frames:

* ``hello`` → ``ack`` with node identity;
* ``list_traces`` → trace names available for its device;
* ``run_test`` → executes the replay locally and returns the flat
  result summary;
* ``shutdown`` → acknowledges (the owner stops the server).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import TestRequest
from ..errors import TracerError
from ..host.communicator import CommunicatorServer
from ..host.protocol import (
    Frame,
    KIND_ACK,
    KIND_ERROR,
    KIND_HELLO,
    KIND_LIST_TRACES,
    KIND_RUN_TEST,
    KIND_SHUTDOWN,
    KIND_TEST_RESULT,
    KIND_TRACE_LIST,
)
from ..replay.session import ReplaySession
from ..storage.base import StorageDevice
from ..trace.repository import TraceRepository

DeviceFactory = Callable[[], StorageDevice]


class GeneratorNode:
    """One workload-generator machine."""

    def __init__(
        self,
        device_factory: DeviceFactory,
        device_label: str,
        repository: TraceRepository,
        host: str = "127.0.0.1",
        port: int = 0,
        node_id: str = "generator-0",
    ) -> None:
        self.device_factory = device_factory
        self.device_label = device_label
        self.repository = repository
        self.node_id = node_id
        self.tests_served = 0
        self._server = CommunicatorServer(self._handle, host=host, port=port)

    @property
    def port(self) -> int:
        return self._server.port

    def start(self) -> "GeneratorNode":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()

    def __enter__(self) -> "GeneratorNode":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- Frame dispatch ------------------------------------------------------

    def _handle(self, frame: Frame) -> Frame:
        if frame.kind == KIND_HELLO:
            return Frame(
                KIND_ACK,
                {"node_id": self.node_id, "device": self.device_label},
            )
        if frame.kind == KIND_LIST_TRACES:
            names = [
                n.filename
                for n in self.repository.find(device=self.device_label)
            ]
            return Frame(KIND_TRACE_LIST, {"traces": names})
        if frame.kind == KIND_RUN_TEST:
            return self._run_test(frame)
        if frame.kind == KIND_SHUTDOWN:
            return Frame(KIND_ACK, {"node_id": self.node_id})
        return Frame(KIND_ERROR, {"message": f"unknown frame kind {frame.kind!r}"})

    def _run_test(self, frame: Frame) -> Frame:
        try:
            request = TestRequest.from_dict(frame.body["request"])
            name = self.repository.lookup(self.device_label, request.mode)
            trace = self.repository.load(name)
            device = self.device_factory()
            session = ReplaySession(device, config=request.replay)
            result = session.run(
                trace, load_proportion=request.mode.load_proportion
            )
        except (TracerError, KeyError, ValueError) as exc:
            return Frame(KIND_ERROR, {"message": f"{type(exc).__name__}: {exc}"})
        self.tests_served += 1
        body = result.to_dict()
        body["node_id"] = self.node_id
        return Frame(KIND_TEST_RESULT, body)

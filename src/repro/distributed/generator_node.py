"""Workload-generator node: the TCP-serving side of Fig. 3.

A node owns one device under test (via a factory), one trace repository,
and answers the host's frames:

* ``hello`` → ``ack`` with node identity;
* ``list_traces`` → trace names available for its device;
* ``run_test`` → executes the replay locally and returns the flat
  result summary;
* ``shutdown`` → acknowledges (the owner stops the server).

``run_test`` dispatches are idempotent when the host tags them with a
``request_id``: results are cached per id, so a retried dispatch (the
host's communicator resends after a lost reply) returns the cached
summary instead of replaying again.  A dispatch that arrives while the
same id is still executing waits for that execution to finish rather
than starting a second one.  Error replies are never cached — a retry
after a transient failure re-executes.
"""

from __future__ import annotations

import threading
import time as _time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from ..config import TestRequest
from ..errors import TracerError
from ..host.communicator import CommunicatorServer, PushFn
from ..host.protocol import (
    Frame,
    KIND_ACK,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_LIST_TRACES,
    KIND_PROGRESS,
    KIND_RUN_TEST,
    KIND_SHUTDOWN,
    KIND_TEST_RESULT,
    KIND_TRACE_LIST,
)
from ..obslog import get_logger
from ..replay.session import ReplaySession
from ..storage.base import StorageDevice
from ..trace.repository import TraceRepository

DeviceFactory = Callable[[], StorageDevice]

#: Most recent run_test results retained for retry deduplication.
RESULT_CACHE_SIZE = 256

#: Upper bound on how long a duplicate dispatch waits for the original
#: execution of the same request id before giving up with an error.
DUPLICATE_WAIT_SECONDS = 600.0


class GeneratorNode:
    """One workload-generator machine."""

    def __init__(
        self,
        device_factory: DeviceFactory,
        device_label: str,
        repository: TraceRepository,
        host: str = "127.0.0.1",
        port: int = 0,
        node_id: str = "generator-0",
        idle_timeout: Optional[float] = None,
    ) -> None:
        self.device_factory = device_factory
        self.device_label = device_label
        self.repository = repository
        self.node_id = node_id
        self.tests_served = 0
        self._lock = threading.Lock()
        self._results: "OrderedDict[str, Frame]" = OrderedDict()
        self._in_progress: Dict[str, threading.Event] = {}
        # Telemetry cursor for heartbeat deltas: each HEARTBEAT reply
        # reports only what happened since the previous one, so the
        # polling scheduler can merge beats without double-counting.
        self._heartbeat_mark: Optional[Dict[str, Any]] = None
        self._server = CommunicatorServer(
            self._handle, host=host, port=port, idle_timeout=idle_timeout
        )

    @property
    def port(self) -> int:
        return self._server.port

    def start(self) -> "GeneratorNode":
        self._server.start()
        return self

    def stop(self) -> None:
        self._server.stop()

    def __enter__(self) -> "GeneratorNode":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- Frame dispatch ------------------------------------------------------

    def _handle(self, frame: Frame, push: Optional[PushFn] = None) -> Frame:
        if frame.kind == KIND_HELLO:
            return Frame(
                KIND_ACK,
                {"node_id": self.node_id, "device": self.device_label},
            )
        if frame.kind == KIND_LIST_TRACES:
            names = [
                n.filename
                for n in self.repository.find(device=self.device_label)
            ]
            return Frame(KIND_TRACE_LIST, {"traces": names})
        if frame.kind == KIND_RUN_TEST:
            return self._run_test(frame, push)
        if frame.kind == KIND_HEARTBEAT:
            return self._heartbeat()
        if frame.kind == KIND_SHUTDOWN:
            return Frame(KIND_ACK, {"node_id": self.node_id})
        return Frame(KIND_ERROR, {"message": f"unknown frame kind {frame.kind!r}"})

    def _heartbeat(self) -> Frame:
        """Answer a liveness probe with identity, load, and telemetry.

        The telemetry section (present only when the node's process
        registry is enabled) is a *delta* since the previous heartbeat
        — cumulative instrument state stays on the node; pollers merge
        deltas, so repeated beats never double-count.
        """
        from ..telemetry.registry import get_registry

        body: Dict[str, Any] = {
            "node_id": self.node_id,
            "tests_served": self.tests_served,
        }
        registry = get_registry()
        if registry.enabled:
            with self._lock:
                mark = self._heartbeat_mark
                body["telemetry"] = registry.collect(since=mark)
                self._heartbeat_mark = registry.mark()
        return Frame(KIND_ACK, body)

    def _run_test(self, frame: Frame, push: Optional[PushFn] = None) -> Frame:
        request_id = frame.body.get("request_id")
        if request_id is None:
            # Legacy host without ids: execute unconditionally.
            return self._execute(frame, push)
        while True:
            with self._lock:
                cached = self._results.get(request_id)
                if cached is not None:
                    return cached
                running = self._in_progress.get(request_id)
                if running is None:
                    done = threading.Event()
                    self._in_progress[request_id] = done
                    break
            # Same id already executing on another connection: wait for
            # it, then loop to pick up the cached result (or re-claim
            # the id if the first execution errored).
            if not running.wait(DUPLICATE_WAIT_SECONDS):
                return Frame(
                    KIND_ERROR,
                    {
                        "message": (
                            f"request {request_id!r} still executing after "
                            f"{DUPLICATE_WAIT_SECONDS}s"
                        )
                    },
                )
        reply: Optional[Frame] = None
        try:
            reply = self._execute(frame, push)
        finally:
            with self._lock:
                # Cache only successes; a failed execution may succeed
                # on retry, so the id stays claimable.
                if reply is not None and reply.kind == KIND_TEST_RESULT:
                    self._results[request_id] = reply
                    while len(self._results) > RESULT_CACHE_SIZE:
                        self._results.popitem(last=False)
                self._in_progress.pop(request_id, None)
                done.set()
        return reply

    def _execute(self, frame: Frame, push: Optional[PushFn] = None) -> Frame:
        request_id = frame.body.get("request_id")
        stream = frame.body.get("stream") or {}
        interval = float(stream.get("interval") or 0.0)
        on_frame = None
        if push is not None and interval > 0 and stream.get("progress"):
            node_id = self.node_id
            # Mutable cell so a dead peer stops further pushes; the
            # replay itself keeps running and the terminal reply (or a
            # retry served from cache) still carries every frame.
            live = [True]

            def on_frame(iframe) -> None:
                # ``emitted_at`` is the node's wall clock at push time,
                # riding *beside* the sim-clock frame dict so watchers
                # can show replay lag without touching the golden-
                # pinned IntervalFrame schema.
                if live[0] and not push(
                    Frame(
                        KIND_PROGRESS,
                        {
                            "request_id": request_id,
                            "seq": iframe.index,
                            "frame": iframe.to_dict(),
                            "node_id": node_id,
                            "emitted_at": _time.time(),
                        },
                    )
                ):
                    live[0] = False

        slog = get_logger("generator_node")
        try:
            request = TestRequest.from_dict(frame.body["request"])
            name = self.repository.lookup(self.device_label, request.mode)
            trace = self.repository.load(name)
            device = self.device_factory()
            session = ReplaySession(
                device,
                config=request.replay,
                stream_interval=interval if interval > 0 else None,
                on_frame=on_frame,
            )
            slog.event(
                "run_test",
                node=self.node_id,
                request_id=request_id,
                trace=name.filename,
                streaming=interval if interval > 0 else 0.0,
            )
            trace_context = frame.body.get("trace_context")
            span_sink = None
            if trace_context:
                # The host propagated a distributed-tracing context:
                # execute inside it so the session's phase spans parent
                # to the dispatching fleet attempt, and send the spans
                # home in the result metadata.
                from ..telemetry import dtrace

                ctx = dtrace.TraceContext.from_dict(trace_context)
                with dtrace.tracing_scope(ctx) as span_sink:
                    with dtrace.span(dtrace.SPAN_NODE_EXECUTE,
                                     node=self.node_id,
                                     trace=name.filename):
                        result = session.run(
                            trace,
                            load_proportion=request.mode.load_proportion,
                        )
            else:
                result = session.run(
                    trace, load_proportion=request.mode.load_proportion
                )
        except (TracerError, KeyError, ValueError) as exc:
            slog.event(
                "run_test_error",
                node=self.node_id,
                request_id=request_id,
                error=f"{type(exc).__name__}: {exc}",
            )
            return Frame(KIND_ERROR, {"message": f"{type(exc).__name__}: {exc}"})
        self.tests_served += 1
        body = result.to_dict()
        body["node_id"] = self.node_id
        if span_sink is not None:
            metadata = dict(body.get("metadata") or {})
            metadata["dtrace"] = span_sink
            body["metadata"] = metadata
        return Frame(KIND_TEST_RESULT, body)

"""Parallel multi-array evaluation on one simulation clock (Fig. 3).

"The multi-channel power analyzers in Figure 3 can monitor power
dissipation in multiple storage devices in parallel."  Here several
arrays replay their traces concurrently in a single discrete-event
simulation, each clamped by one channel of a
:class:`~repro.power.meter.MultiChannelMeter`; results come back per
array, measured over the same simulated wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.loadcontrol import LoadController
from ..errors import ReplayError
from ..power.meter import MultiChannelMeter
from ..replay.engine import ReplayEngine
from ..replay.monitor import PerformanceMonitor
from ..replay.results import ReplayResult
from ..sim.engine import Simulator
from ..storage.array import DiskArray
from ..trace.record import Trace


@dataclass
class ArrayRun:
    """One array's assignment in a parallel evaluation."""

    array: DiskArray
    trace: Trace
    load_proportion: float = 1.0


class MultiArrayEvaluation:
    """Replay several (array, trace) pairs concurrently."""

    def __init__(self, sampling_cycle: float = 1.0, group_size: int = 10) -> None:
        self.sampling_cycle = sampling_cycle
        self.controller = LoadController(group_size=group_size)

    def run(self, runs: List[ArrayRun]) -> List[ReplayResult]:
        """Execute all runs on one shared clock; returns aligned results."""
        if not runs:
            raise ReplayError("no array runs given")
        sim = Simulator()
        meter = MultiChannelMeter(
            n_channels=len(runs), sampling_cycle=self.sampling_cycle
        )
        engines: List[ReplayEngine] = []
        monitors: List[PerformanceMonitor] = []

        for channel, run in enumerate(runs):
            run.array.attach(sim)
            manipulated = self.controller.apply(run.trace, run.load_proportion)
            if len(manipulated) == 0:
                raise ReplayError(
                    f"array {run.array.name}: nothing to replay at "
                    f"{run.load_proportion}"
                )
            monitor = PerformanceMonitor(sampling_cycle=self.sampling_cycle)
            engine = ReplayEngine(
                sim, manipulated, run.array, on_completion=monitor.record
            )
            meter.connect(channel, run.array.meter)
            monitors.append(monitor)
            engines.append(engine)

        start = sim.now
        for monitor in monitors:
            monitor.start(sim)
        meter.start_all(sim)
        for engine in engines:
            engine.start()

        while not all(engine.done for engine in engines):
            if not sim.step():
                raise ReplayError("simulation drained with requests outstanding")

        for monitor in monitors:
            monitor.stop()
        readings = meter.stop_all()
        end = sim.now

        results = []
        for channel, (run, engine, monitor) in enumerate(
            zip(runs, engines, monitors)
        ):
            reading = readings[channel]
            completed = monitor.total_completed
            responses = sum(s.total_response for s in monitor.samples)
            # Each array is measured over the shared window (start..end):
            # arrays that finish early idle until the slowest one drains,
            # exactly as parallel hardware channels would.
            duration = end - start
            results.append(
                ReplayResult(
                    trace_label=engine.trace.label,
                    load_proportion=run.load_proportion,
                    duration=duration,
                    completed=completed,
                    total_bytes=monitor.total_bytes,
                    mean_response=responses / completed if completed else 0.0,
                    mean_watts=reading.mean_watts,
                    energy_joules=reading.total_energy_joules,
                    perf_samples=list(monitor.samples),
                    power_samples=meter.samples(channel),
                    metadata={"array": run.array.name, "channel": channel},
                )
            )
        return results

"""Workload characterisation of a trace.

Extends :mod:`repro.trace.stats` (the Table III quantities) with the
distributional facts storage papers quote: request-size histogram,
seek-distance distribution, arrival burstiness, temporal read-ratio
drift, and spatial hot regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..trace.record import Trace
from ..trace.stats import TraceStats, compute_stats
from ..units import KiB


@dataclass(frozen=True)
class WorkloadProfile:
    """Full characterisation of one trace."""

    stats: TraceStats
    size_histogram: Tuple[Tuple[str, int], ...]
    """(bucket label, count) pairs over power-of-two size buckets."""
    seek_p50_sectors: float
    seek_p95_sectors: float
    seek_zero_fraction: float
    """Fraction of transitions with no address jump (streaming)."""
    interarrival_cv: float
    """Coefficient of variation of bunch inter-arrivals (1 ≈ Poisson,
    >1 bursty, <1 regular)."""
    max_bunch_size: int
    read_ratio_drift: float
    """Max deviation of any decile window's read ratio from the global."""
    hot_regions: Tuple[Tuple[int, float], ...]
    """Top regions as (region index, fraction of accesses); regions are
    1/100th slices of the touched address span."""

    @property
    def hot_region_share(self) -> float:
        """Access share of the top-10 regions (locality measure)."""
        return sum(frac for _, frac in self.hot_regions)


def _size_buckets(sizes: np.ndarray) -> List[Tuple[str, int]]:
    buckets: List[Tuple[str, int]] = []
    edges = [512 * (2**i) for i in range(0, 13)]  # 512 B .. 2 MiB
    labels = []
    for lo, hi in zip(edges, edges[1:]):
        labels.append((lo, hi))
    counts = np.zeros(len(labels) + 1, dtype=int)
    for size in sizes:
        for i, (lo, hi) in enumerate(labels):
            if lo <= size < hi:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    for (lo, hi), count in zip(labels, counts[:-1]):
        if count:
            buckets.append((f"[{lo // 512 * 512}B,{hi}B)", int(count)))
    if counts[-1]:
        buckets.append((">=2MiB", int(counts[-1])))
    return buckets


def profile_trace(trace: Trace, n_hot: int = 10) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile` for ``trace``."""
    stats = compute_stats(trace)
    packages = list(trace.packages())
    sizes = np.array([p.nbytes for p in packages], dtype=np.int64)
    starts = np.array([p.sector for p in packages], dtype=np.int64)
    ends = np.array([p.end_sector for p in packages], dtype=np.int64)
    ops = np.array([p.op for p in packages], dtype=np.int8)

    if len(packages) > 1:
        jumps = np.abs(starts[1:] - ends[:-1])
        seek_zero = float(np.count_nonzero(jumps == 0) / len(jumps))
        p50 = float(np.percentile(jumps, 50))
        p95 = float(np.percentile(jumps, 95))
    else:
        jumps = np.empty(0)
        seek_zero, p50, p95 = 0.0, 0.0, 0.0

    ts = np.array([b.timestamp for b in trace])
    gaps = np.diff(ts) if len(ts) > 1 else np.empty(0)
    cv = (
        float(gaps.std() / gaps.mean())
        if gaps.size and gaps.mean() > 0
        else 0.0
    )

    # Read-ratio drift across decile windows.
    drift = 0.0
    if len(packages) >= 20:
        deciles = np.array_split(ops, 10)
        global_read = float(np.count_nonzero(ops == 0) / len(ops))
        for window in deciles:
            if len(window):
                local = float(np.count_nonzero(window == 0) / len(window))
                drift = max(drift, abs(local - global_read))

    # Hot regions over the touched span.
    hot: List[Tuple[int, float]] = []
    if len(packages):
        lo, hi = int(starts.min()), int(ends.max())
        span = max(hi - lo, 1)
        region = np.clip((starts - lo) * 100 // span, 0, 99)
        counts = np.bincount(region, minlength=100).astype(float)
        counts /= counts.sum()
        order = np.argsort(counts)[::-1][:n_hot]
        hot = [(int(i), float(counts[i])) for i in order if counts[i] > 0]

    return WorkloadProfile(
        stats=stats,
        size_histogram=tuple(_size_buckets(sizes)) if len(sizes) else (),
        seek_p50_sectors=p50,
        seek_p95_sectors=p95,
        seek_zero_fraction=seek_zero,
        interarrival_cv=cv,
        max_bunch_size=max((len(b) for b in trace), default=0),
        read_ratio_drift=drift,
        hot_regions=tuple(hot),
    )


def format_profile(profile: WorkloadProfile, title: str = "") -> str:
    """Human-readable rendering (used by ``tracer profile``)."""
    st = profile.stats
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"bunches / packages : {st.bunch_count} / {st.package_count}")
    lines.append(f"duration           : {st.duration:.3f} s")
    lines.append(f"offered load       : {st.iops:.1f} IOPS, {st.mbps:.2f} MBPS")
    lines.append(f"read ratio         : {st.read_ratio * 100:.2f} % "
                 f"(max decile drift {profile.read_ratio_drift * 100:.1f} pp)")
    lines.append(f"random ratio       : {st.random_ratio * 100:.2f} %")
    lines.append(f"mean request       : {st.mean_request_bytes / KiB:.2f} KiB")
    lines.append(f"dataset touched    : {st.dataset_gib:.3f} GiB")
    lines.append(
        f"seek distance      : p50 {profile.seek_p50_sectors:.0f} / "
        f"p95 {profile.seek_p95_sectors:.0f} sectors "
        f"({profile.seek_zero_fraction * 100:.1f} % streaming)"
    )
    lines.append(f"arrival burstiness : CV {profile.interarrival_cv:.2f} "
                 f"(1 = Poisson)")
    lines.append(f"max bunch fan-out  : {profile.max_bunch_size}")
    lines.append(
        f"locality           : top-10 regions hold "
        f"{profile.hot_region_share * 100:.1f} % of accesses"
    )
    if profile.size_histogram:
        lines.append("request sizes:")
        total = sum(c for _, c in profile.size_histogram)
        for label, count in profile.size_histogram:
            bar = "#" * max(1, round(40 * count / total))
            lines.append(f"  {label:<18} {count:>8} {bar}")
    return "\n".join(lines)

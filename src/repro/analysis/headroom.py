"""Load-headroom analysis via intensity scaling.

The Fig. 2 walkthrough shows TRACER scaling a trace's intensity to
200 % or 1000 % of the original — the natural question that feature
answers is *how much headroom does this system have on this workload?*
This module automates it: bisect the time-scale intensity until the
replayed workload's response time crosses a service-level threshold.
The result is the saturation intensity — "this array sustains 3.4× the
recorded load before p95 latency exceeds 50 ms".

Monotonicity note: response time is monotone in offered intensity for
a work-conserving device, which is what makes bisection sound; the
search verifies the bracket before refining it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..config import ReplayConfig
from ..errors import TracerError
from ..replay.session import ReplaySession
from ..storage.base import StorageDevice
from ..trace.record import Trace

DeviceFactory = Callable[[], StorageDevice]


class HeadroomError(TracerError):
    """Unusable search configuration or bracket."""


@dataclass(frozen=True)
class HeadroomPoint:
    """One probed intensity."""

    intensity: float
    mean_response: float
    p95_response: float
    iops: float
    mean_watts: float


@dataclass(frozen=True)
class HeadroomResult:
    """Outcome of a headroom search."""

    saturation_intensity: float
    """Largest probed intensity that still met the SLO."""
    first_violation: float
    """Smallest probed intensity that violated it."""
    probes: Tuple[HeadroomPoint, ...]

    @property
    def headroom_factor(self) -> float:
        """How many times the recorded load the system sustains."""
        return self.saturation_intensity


def _p95(result) -> float:
    responses = [
        s.total_response / s.completed
        for s in result.perf_samples
        if s.completed
    ]
    if not responses:
        return 0.0
    return float(np.percentile(responses, 95))


def find_headroom(
    trace: Trace,
    device_factory: DeviceFactory,
    response_slo: float = 0.050,
    metric: str = "mean",
    max_intensity: float = 64.0,
    tolerance: float = 0.1,
    config: Optional[ReplayConfig] = None,
) -> HeadroomResult:
    """Bisect for the highest intensity meeting ``response_slo`` seconds.

    Parameters
    ----------
    metric:
        ``"mean"`` (mean response) or ``"p95"`` (95th percentile of the
        per-cycle mean responses).
    max_intensity:
        Upper bound of the exponential bracket search.
    tolerance:
        Relative width at which bisection stops.
    """
    if metric not in ("mean", "p95"):
        raise HeadroomError(f"metric must be 'mean' or 'p95', got {metric!r}")
    if response_slo <= 0 or max_intensity <= 1.0 or not 0 < tolerance < 1:
        raise HeadroomError("invalid search parameters")
    probes: List[HeadroomPoint] = []

    def probe(intensity: float) -> Tuple[bool, HeadroomPoint]:
        probe_cfg = ReplayConfig(
            sampling_cycle=(config.sampling_cycle if config else 1.0),
            time_scale=intensity,
        )
        session = ReplaySession(device_factory(), config=probe_cfg)
        result = session.run(trace, 1.0)
        value = result.mean_response if metric == "mean" else _p95(result)
        point = HeadroomPoint(
            intensity=intensity,
            mean_response=result.mean_response,
            p95_response=_p95(result),
            iops=result.iops,
            mean_watts=result.mean_watts,
        )
        probes.append(point)
        return value <= response_slo, point

    ok_at_one, _ = probe(1.0)
    if not ok_at_one:
        raise HeadroomError(
            "the recorded workload already violates the SLO at 1.0x; "
            "no headroom to measure"
        )
    # Exponential bracket: double until violation or cap.
    low, high = 1.0, 2.0
    while high <= max_intensity:
        ok, _ = probe(high)
        if not ok:
            break
        low = high
        high *= 2.0
    else:
        # Never violated up to the cap.
        return HeadroomResult(
            saturation_intensity=low,
            first_violation=float("inf"),
            probes=tuple(probes),
        )
    # Bisection within (low, high).
    while (high - low) / low > tolerance:
        mid = (low + high) / 2.0
        ok, _ = probe(mid)
        if ok:
            low = mid
        else:
            high = mid
    return HeadroomResult(
        saturation_intensity=low,
        first_violation=high,
        probes=tuple(probes),
    )

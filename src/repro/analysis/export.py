"""CSV export of evaluation outputs.

Plotting and statistics happen outside this library (the environment is
matplotlib-free by design); these writers produce the flat files any
external tool ingests.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union

from ..host.records import TestRecord
from ..replay.results import ReplayResult

PathLike = Union[str, Path]

RECORD_COLUMNS = [
    "test_time",
    "device_label",
    "request_size",
    "random_ratio",
    "read_ratio",
    "load_proportion",
    "iops",
    "mbps",
    "mean_response",
    "mean_watts",
    "energy_joules",
    "iops_per_watt",
    "mbps_per_kilowatt",
    "label",
]


def export_records_csv(records: Iterable[TestRecord], path: PathLike) -> int:
    """Write test records to CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(RECORD_COLUMNS)
        for rec in records:
            writer.writerow(
                [
                    rec.test_time,
                    rec.device_label,
                    rec.mode.request_size,
                    rec.mode.random_ratio,
                    rec.mode.read_ratio,
                    rec.mode.load_proportion,
                    rec.iops,
                    rec.mbps,
                    rec.mean_response,
                    rec.mean_watts,
                    rec.energy_joules,
                    rec.iops_per_watt,
                    rec.mbps_per_kilowatt,
                    rec.label,
                ]
            )
            count += 1
    return count


CYCLE_COLUMNS = [
    "start",
    "end",
    "iops",
    "mbps",
    "mean_response",
    "watts",
    "iops_per_watt",
    "mbps_per_kilowatt",
]


def export_cycles_csv(result: ReplayResult, path: PathLike) -> int:
    """Write one replay's aligned per-cycle series to CSV."""
    cycles = result.cycles()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CYCLE_COLUMNS)
        for c in cycles:
            writer.writerow(
                [
                    c.start,
                    c.end,
                    c.iops,
                    c.mbps,
                    c.mean_response,
                    c.watts,
                    c.iops_per_watt,
                    c.mbps_per_kilowatt,
                ]
            )
    return len(cycles)

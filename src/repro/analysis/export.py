"""Shared text/CSV writers for evaluation outputs.

Plotting and statistics happen outside this library (the environment is
matplotlib-free by design); these writers produce the flat files any
external tool ingests, plus the one table and JSON rendering every
human-facing surface shares (``tracer runs show``, the policy
comparison, the search report) so their formatting cannot drift apart.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Sequence, Union

from ..host.records import TestRecord
from ..replay.results import ReplayResult

PathLike = Union[str, Path]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Render a markdown pipe table; cells are stringified as given.

    The single table writer every report in the repo uses — pass
    pre-formatted strings for numeric cells so precision stays the
    caller's decision.
    """
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "---|" * len(headers),
    ]
    for row in rows:
        cells = [str(c) for c in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"table row has {len(cells)} cells, expected {len(headers)}"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_json(payload: Any) -> str:
    """The one JSON rendering (sorted keys, 2-space indent) shared by
    ``tracer runs show`` and every exported report artifact."""
    return json.dumps(payload, indent=2, sort_keys=True)

RECORD_COLUMNS = [
    "test_time",
    "device_label",
    "request_size",
    "random_ratio",
    "read_ratio",
    "load_proportion",
    "iops",
    "mbps",
    "mean_response",
    "mean_watts",
    "energy_joules",
    "iops_per_watt",
    "mbps_per_kilowatt",
    "label",
]


def export_records_csv(records: Iterable[TestRecord], path: PathLike) -> int:
    """Write test records to CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(RECORD_COLUMNS)
        for rec in records:
            writer.writerow(
                [
                    rec.test_time,
                    rec.device_label,
                    rec.mode.request_size,
                    rec.mode.random_ratio,
                    rec.mode.read_ratio,
                    rec.mode.load_proportion,
                    rec.iops,
                    rec.mbps,
                    rec.mean_response,
                    rec.mean_watts,
                    rec.energy_joules,
                    rec.iops_per_watt,
                    rec.mbps_per_kilowatt,
                    rec.label,
                ]
            )
            count += 1
    return count


CYCLE_COLUMNS = [
    "start",
    "end",
    "iops",
    "mbps",
    "mean_response",
    "watts",
    "iops_per_watt",
    "mbps_per_kilowatt",
]


def export_cycles_csv(result: ReplayResult, path: PathLike) -> int:
    """Write one replay's aligned per-cycle series to CSV."""
    cycles = result.cycles()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CYCLE_COLUMNS)
        for c in cycles:
            writer.writerow(
                [
                    c.start,
                    c.end,
                    c.iops,
                    c.mbps,
                    c.mean_response,
                    c.watts,
                    c.iops_per_watt,
                    c.mbps_per_kilowatt,
                ]
            )
    return len(cycles)

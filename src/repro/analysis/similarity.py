"""Statistical similarity of two traces.

Section IV-A's central claim is that the uniform filter scales a
trace's intensity "without significantly changing the characteristics
of the original I/O traces".  This module makes that claim testable —
and maps out where it does and does not hold:

* **content characteristics** (request sizes, read mix, spatial
  locality) are carried by the selected bunches and survive filtering
  essentially intact;
* **microscopic arrival shape** (the inter-bunch gap *distribution*)
  is deliberately coarsened by uniform selection: gaps between
  selected bunches are sums of ``group_size/k`` original gaps, so the
  distribution is CLT-smoothed.  Bernoulli thinning preserves the gap
  shape instead — but fluctuates the macroscopic waveform, which is the
  distortion the paper actually cares about (quantified by
  ``benchmarks/bench_ablation_selection.py``);
* **sequential-run structure** shortens at low levels: dropping bunches
  breaks inter-bunch address continuity, so the measured random ratio
  of a heavily filtered trace rises.  This is inherent to any bunch
  subsetting, uniform or not.

Distribution distances are two-sample Kolmogorov-Smirnov statistics;
spatial locality uses total-variation distance between the region
histograms; scalar characteristics are absolute deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats as _scipy_stats

from ..errors import TracerError
from ..trace.record import Trace
from ..trace.stats import compute_stats


class SimilarityError(TracerError):
    """Traces unsuitable for comparison (e.g. empty)."""


@dataclass(frozen=True)
class TraceSimilarity:
    """Distributional distances between two traces (0 = identical)."""

    size_ks: float
    """KS distance between request-size distributions."""
    interarrival_ks: float
    """KS distance between (mean-normalised) inter-bunch gap
    distributions.  Expect this to be *large* for uniform filtering at
    low levels — see the module docstring; it measures microscopic gap
    shape, not load waveform."""
    read_ratio_delta: float
    random_ratio_delta: float
    """Rises at low filter levels because bunch dropping breaks
    sequential runs — inherent to subsetting, not a filter defect."""
    locality_tv: float
    """Total-variation distance between spatial region histograms
    (0 = accesses spread identically, 1 = disjoint)."""

    @property
    def content_distortion(self) -> float:
        """Worst drift among the content characteristics the paper's
        claim covers (sizes, op mix, locality)."""
        return max(self.size_ks, self.read_ratio_delta, self.locality_tv)


def _sizes(trace: Trace) -> np.ndarray:
    return np.array([p.nbytes for p in trace.packages()], dtype=np.float64)


def _gaps(trace: Trace) -> np.ndarray:
    ts = np.array([b.timestamp for b in trace], dtype=np.float64)
    gaps = np.diff(ts)
    gaps = gaps[gaps > 0]
    if gaps.size and gaps.mean() > 0:
        gaps = gaps / gaps.mean()
    return gaps


def _region_histogram(
    trace: Trace, lo: int, span: int, n_regions: int = 50
) -> np.ndarray:
    starts = np.array([p.sector for p in trace.packages()], dtype=np.int64)
    region = np.clip((starts - lo) * n_regions // span, 0, n_regions - 1)
    counts = np.bincount(region, minlength=n_regions).astype(np.float64)
    total = counts.sum()
    return counts / total if total else counts


def _ks(a: np.ndarray, b: np.ndarray) -> float:
    if a.size == 0 or b.size == 0:
        return 0.0 if a.size == b.size else 1.0
    return float(_scipy_stats.ks_2samp(a, b).statistic)


def compare_traces(original: Trace, manipulated: Trace) -> TraceSimilarity:
    """Measure how far ``manipulated`` drifted from ``original``."""
    if len(original) == 0 or len(manipulated) == 0:
        raise SimilarityError("cannot compare empty traces")
    orig_stats = compute_stats(original)
    manip_stats = compute_stats(manipulated)

    # Shared spatial frame: the original's extent.
    starts = np.array([p.sector for p in original.packages()], dtype=np.int64)
    lo = int(starts.min())
    span = max(int(starts.max()) + 1 - lo, 1)
    hist_a = _region_histogram(original, lo, span)
    hist_b = _region_histogram(manipulated, lo, span)
    locality_tv = float(0.5 * np.abs(hist_a - hist_b).sum())

    return TraceSimilarity(
        size_ks=_ks(_sizes(original), _sizes(manipulated)),
        interarrival_ks=_ks(_gaps(original), _gaps(manipulated)),
        read_ratio_delta=abs(orig_stats.read_ratio - manip_stats.read_ratio),
        random_ratio_delta=abs(
            orig_stats.random_ratio - manip_stats.random_ratio
        ),
        locality_tv=locality_tv,
    )


def format_similarity(sim: TraceSimilarity) -> str:
    """One-line-per-characteristic rendering."""
    return "\n".join(
        [
            f"request size KS      : {sim.size_ks:.4f}",
            f"inter-arrival KS     : {sim.interarrival_ks:.4f}",
            f"read ratio drift     : {sim.read_ratio_delta:.4f}",
            f"random ratio drift   : {sim.random_ratio_delta:.4f}",
            f"locality TV distance : {sim.locality_tv:.4f}",
            f"content distortion   : {sim.content_distortion:.4f}",
        ]
    )

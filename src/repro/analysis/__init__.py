"""Analysis and reporting utilities.

Turning the framework's raw outputs into the artefacts an evaluation
actually ships:

* :mod:`~repro.analysis.profile` — workload characterisation of a trace
  (size/seek/arrival distributions, locality, hot regions) — the
  numbers one quotes when describing a trace, à la Table III;
* :mod:`~repro.analysis.export` — CSV export of test records and
  per-cycle series for external plotting;
* :mod:`~repro.analysis.report` — a markdown evaluation report straight
  from a results database.
"""

from .profile import WorkloadProfile, profile_trace, format_profile
from .export import export_records_csv, export_cycles_csv
from .report import database_report
from .similarity import TraceSimilarity, compare_traces, format_similarity
from .headroom import HeadroomResult, find_headroom

__all__ = [
    "HeadroomResult",
    "find_headroom",
    "WorkloadProfile",
    "profile_trace",
    "format_profile",
    "export_records_csv",
    "export_cycles_csv",
    "database_report",
    "TraceSimilarity",
    "compare_traces",
    "format_similarity",
]

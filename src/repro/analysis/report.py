"""Markdown evaluation report from a results database.

"The users are able to send queries to the database to access results
after the testing processes are done" (§III-A1) — this module is the
query that writes the whole story down: per device, per workload mode,
the load sweep with throughput / power / efficiency, plus cross-device
efficiency comparisons.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..host.database import ResultsDatabase
from ..host.records import TestRecord
from .export import render_table

ModeKey = Tuple[int, float, float]


def _group_by_mode(records: List[TestRecord]) -> Dict[ModeKey, List[TestRecord]]:
    grouped: Dict[ModeKey, List[TestRecord]] = defaultdict(list)
    for rec in records:
        key = (
            rec.mode.request_size,
            rec.mode.random_ratio,
            rec.mode.read_ratio,
        )
        grouped[key].append(rec)
    for rows in grouped.values():
        rows.sort(key=lambda r: r.mode.load_proportion)
    return dict(grouped)


def _mode_heading(key: ModeKey) -> str:
    rs, rnd, rd = key
    return (
        f"request {rs} B · random {rnd * 100:.0f} % · read {rd * 100:.0f} %"
    )


def database_report(db: ResultsDatabase, title: str = "TRACER evaluation") -> str:
    """Render the entire database as a markdown report."""
    lines = [f"# {title}", ""]
    devices = db.devices()
    if not devices:
        lines.append("_No records._")
        return "\n".join(lines)

    lines.append(f"{db.count()} test records across "
                 f"{len(devices)} device(s): {', '.join(devices)}.")
    lines.append("")

    best: List[Tuple[float, str, str]] = []
    for device in devices:
        lines.append(f"## {device}")
        lines.append("")
        records = db.query(device_label=device)
        for key, rows in sorted(_group_by_mode(records).items()):
            lines.append(f"### {_mode_heading(key)}")
            lines.append("")
            lines.append(
                "| load % | IOPS | MBPS | resp (ms) | Watts | "
                "IOPS/W | MBPS/kW |"
            )
            lines.append("|---|---|---|---|---|---|---|")
            for rec in rows:
                lines.append(
                    f"| {rec.mode.load_proportion * 100:.0f} "
                    f"| {rec.iops:.1f} | {rec.mbps:.2f} "
                    f"| {rec.mean_response * 1000:.3f} "
                    f"| {rec.mean_watts:.2f} | {rec.iops_per_watt:.2f} "
                    f"| {rec.mbps_per_kilowatt:.1f} |"
                )
            lines.append("")
            full = [r for r in rows if abs(r.mode.load_proportion - 1.0) < 1e-9]
            if full:
                best.append(
                    (full[0].mbps_per_kilowatt, device, _mode_heading(key))
                )

    if best:
        best.sort(reverse=True)
        lines.append("## Efficiency ranking (full load, MBPS/kW)")
        lines.append("")
        lines.append("| rank | device | workload | MBPS/kW |")
        lines.append("|---|---|---|---|")
        for rank, (eff, device, heading) in enumerate(best, start=1):
            lines.append(f"| {rank} | {device} | {heading} | {eff:.1f} |")
        lines.append("")

    return "\n".join(lines)


def _search_row(rank: int, cell) -> List[str]:
    m = cell.metrics
    saving = m.energy_saving if m.energy_saving is not None else 0.0
    penalty = (
        m.response_penalty if m.response_penalty is not None else 0.0
    )
    return [
        str(rank),
        cell.key,
        f"{m.iops_per_watt:.3f}",
        f"{m.energy_joules:.3f}",
        f"{saving * 100:.1f}%",
        f"{m.mean_response * 1000:.3f}",
        f"{m.p99_response * 1000:.3f}",
        f"{penalty * 100:.1f}%",
    ]


SEARCH_HEADERS = (
    "rank", "cell", "IOPS/W", "energy J",
    "saving%", "resp ms", "p99 ms", "penalty%",
)


def search_report(
    outcome,
    title: str = "TRACER policy search",
    top: int = 10,
    deterministic: bool = False,
) -> str:
    """Ranked recommendation report for a policy search.

    Renders the :class:`~repro.search.SearchOutcome` as markdown: the
    IOPS/Watt ranking (the paper's headline efficiency metric), the
    exact Pareto frontier (energy vs. mean response), and a one-line
    recommendation.  ``deterministic=True`` omits engine provenance and
    wall-clock so the text is byte-identical across runs and telemetry
    settings — the form the golden tests pin.
    """
    lines = [f"# {title}", ""]
    n_dev, n_trace, n_load, n_scale, n_pol = outcome.shape
    lines.append(
        f"{outcome.base_cells} base cell(s) "
        f"({n_dev} device(s) × {n_trace} trace(s) × {n_load} load(s) × "
        f"{n_scale} time-scale(s)) × {n_pol} policies = "
        f"{len(outcome.cells)} scored cells."
    )
    lines.append("")
    if not deterministic:
        mix = ", ".join(
            f"{k}×{v}" for k, v in sorted(outcome.engines.items())
        )
        lines.append(
            f"Engine mix: {mix}; {outcome.fused_cells} cell(s) fused; "
            f"{outcome.elapsed_seconds:.2f} s."
        )
        lines.append("")

    ranked = outcome.ranked()
    shown = ranked[: max(0, top)]
    lines.append(f"## Efficiency ranking (IOPS/Watt, top {len(shown)})")
    lines.append("")
    lines.append(
        render_table(
            SEARCH_HEADERS,
            [_search_row(i, c) for i, c in enumerate(shown, start=1)],
        )
    )
    lines.append("")

    front = outcome.frontier()
    lines.append("## Pareto frontier (energy vs. mean response)")
    lines.append("")
    lines.append(
        render_table(
            ("cell", "energy J", "resp ms", "p99 ms", "IOPS/W"),
            [
                [
                    c.key,
                    f"{c.metrics.energy_joules:.3f}",
                    f"{c.metrics.mean_response * 1000:.3f}",
                    f"{c.metrics.p99_response * 1000:.3f}",
                    f"{c.metrics.iops_per_watt:.3f}",
                ]
                for c in front
            ],
        )
    )
    lines.append("")

    if ranked:
        best = ranked[0]
        m = best.metrics
        saving = (m.energy_saving or 0.0) * 100
        penalty = (m.response_penalty or 0.0) * 100
        lines.append("## Recommendation")
        lines.append("")
        lines.append(
            f"`{best.key}` delivers the best efficiency at "
            f"{m.iops_per_watt:.3f} IOPS/Watt "
            f"(energy saving {saving:.1f}%, "
            f"response penalty {penalty:.1f}% vs. always-on)."
        )
        lines.append("")

    return "\n".join(lines)

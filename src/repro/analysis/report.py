"""Markdown evaluation report from a results database.

"The users are able to send queries to the database to access results
after the testing processes are done" (§III-A1) — this module is the
query that writes the whole story down: per device, per workload mode,
the load sweep with throughput / power / efficiency, plus cross-device
efficiency comparisons.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..host.database import ResultsDatabase
from ..host.records import TestRecord

ModeKey = Tuple[int, float, float]


def _group_by_mode(records: List[TestRecord]) -> Dict[ModeKey, List[TestRecord]]:
    grouped: Dict[ModeKey, List[TestRecord]] = defaultdict(list)
    for rec in records:
        key = (
            rec.mode.request_size,
            rec.mode.random_ratio,
            rec.mode.read_ratio,
        )
        grouped[key].append(rec)
    for rows in grouped.values():
        rows.sort(key=lambda r: r.mode.load_proportion)
    return dict(grouped)


def _mode_heading(key: ModeKey) -> str:
    rs, rnd, rd = key
    return (
        f"request {rs} B · random {rnd * 100:.0f} % · read {rd * 100:.0f} %"
    )


def database_report(db: ResultsDatabase, title: str = "TRACER evaluation") -> str:
    """Render the entire database as a markdown report."""
    lines = [f"# {title}", ""]
    devices = db.devices()
    if not devices:
        lines.append("_No records._")
        return "\n".join(lines)

    lines.append(f"{db.count()} test records across "
                 f"{len(devices)} device(s): {', '.join(devices)}.")
    lines.append("")

    best: List[Tuple[float, str, str]] = []
    for device in devices:
        lines.append(f"## {device}")
        lines.append("")
        records = db.query(device_label=device)
        for key, rows in sorted(_group_by_mode(records).items()):
            lines.append(f"### {_mode_heading(key)}")
            lines.append("")
            lines.append(
                "| load % | IOPS | MBPS | resp (ms) | Watts | "
                "IOPS/W | MBPS/kW |"
            )
            lines.append("|---|---|---|---|---|---|---|")
            for rec in rows:
                lines.append(
                    f"| {rec.mode.load_proportion * 100:.0f} "
                    f"| {rec.iops:.1f} | {rec.mbps:.2f} "
                    f"| {rec.mean_response * 1000:.3f} "
                    f"| {rec.mean_watts:.2f} | {rec.iops_per_watt:.2f} "
                    f"| {rec.mbps_per_kilowatt:.1f} |"
                )
            lines.append("")
            full = [r for r in rows if abs(r.mode.load_proportion - 1.0) < 1e-9]
            if full:
                best.append(
                    (full[0].mbps_per_kilowatt, device, _mode_heading(key))
                )

    if best:
        best.sort(reverse=True)
        lines.append("## Efficiency ranking (full load, MBPS/kW)")
        lines.append("")
        lines.append("| rank | device | workload | MBPS/kW |")
        lines.append("|---|---|---|---|")
        for rank, (eff, device, heading) in enumerate(best, start=1):
            lines.append(f"| {rank} | {device} | {heading} | {eff:.1f} |")
        lines.append("")

    return "\n".join(lines)

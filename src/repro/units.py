"""Unit constants and conversion helpers used throughout TRACER.

The block-level trace format, the storage models, and the metrics all mix
units (sectors vs. bytes, seconds vs. milliseconds, Watts vs. Kilowatts).
Centralising the conversions keeps every module honest about what a number
means.

Conventions
-----------
* **Time** is a ``float`` number of *seconds* everywhere inside the
  simulator.  Trace files store nanosecond integer timestamps (like
  blktrace does); the reader converts on the way in.
* **Disk addresses** are 512-byte *sectors* (the blktrace convention).
* **Request sizes** are *bytes* in API surfaces and records.
* **Power** is Watts; **energy** is Joules.  The efficiency metrics
  convert to IOPS/Watt and MBPS/Kilowatt at the reporting edge only.
"""

from __future__ import annotations

SECTOR_BYTES = 512
"""Size of one disk sector in bytes (blktrace convention)."""

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

NS_PER_S = 1_000_000_000
US_PER_S = 1_000_000
MS_PER_S = 1_000

WATTS_PER_KILOWATT = 1000.0


def sectors_to_bytes(sectors: int) -> int:
    """Convert a sector count to bytes."""
    return sectors * SECTOR_BYTES


def bytes_to_sectors(nbytes: int) -> int:
    """Convert a byte count to whole sectors, rounding up.

    Block devices transfer whole sectors; a 100-byte logical request
    still occupies one 512-byte sector on the wire.
    """
    if nbytes <= 0:
        return 0
    return -(-nbytes // SECTOR_BYTES)


def ns_to_seconds(ns: int) -> float:
    """Convert an integer nanosecond timestamp to float seconds."""
    return ns / NS_PER_S


def seconds_to_ns(seconds: float) -> int:
    """Convert float seconds to an integer nanosecond timestamp."""
    return round(seconds * NS_PER_S)


def bytes_to_mb(nbytes: float) -> float:
    """Convert bytes to decimal megabytes (the MBPS 'MB')."""
    return nbytes / MB


def mb_to_bytes(mb: float) -> float:
    """Convert decimal megabytes to bytes."""
    return mb * MB


def watts_to_kilowatts(watts: float) -> float:
    """Convert Watts to Kilowatts (for MBPS/Kilowatt reporting)."""
    return watts / WATTS_PER_KILOWATT

"""Energy-conservation techniques, for TRACER to judge.

The paper's motivation is that techniques like MAID and DRPM cannot be
compared objectively without a uniform evaluation framework.  This
package supplies reference implementations of two such techniques so the
framework has something to evaluate (see
``examples/compare_energy_saving.py`` and the policy benchmarks):

* :mod:`~repro.energysaving.maid` — Massive Array of Idle Disks
  (Colarelli & Grunwald, SC'02): spin down disks after an idle timeout;
  requests to sleeping disks block on spin-up.
* :mod:`~repro.energysaving.drpm` — Dynamic RPM (Gurumurthi et al.,
  ISCA'03): run disks at reduced speed under light load, trading
  latency for idle power.
* :mod:`~repro.energysaving.pdc` — Popular Data Concentration
  (Pinheiro & Bianchini, ICS'04): migrate hot segments onto few disks
  so the rest can sleep.
* :mod:`~repro.energysaving.eraid` — eRAID (Li & Wang, SIGOPS-EW'04):
  spin down mirror halves under light load; log writes and resync.
* :mod:`~repro.energysaving.report` — side-by-side comparison (energy
  saving vs. response-time penalty) using TRACER's metrics.
"""

from .maid import MAIDArray, MAIDPolicy
from .drpm import DRPMDisk, DRPMArray, DRPMPolicy, SPEED_LEVELS
from .pdc import PDCArray, PDCPolicy
from .eraid import ERAIDArray, ERAIDPolicy
from .policy import (
    AnalyticPolicy,
    BaselinePolicy,
    Policy,
    PolicyError,
    PolicyMetrics,
    Transition,
    evaluate_policy,
)
from .report import PolicyComparison, compare_policies

__all__ = [
    "MAIDArray",
    "MAIDPolicy",
    "DRPMDisk",
    "DRPMArray",
    "DRPMPolicy",
    "SPEED_LEVELS",
    "PDCArray",
    "PDCPolicy",
    "ERAIDArray",
    "ERAIDPolicy",
    "AnalyticPolicy",
    "BaselinePolicy",
    "Policy",
    "PolicyError",
    "PolicyMetrics",
    "Transition",
    "evaluate_policy",
    "PolicyComparison",
    "compare_policies",
]

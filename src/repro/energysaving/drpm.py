"""DRPM: dynamic rotation-speed control (Gurumurthi et al., ISCA'03).

A DRPM disk can serve I/O at reduced spindle speeds: rotational latency
grows and media rate falls, but idle power drops roughly with the cube
of speed (windage dominates).  The controller policy watches each
disk's recent utilisation and steps the speed down when the disk is
underused, back up when the queue builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import StorageConfigError
from .policy import (
    AnalyticPolicy,
    MemberBuild,
    PolicyBuild,
    PowerProgram,
    baseline_member_build,
    busy_segments,
    idle_gap_segments,
)
from ..sim.engine import Simulator
from ..storage.array import DiskArray
from ..storage.hdd import HardDiskDrive
from ..storage.raid import RaidLevel
from ..storage.specs import EnclosureSpec, HDD_ENCLOSURE, HDDSpec, SEAGATE_7200_12
from ..trace.record import IOPackage

#: Supported speed multipliers (fraction of full RPM).
SPEED_LEVELS: Tuple[float, ...] = (1.0, 0.8, 0.6, 0.4)


@dataclass(frozen=True)
class _SpeedDerate:
    """How a speed level derates service and power."""

    rotation_factor: float   # rotation time multiplier (1/speed)
    rate_factor: float       # media rate multiplier (= speed)
    idle_power_factor: float # ~ speed^2.8 (windage law), floored


def _derate(speed: float) -> _SpeedDerate:
    return _SpeedDerate(
        rotation_factor=1.0 / speed,
        rate_factor=speed,
        idle_power_factor=max(speed**2.8, 0.25),
    )


class DRPMDisk(HardDiskDrive):
    """An HDD whose spindle speed can be changed between requests.

    Speed changes take ``transition_time`` seconds during which the disk
    must be idle; the baseline (idle) power is updated on the timeline
    so the power analyzer sees the saving.
    """

    def __init__(
        self,
        name: str = "drpm0",
        spec: HDDSpec = SEAGATE_7200_12,
        transition_time: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(name, spec, **kwargs)
        self.transition_time = transition_time
        self.speed = 1.0
        self.speed_changes = 0
        self.transition_end = 0.0
        """Sim time when the most recent speed transition completed."""

    def set_speed(self, speed: float) -> None:
        """Change spindle speed; only legal while idle.

        The transition occupies the device (queued requests wait) and
        draws near-seek power while the spindle accelerates.
        """
        if speed not in SPEED_LEVELS:
            raise StorageConfigError(
                f"speed {speed} not in supported levels {SPEED_LEVELS}"
            )
        if speed == self.speed:
            return
        if self._busy or self.queue_depth:
            raise StorageConfigError(f"{self.name}: cannot shift speed while busy")
        sim = self._require_sim()
        d = _derate(speed)
        t = sim.now
        self.timeline.add_segment(t, t + self.transition_time, self.spec.seek_watts)
        self.timeline.set_baseline(
            t + self.transition_time, self.spec.idle_watts * d.idle_power_factor
        )
        self.speed = speed
        self.speed_changes += 1
        self.transition_end = t + self.transition_time
        # Block I/O for the transition; drain the queue afterwards.
        self._busy = True

        def _release() -> None:
            self._busy = False
            nxt = self._queue.pop(self._head_hint)
            if nxt is not None:
                self._begin(*nxt)

        sim.schedule(self.transition_end, _release, priority=-1)

    def _service(self, package: IOPackage, start_time: float):
        base_time, base_watts = super()._service(package, start_time)
        if self.speed == 1.0:
            return base_time, base_watts
        # Re-derive: stretch the rotational and transfer parts.  The
        # parent already updated positional state; we approximate the
        # derate by scaling total time (rotation+transfer dominate for
        # the workloads DRPM targets) and keeping energy consistent.
        d = _derate(self.speed)
        stretched = base_time * (0.3 + 0.7 * d.rotation_factor)
        watts = base_watts * (0.5 + 0.5 * self.speed)
        return stretched, watts


class DRPMArray(DiskArray):
    """RAID array of DRPM disks with a utilisation-driven speed policy.

    Every ``window`` seconds each idle disk's utilisation over the last
    window decides its speed: below ``down_threshold`` shift one level
    down, above ``up_threshold`` shift to full speed.
    """

    def __init__(
        self,
        n_disks: int = 6,
        spec: HDDSpec = SEAGATE_7200_12,
        level: RaidLevel = RaidLevel.RAID5,
        strip_bytes: int = 128 * 1024,
        enclosure: EnclosureSpec = HDD_ENCLOSURE,
        window: float = 5.0,
        down_threshold: float = 0.2,
        up_threshold: float = 0.6,
        name: str = "drpm-raid5",
    ) -> None:
        disks = [DRPMDisk(f"{name}-d{i}", spec) for i in range(n_disks)]
        super().__init__(disks, level, strip_bytes, enclosure, name=name)
        self.window = window
        self.down_threshold = down_threshold
        self.up_threshold = up_threshold
        self._policy_active = False

    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        self._policy_active = True
        sim.schedule(sim.now + self.window, self._policy_tick, priority=20)

    def stop_policy(self) -> None:
        """Stop scheduling policy ticks (lets a simulation drain)."""
        self._policy_active = False

    def _policy_tick(self) -> None:
        sim = self._require_sim()
        if not self._policy_active:
            return
        t1 = sim.now
        t0 = t1 - self.window
        for disk in self.disks:
            if disk.busy or disk.queue_depth:
                continue
            # A transition inside the window would read as utilisation
            # and make the policy oscillate; wait a full quiet window.
            if disk.transition_end > t0:
                continue
            util = disk.utilisation(t0, t1)
            idx = SPEED_LEVELS.index(disk.speed)
            if util < self.down_threshold and idx + 1 < len(SPEED_LEVELS):
                disk.set_speed(SPEED_LEVELS[idx + 1])
            elif util > self.up_threshold and disk.speed != 1.0:
                disk.set_speed(1.0)
        sim.schedule(t1 + self.window, self._policy_tick, priority=20)


class DRPMPolicy(AnalyticPolicy):
    """Analytic DRPM: step idle members down the RPM ladder.

    The pure-function counterpart of :class:`DRPMArray` for the policy
    search.  A member gap steps down one :data:`SPEED_LEVELS` entry per
    ``step_timeout`` of idleness (windage-law dwell power, the same
    derating :class:`DRPMDisk` applies) and reserves
    ``transition_time`` at seek power to restore full speed before the
    next committed request.  A gap only steps down when the dwell
    savings cover the restore ramp, so gap energy is bounded by the
    always-on draw from above and by the lowest-RPM dwell power from
    below — the bound the property tier asserts.  Members without a
    seek model (SSDs) pass through unchanged.
    """

    name = "drpm"

    def __init__(
        self, step_timeout: float = 2.0, transition_time: float = 1.0
    ) -> None:
        super().__init__()
        if step_timeout <= 0:
            raise StorageConfigError("step_timeout must be positive")
        if transition_time < 0:
            raise StorageConfigError("transition_time must be >= 0")
        self.step_timeout = float(step_timeout)
        self.transition_time = float(transition_time)

    @property
    def params(self):
        return {
            "step_timeout": self.step_timeout,
            "transition_time": self.transition_time,
        }

    def dwell_watts(self, idle_watts: float) -> np.ndarray:
        """Idle power at each RPM level, full speed first."""
        return np.asarray(
            [idle_watts * _derate(s).idle_power_factor for s in SPEED_LEVELS]
        )

    def _build(self, capture) -> PolicyBuild:
        members = [
            self._member(spec, profile, gs, ge, capture.end)
            for spec, profile, gs, ge in self._prepared(capture)
        ]
        return PolicyBuild(members)

    def _member(self, spec, profile, gs, ge, end) -> MemberBuild:
        idle = spec.idle_watts
        if spec.seek_watts is None or gs.size == 0:
            return baseline_member_build(spec, profile, gs, ge)
        step = self.step_timeout
        ramp = self.transition_time
        dwell = self.dwell_watts(idle)
        top = len(SPEED_LEVELS) - 1
        length = ge - gs
        interior = ge < end
        usable = length - np.where(interior, ramp, 0.0)
        n_down = np.where(
            usable > 0,
            np.minimum(top, np.floor(usable / step).astype(np.int64)),
            0,
        )
        hold_end = np.where(interior, ge - ramp, ge)
        # Break-even gate: dwell savings must cover the restore ramp.
        cum_save = np.concatenate(
            (np.zeros(1), np.cumsum(step * (idle - dwell[1:])))
        )
        tail_save = (hold_end - gs - n_down * step) * (idle - dwell[n_down])
        savings = cum_save[np.maximum(n_down - 1, 0)] + np.where(
            n_down > 0, tail_save, 0.0
        )
        ramp_cost = np.where(interior, (spec.seek_watts - idle) * ramp, 0.0)
        n_down = np.where(savings >= ramp_cost, n_down, 0)

        active = n_down >= 1
        pieces = [
            busy_segments(profile),
            idle_gap_segments(gs[~active], ge[~active], idle),
            # Full-speed dwell before the first downshift.
            (
                gs[active],
                gs[active] + step,
                np.full(int(np.count_nonzero(active)), idle),
            ),
        ]
        transitions = []
        for k in range(1, top + 1):
            mk = n_down >= k
            if not bool(np.any(mk)):
                break
            seg_start = gs[mk] + k * step
            seg_end = np.where(
                n_down[mk] == k, hold_end[mk], gs[mk] + (k + 1) * step
            )
            pieces.append(
                (seg_start, seg_end, np.full(seg_start.shape, dwell[k]))
            )
            transitions.append((seg_start, f"speed:{SPEED_LEVELS[k]:g}"))
        restore = active & interior
        r0 = hold_end[restore]
        pieces.append(
            (r0, ge[restore], np.full(r0.shape, spec.seek_watts))
        )
        if r0.size:
            transitions.append((r0, "speed:1"))
        windows = None
        if r0.size:
            windows = (
                gs[restore] + step,
                ge[restore],
                np.full(r0.shape, ramp),
            )
        slow = hold_end[active] - gs[active] - step
        return MemberBuild(
            PowerProgram.concat(pieces),
            transitions=transitions,
            windows=windows,
            counters={
                "downshifts": float(np.sum(n_down)),
                "slow_seconds": float(np.sum(slow)),
            },
        )

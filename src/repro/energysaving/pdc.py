"""PDC: Popular Data Concentration (Pinheiro & Bianchini, ICS'04).

One of the Table-I techniques TRACER exists to judge.  Where MAID waits
for idleness to happen, PDC *manufactures* it: the logical space is
divided into fixed segments whose access popularity is tracked, and a
periodic reorganisation migrates the hottest segments onto the first
disks — concentrating traffic so the tail disks genuinely idle and can
spin down.

Model:

* logical address space = concatenation of equal segment slots across
  member disks; a remap table maps logical segment → (disk, slot);
* per-segment popularity counters with exponential decay per window;
* every ``window`` seconds, up to ``migration_budget`` *swaps* run:
  the hottest segment living on a colder-than-ideal disk trades places
  with the coldest segment on a hotter disk.  Each swap costs real
  I/O — read both segments, write both crosswise — issued through the
  member queues, so reorganisation overhead shows up in the power and
  response-time measurements, exactly what a TRACER evaluation should
  expose;
* MAID-style idle timers spin down disks that the concentration has
  actually freed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StorageConfigError
from .policy import (
    AnalyticPolicy,
    PolicyBuild,
    PowerProgram,
    baseline_member_build,
    spin_down_gap_build,
)
from ..power.model import EnergyMeter
from ..power.states import PowerState
from ..sim.engine import Simulator
from ..storage.base import Completion, CompletionCallback, StorageDevice
from ..storage.hdd import HardDiskDrive
from ..trace.record import READ, WRITE, IOPackage
from ..units import SECTOR_BYTES


@dataclass
class _Flight:
    package: IOPackage
    submit_time: float
    on_complete: CompletionCallback
    pending: int


class PDCArray(StorageDevice):
    """Concatenation array with popularity-driven data concentration.

    Parameters
    ----------
    disks:
        Member drives (HDDs: they can spin down).
    segment_bytes:
        Migration granularity (default 1 MiB).
    window:
        Seconds between reorganisation passes; ``None`` disables
        migration (degenerates to a plain concatenation + idle policy).
    migration_budget:
        Maximum segment swaps per pass.
    idle_timeout:
        Spin-down timeout for idle disks; ``None`` keeps disks spinning.
    decay:
        Popularity multiplier applied each window (0 forgets instantly,
        1 never forgets).
    """

    def __init__(
        self,
        disks: Sequence[HardDiskDrive],
        segment_bytes: int = 1024 * 1024,
        window: Optional[float] = 10.0,
        migration_budget: int = 8,
        idle_timeout: Optional[float] = 5.0,
        decay: float = 0.5,
        non_disk_watts: float = 38.0,
        name: str = "pdc0",
    ) -> None:
        super().__init__(name)
        if not disks:
            raise StorageConfigError("PDC needs at least one disk")
        if segment_bytes <= 0 or segment_bytes % SECTOR_BYTES:
            raise StorageConfigError(
                "segment_bytes must be a positive multiple of 512"
            )
        if not 0.0 <= decay <= 1.0:
            raise StorageConfigError("decay must be in [0, 1]")
        if migration_budget < 0:
            raise StorageConfigError("migration_budget must be >= 0")
        self.disks = list(disks)
        self.segment_bytes = segment_bytes
        self.segment_sectors = segment_bytes // SECTOR_BYTES
        self.window = window
        self.migration_budget = migration_budget
        self.idle_timeout = idle_timeout
        self.decay = decay
        self.meter = EnergyMeter(
            [d.timeline for d in self.disks], overhead_watts=non_disk_watts
        )
        # Equal slots per disk; capacity truncated to whole segments.
        self.slots_per_disk = min(
            d.capacity_sectors for d in self.disks
        ) // self.segment_sectors
        if self.slots_per_disk < 1:
            raise StorageConfigError("segment larger than member disks")
        self.n_segments = self.slots_per_disk * len(self.disks)
        # remap[logical_segment] = (disk, slot); identity at start.
        self._map: List[Tuple[int, int]] = [
            (seg // self.slots_per_disk, seg % self.slots_per_disk)
            for seg in range(self.n_segments)
        ]
        self._popularity = [0.0] * self.n_segments
        self._last_io = [0.0] * len(self.disks)
        self._idle_events: List[Optional[object]] = [None] * len(self.disks)
        self.migrations = 0
        self.spin_down_count = 0
        self.spin_up_count = 0
        self._policy_active = False

    # -- Device interface ----------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        for disk in self.disks:
            disk.attach(sim)
        self._policy_active = True
        if self.window is not None:
            sim.schedule_after(self.window, self._reorganise, priority=20)
        if self.idle_timeout is not None:
            for i in range(len(self.disks)):
                self._arm_idle_timer(i)

    def stop_policy(self) -> None:
        """Stop migration/idle scheduling (lets a simulation drain)."""
        self._policy_active = False

    @property
    def capacity_sectors(self) -> int:
        return self.n_segments * self.segment_sectors

    def energy_between(self, t0: float, t1: float) -> float:
        return self.meter.energy_between(t0, t1)

    # -- Address translation ---------------------------------------------------

    def _locate(self, package: IOPackage) -> List[Tuple[int, IOPackage]]:
        """Split a logical extent into per-disk physical pieces."""
        pieces: List[Tuple[int, IOPackage]] = []
        sector = package.sector
        remaining_bytes = package.nbytes
        while remaining_bytes > 0:
            segment = sector // self.segment_sectors
            offset = sector % self.segment_sectors
            take_sectors = min(
                self.segment_sectors - offset,
                -(-remaining_bytes // SECTOR_BYTES),
            )
            take_bytes = min(remaining_bytes, take_sectors * SECTOR_BYTES)
            disk, slot = self._map[segment]
            physical = slot * self.segment_sectors + offset
            pieces.append(
                (disk, IOPackage(physical, take_bytes, package.op))
            )
            self._popularity[segment] += 1.0
            sector += take_sectors
            remaining_bytes -= take_bytes
        return pieces

    def submit(self, package: IOPackage, on_complete: CompletionCallback) -> None:
        sim = self._require_sim()
        self.check_bounds(package)
        pieces = self._locate(package)
        flight = _Flight(
            package=package,
            submit_time=sim.now,
            on_complete=on_complete,
            pending=len(pieces),
        )
        for disk_idx, sub in pieces:
            self._submit_piece(disk_idx, sub, flight)

    def _submit_piece(
        self, disk_idx: int, sub: IOPackage, flight: _Flight
    ) -> None:
        sim = self._require_sim()

        def _done(_completion: Completion) -> None:
            self._last_io[disk_idx] = sim.now
            flight.pending -= 1
            if self.idle_timeout is not None and self.disks[disk_idx].state.ready:
                self._arm_idle_timer(disk_idx)
            if flight.pending == 0:
                flight.on_complete(
                    Completion(
                        package=flight.package,
                        submit_time=flight.submit_time,
                        start_time=flight.submit_time,
                        finish_time=sim.now,
                    )
                )

        self._last_io[disk_idx] = sim.now
        self._issue_when_ready(disk_idx, sub, _done)

    def _issue_when_ready(
        self, disk_idx: int, sub: IOPackage, callback
    ) -> None:
        """Submit to a member, spinning it up first when asleep."""
        sim = self._require_sim()
        disk = self.disks[disk_idx]
        if disk.state == PowerState.STANDBY:
            self.spin_up_count += 1
            delay = disk.spin_up()
            sim.schedule_after(
                delay, lambda: disk.submit(sub, callback), priority=5
            )
        elif disk.state == PowerState.SPINNING_UP:
            def _poll() -> None:
                if disk.state.ready:
                    disk.submit(sub, callback)
                else:
                    sim.schedule_after(0.1, _poll, priority=5)

            sim.schedule_after(0.1, _poll, priority=5)
        else:
            disk.submit(sub, callback)

    # -- Idle policy -------------------------------------------------------------

    def _arm_idle_timer(self, disk_idx: int) -> None:
        sim = self._require_sim()
        if self._idle_events[disk_idx] is not None:
            self._idle_events[disk_idx].cancel()
        self._idle_events[disk_idx] = sim.schedule_after(
            self.idle_timeout, self._idle_check, disk_idx, priority=21
        )

    def _idle_check(self, disk_idx: int) -> None:
        sim = self._require_sim()
        self._idle_events[disk_idx] = None
        if not self._policy_active:
            return
        disk = self.disks[disk_idx]
        idle_for = sim.now - self._last_io[disk_idx]
        if (
            idle_for >= self.idle_timeout
            and disk.state.ready
            and not disk.busy
            and disk.queue_depth == 0
        ):
            disk.spin_down()
            self.spin_down_count += 1
        elif disk.state.ready:
            self._arm_idle_timer(disk_idx)

    # -- Reorganisation ------------------------------------------------------------

    def _ideal_disk(self, rank: int) -> int:
        """Disk a segment of popularity rank ``rank`` belongs on."""
        return min(rank // self.slots_per_disk, len(self.disks) - 1)

    def _plan_swaps(self) -> List[Tuple[int, int]]:
        """Pick up to ``migration_budget`` (hot, cold) segment swaps."""
        order = sorted(
            range(self.n_segments),
            key=lambda seg: self._popularity[seg],
            reverse=True,
        )
        swaps: List[Tuple[int, int]] = []
        taken = set()
        for rank, seg in enumerate(order):
            if len(swaps) >= self.migration_budget:
                break
            if self._popularity[seg] <= 0:
                break
            want = self._ideal_disk(rank)
            have = self._map[seg][0]
            if have <= want or seg in taken:
                continue  # already well-placed (or better)
            # Find the least popular segment currently on the wanted disk.
            victims = [
                other
                for other in order[::-1]
                if self._map[other][0] == want and other not in taken
                and other != seg
            ]
            if not victims:
                continue
            victim = victims[0]
            swaps.append((seg, victim))
            taken.add(seg)
            taken.add(victim)
        return swaps

    def _reorganise(self) -> None:
        sim = self._require_sim()
        if not self._policy_active:
            return
        for seg, victim in self._plan_swaps():
            self._migrate_pair(seg, victim)
        for i in range(self.n_segments):
            self._popularity[i] *= self.decay
        sim.schedule_after(self.window, self._reorganise, priority=20)

    def _migrate_pair(self, seg_a: int, seg_b: int) -> None:
        """Swap two segments' physical homes, paying the I/O.

        Reads both segments, then writes each to the other's slot; the
        remap table flips when the writes are issued (the simulation has
        no data contents to corrupt, so the simplification is safe).
        """
        disk_a, slot_a = self._map[seg_a]
        disk_b, slot_b = self._map[seg_b]
        if disk_a == disk_b:
            return
        self.migrations += 1
        pending = {"reads": 2}

        read_a = IOPackage(slot_a * self.segment_sectors, self.segment_bytes, READ)
        read_b = IOPackage(slot_b * self.segment_sectors, self.segment_bytes, READ)
        write_a = IOPackage(slot_b * self.segment_sectors, self.segment_bytes, WRITE)
        write_b = IOPackage(slot_a * self.segment_sectors, self.segment_bytes, WRITE)

        def _after_read(_completion: Completion) -> None:
            pending["reads"] -= 1
            if pending["reads"] == 0:
                # Crosswise writes; flip the map.
                self._map[seg_a] = (disk_b, slot_b)
                self._map[seg_b] = (disk_a, slot_a)
                self._issue_when_ready(disk_b, write_a, lambda c: None)
                self._issue_when_ready(disk_a, write_b, lambda c: None)

        self._issue_when_ready(disk_a, read_a, _after_read)
        self._issue_when_ready(disk_b, read_b, _after_read)

    # -- Introspection ------------------------------------------------------------

    def segment_disk(self, logical_segment: int) -> int:
        """Which member currently holds a logical segment."""
        return self._map[logical_segment][0]

    def mapping_is_bijective(self) -> bool:
        """Invariant: every (disk, slot) home is owned by one segment."""
        homes = set(self._map)
        return len(homes) == self.n_segments


class PDCPolicy(AnalyticPolicy):
    """Analytic Popular Data Concentration for the policy search.

    The pure-function counterpart of :class:`PDCArray`: the less-busy
    half of the members (by committed busy seconds) gets MAID-style
    spin-down gaps, and the migration that concentrates popular data is
    charged as a constant-power stream on the busiest member —
    ``min(migration_budget, bytes written)`` bytes at that member's
    transfer rate and write power.  The migrated volume can never
    exceed the bytes the workload wrote, the invariant the property
    tier asserts.
    """

    name = "pdc"

    def __init__(
        self,
        idle_timeout: float = 5.0,
        migration_budget: int = 256 * 1024 * 1024,
    ) -> None:
        super().__init__()
        if idle_timeout <= 0:
            raise StorageConfigError("idle_timeout must be positive")
        if migration_budget < 0:
            raise StorageConfigError("migration_budget must be >= 0")
        self.idle_timeout = float(idle_timeout)
        self.migration_budget = int(migration_budget)

    @property
    def params(self):
        return {
            "idle_timeout": self.idle_timeout,
            "migration_budget": float(self.migration_budget),
        }

    def _build(self, capture) -> PolicyBuild:
        prepared = self._prepared(capture)
        n = len(prepared)
        order = sorted(
            range(n), key=lambda i: (prepared[i][1].busy_seconds, i)
        )
        cold = set(order[: n // 2]) if n >= 2 else set()
        members = []
        for i, (spec, profile, gs, ge) in enumerate(prepared):
            if i in cold:
                members.append(
                    spin_down_gap_build(
                        spec, profile, gs, ge, capture.end, self.idle_timeout
                    )
                )
            else:
                members.append(baseline_member_build(spec, profile, gs, ge))
        migrated = min(self.migration_budget, capture.write_bytes)
        counters = {
            "migrated_bytes": float(migrated),
            "cold_members": float(len(cold)),
        }
        extras = []
        if migrated and capture.end > 0:
            hot_spec = prepared[order[-1]][0]
            joules = hot_spec.write_watts * (migrated / hot_spec.transfer_rate)
            extras.append(
                PowerProgram(
                    np.zeros(1),
                    np.asarray([capture.end]),
                    np.asarray([joules / capture.end]),
                )
            )
            counters["migration_joules"] = joules
        return PolicyBuild(members, extras=extras, counters=counters)

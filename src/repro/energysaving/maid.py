"""MAID: Massive Array of Idle Disks (Colarelli & Grunwald, SC'02).

Data is *concatenated* (not striped) across member disks, so cold disks
see no traffic and can spin down after an idle timeout.  A request to a
sleeping disk must wait out the spin-up — the latency penalty that makes
MAID a trade-off worth measuring, which is exactly what TRACER's
IOPS/Watt metric captures.

Requests that span two member disks are split; the parent completes when
both halves do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import StorageConfigError
from .policy import AnalyticPolicy, PolicyBuild, spin_down_gap_build
from ..power.model import EnergyMeter
from ..power.states import PowerState
from ..sim.engine import Simulator
from ..storage.base import Completion, CompletionCallback, StorageDevice
from ..storage.hdd import HardDiskDrive
from ..trace.record import IOPackage


@dataclass
class _Flight:
    package: IOPackage
    submit_time: float
    on_complete: CompletionCallback
    pending: int
    start_time: float


class MAIDArray(StorageDevice):
    """Concatenation array with per-disk spin-down.

    Parameters
    ----------
    disks:
        Member drives (must support spin_down/spin_up — i.e. HDDs).
    idle_timeout:
        Seconds without I/O after which a disk spins down.  ``None``
        disables the policy (useful as the measurement baseline).
    non_disk_watts:
        Enclosure overhead added to the power meter.
    """

    def __init__(
        self,
        disks: Sequence[HardDiskDrive],
        idle_timeout: Optional[float] = 10.0,
        non_disk_watts: float = 38.0,
        name: str = "maid0",
    ) -> None:
        super().__init__(name)
        if not disks:
            raise StorageConfigError("MAID needs at least one disk")
        self.disks = list(disks)
        self.idle_timeout = idle_timeout
        self.meter = EnergyMeter(
            [d.timeline for d in self.disks], overhead_watts=non_disk_watts
        )
        self._last_io = [0.0] * len(self.disks)
        self._idle_events = [None] * len(self.disks)
        self.spin_down_count = 0
        self.spin_up_count = 0
        self.blocked_on_spinup = 0

    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        for disk in self.disks:
            disk.attach(sim)
        if self.idle_timeout is not None:
            for i in range(len(self.disks)):
                self._arm_idle_timer(i)

    @property
    def capacity_sectors(self) -> int:
        return sum(d.capacity_sectors for d in self.disks)

    def energy_between(self, t0: float, t1: float) -> float:
        return self.meter.energy_between(t0, t1)

    # -- Idle policy ---------------------------------------------------------

    def _arm_idle_timer(self, disk_idx: int) -> None:
        sim = self._require_sim()
        if self._idle_events[disk_idx] is not None:
            self._idle_events[disk_idx].cancel()
        self._idle_events[disk_idx] = sim.schedule(
            sim.now + self.idle_timeout, self._idle_check, disk_idx, priority=20
        )

    def _idle_check(self, disk_idx: int) -> None:
        sim = self._require_sim()
        self._idle_events[disk_idx] = None
        disk = self.disks[disk_idx]
        idle_for = sim.now - self._last_io[disk_idx]
        if (
            idle_for >= self.idle_timeout
            and disk.state.ready
            and not disk.busy
            and disk.queue_depth == 0
        ):
            disk.spin_down()
            self.spin_down_count += 1
        elif disk.state.ready:
            self._arm_idle_timer(disk_idx)

    # -- I/O path ------------------------------------------------------------

    def _locate(self, package: IOPackage) -> List:
        """Split a logical extent into (disk_idx, IOPackage) pieces."""
        pieces = []
        sector = package.sector
        remaining = package.sectors
        base = 0
        for idx, disk in enumerate(self.disks):
            cap = disk.capacity_sectors
            if sector < base + cap:
                local = sector - base
                take = min(remaining, cap - local)
                pieces.append(
                    (idx, IOPackage(local, take * 512, package.op))
                )
                sector += take
                remaining -= take
                if remaining <= 0:
                    break
            base += cap
        return pieces

    def submit(self, package: IOPackage, on_complete: CompletionCallback) -> None:
        sim = self._require_sim()
        self.check_bounds(package)
        pieces = self._locate(package)
        flight = _Flight(
            package=package,
            submit_time=sim.now,
            on_complete=on_complete,
            pending=len(pieces),
            start_time=sim.now,
        )
        for disk_idx, sub in pieces:
            self._submit_piece(disk_idx, sub, flight)

    def _submit_piece(self, disk_idx: int, sub: IOPackage, flight: _Flight) -> None:
        sim = self._require_sim()
        disk = self.disks[disk_idx]
        self._last_io[disk_idx] = sim.now

        def _done(completion: Completion) -> None:
            self._last_io[disk_idx] = sim.now
            flight.pending -= 1
            if self.idle_timeout is not None and disk.state.ready:
                self._arm_idle_timer(disk_idx)
            if flight.pending == 0:
                flight.on_complete(
                    Completion(
                        package=flight.package,
                        submit_time=flight.submit_time,
                        start_time=flight.start_time,
                        finish_time=sim.now,
                    )
                )

        if disk.state == PowerState.STANDBY:
            self.blocked_on_spinup += 1
            self.spin_up_count += 1
            delay = disk.spin_up()
            sim.schedule(
                sim.now + delay, lambda: disk.submit(sub, _done), priority=5
            )
        elif disk.state == PowerState.SPINNING_UP:
            # Another request already triggered spin-up; poll readiness.
            self.blocked_on_spinup += 1

            def _when_ready() -> None:
                if disk.state.ready:
                    disk.submit(sub, _done)
                else:
                    sim.schedule_after(0.1, _when_ready, priority=5)

            sim.schedule_after(0.1, _when_ready, priority=5)
        else:
            disk.submit(sub, _done)


class MAIDPolicy(AnalyticPolicy):
    """Analytic MAID: spin idle members down after ``idle_timeout``.

    The pure-function counterpart of :class:`MAIDArray` for the policy
    search: member gaps longer than the timeout are rewritten to
    idle → standby → spin-up power, gated so a sleep can never cost
    energy (see :func:`~repro.energysaving.policy.spin_down_gap_build`
    for the break-even condition and the monotonicity argument).
    Members whose spec has no standby state (SSDs) pass through
    unchanged.
    """

    name = "maid"

    def __init__(self, idle_timeout: float = 10.0) -> None:
        super().__init__()
        if idle_timeout <= 0:
            raise StorageConfigError("idle_timeout must be positive")
        self.idle_timeout = float(idle_timeout)

    @property
    def params(self):
        return {"idle_timeout": self.idle_timeout}

    def _build(self, capture) -> PolicyBuild:
        members = [
            spin_down_gap_build(
                spec, profile, gs, ge, capture.end, self.idle_timeout
            )
            for spec, profile, gs, ge in self._prepared(capture)
        ]
        return PolicyBuild(members)

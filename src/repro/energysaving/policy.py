"""Uniform analytic energy-policy protocol over frozen replay captures.

The event-driven models in this package (:class:`MAIDArray`,
:class:`DRPMArray`, :class:`PDCArray`, :class:`ERAIDArray`) simulate a
policy *during* a replay.  The search driver needs something different:
a way to re-score one finished replay under many policies without
re-replaying it.  This module provides that — a :class:`Policy`
protocol whose implementations are *pure functions* of a
:class:`~repro.replay.capture.ReplayCapture`:

``configure(device)``
    Bind the policy to a device family: extract per-member spec
    constants (idle/standby/spin-up power, transfer rates) from a
    factory-fresh probe instance.

``evaluate(capture, sampling_cycle=...)``
    Re-score one capture: rebuild each member's power draw as a
    piecewise-constant :class:`PowerProgram` (committed busy segments
    pass through untouched; idle gaps are rewritten by the policy),
    integrate it through the *real*
    :class:`~repro.power.analyzer.PowerAnalyzer` window walk, and
    apply the policy's wake-up penalties to the response distribution.

``power_state(t)`` / ``idle_transitions()``
    Inspect the last evaluation: total policy watts at instant ``t``
    and the ordered spin-down/spin-up (or speed-step) transitions.

Because a capture is bit-identical across the fused-grid, per-point
kernel, and event replay paths, and every policy here is deterministic
arithmetic over that capture, the policy metrics are bit-identical
across paths too — the property the differential oracle enforces.

Modeling notes (shared by all adapters):

* Penalty windows are evaluated against *array* arrival instants
  (``finishes - responses``); the capture carries no request→member
  mapping, so a policy that parks a member charges its wake-up penalty
  to any request arriving in the parked window.  This overestimates
  the latency cost slightly and never understates it.
* Tail gaps (after a member's last committed segment) park without a
  modeled wake-up, so they carry no penalty window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReplayError
from ..power.analyzer import PowerAnalyzer

__all__ = [
    "Policy",
    "PolicyError",
    "Transition",
    "MemberSpec",
    "PowerProgram",
    "PolicyMetrics",
    "MemberBuild",
    "PolicyBuild",
    "AnalyticPolicy",
    "BaselinePolicy",
    "baseline_member_build",
    "spin_down_gap_build",
    "evaluate_policy",
]

_EMPTY = np.empty(0, dtype=np.float64)


class PolicyError(ReplayError):
    """A policy was used out of protocol order or on a bad target."""


@dataclass(frozen=True)
class Transition:
    """One policy-driven power-state change."""

    time: float
    member: str
    state: str


@dataclass(frozen=True)
class MemberSpec:
    """Spec constants one policy evaluation needs for one member."""

    name: str
    idle_watts: float
    standby_watts: Optional[float]
    spinup_time: float
    spinup_watts: float
    seek_watts: Optional[float]
    write_watts: float
    transfer_rate: float

    @property
    def can_spin_down(self) -> bool:
        return self.standby_watts is not None


def _member_spec(member) -> MemberSpec:
    spec = member.spec
    standby = getattr(spec, "standby_watts", None)
    rate = getattr(spec, "outer_rate", None)
    if rate is None:
        rate = spec.write_rate
    return MemberSpec(
        name=member.name,
        idle_watts=float(spec.idle_watts),
        standby_watts=float(standby) if standby is not None else None,
        spinup_time=float(getattr(spec, "spinup_time", 0.0)),
        spinup_watts=float(getattr(spec, "spinup_watts", spec.idle_watts)),
        seek_watts=(
            float(spec.seek_watts) if hasattr(spec, "seek_watts") else None
        ),
        write_watts=float(spec.write_watts),
        transfer_rate=float(rate),
    )


class PowerProgram:
    """Piecewise-constant power over ``[0, end]`` with exact integrals.

    Segments must be sorted and non-overlapping; zero- and
    negative-length segments are dropped at construction (mirroring
    ``PowerTimeline.add_segment``).  Uncovered spans draw zero watts,
    so policies must emit explicit idle segments for awake gaps.
    """

    __slots__ = ("starts", "ends", "watts", "_cum")

    def __init__(
        self, starts: np.ndarray, ends: np.ndarray, watts: np.ndarray
    ) -> None:
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        watts = np.asarray(watts, dtype=np.float64)
        keep = ends > starts
        if not bool(np.all(keep)):
            starts, ends, watts = starts[keep], ends[keep], watts[keep]
        self.starts = starts
        self.ends = ends
        self.watts = watts
        self._cum = np.concatenate(
            (np.zeros(1), np.cumsum(watts * (ends - starts)))
        )

    @classmethod
    def concat(
        cls,
        pieces: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> "PowerProgram":
        """Build from segment groups, merge-sorted by start instant."""
        if not pieces:
            return cls(_EMPTY, _EMPTY, _EMPTY)
        starts = np.concatenate(
            [np.asarray(p[0], dtype=np.float64) for p in pieces]
        )
        ends = np.concatenate(
            [np.asarray(p[1], dtype=np.float64) for p in pieces]
        )
        watts = np.concatenate(
            [np.asarray(p[2], dtype=np.float64) for p in pieces]
        )
        order = np.argsort(starts, kind="stable")
        return cls(starts[order], ends[order], watts[order])

    def _energy_upto(self, t: float) -> float:
        idx = int(np.searchsorted(self.starts, t, side="right"))
        total = float(self._cum[idx])
        if idx > 0:
            seg_end = float(self.ends[idx - 1])
            if seg_end > t:
                total -= float(self.watts[idx - 1]) * (seg_end - t)
        return total

    def energy_between(self, t0: float, t1: float) -> float:
        if t1 == t0:
            return 0.0
        return self._energy_upto(t1) - self._energy_upto(t0)

    def watts_at(self, t: float) -> float:
        idx = int(np.searchsorted(self.starts, t, side="right")) - 1
        if idx >= 0 and t < float(self.ends[idx]):
            return float(self.watts[idx])
        return 0.0

    @property
    def total_energy(self) -> float:
        return float(self._cum[-1])


class _ProgramMeter:
    """``EnergyMeter``-shaped source over policy power programs."""

    __slots__ = ("programs", "overhead_watts")

    def __init__(
        self, programs: List[PowerProgram], overhead_watts: float
    ) -> None:
        self.programs = programs
        self.overhead_watts = overhead_watts

    def energy_between(self, t0: float, t1: float) -> float:
        total = self.overhead_watts * (t1 - t0)
        for program in self.programs:
            total += program.energy_between(t0, t1)
        return total


@dataclass(frozen=True)
class PolicyMetrics:
    """Per-cell metrics one policy evaluation yields."""

    policy: str
    params: Dict[str, float]
    energy_joules: float
    mean_watts: float
    energy_per_io: float
    iops: float
    iops_per_watt: float
    mean_response: float
    p99_response: float
    transitions: int
    counters: Dict[str, float]
    energy_saving: Optional[float] = None
    response_penalty: Optional[float] = None

    def to_dict(self) -> dict:
        payload = {
            "policy": self.policy,
            "params": dict(sorted(self.params.items())),
            "energy_joules": self.energy_joules,
            "mean_watts": self.mean_watts,
            "energy_per_io": self.energy_per_io,
            "iops": self.iops,
            "iops_per_watt": self.iops_per_watt,
            "mean_response": self.mean_response,
            "p99_response": self.p99_response,
            "transitions": self.transitions,
            "counters": dict(sorted(self.counters.items())),
        }
        if self.energy_saving is not None:
            payload["energy_saving"] = self.energy_saving
        if self.response_penalty is not None:
            payload["response_penalty"] = self.response_penalty
        return payload


@dataclass
class MemberBuild:
    """One member's policy rewrite: its program plus bookkeeping."""

    program: PowerProgram
    #: (times, state) transition groups for this member.
    transitions: List[Tuple[np.ndarray, str]] = field(default_factory=list)
    #: Sorted, non-overlapping penalty windows ``(starts, ends, seconds)``.
    windows: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
    counters: Dict[str, float] = field(default_factory=dict)


@dataclass
class PolicyBuild:
    """Everything :meth:`AnalyticPolicy.evaluate` integrates."""

    members: List[MemberBuild]
    #: Extra constant-power sources (migration, redirected service).
    extras: List[PowerProgram] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)


def _gap_bounds(profile, end: float) -> Tuple[np.ndarray, np.ndarray]:
    """Positive idle gaps of one member over ``[0, end]``."""
    gs = np.concatenate((np.zeros(1), profile.ends))
    ge = np.concatenate((profile.starts, np.asarray([end])))
    keep = ge > gs
    return gs[keep], ge[keep]


def idle_gap_segments(
    gs: np.ndarray, ge: np.ndarray, idle_watts: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return gs, ge, np.full(gs.shape, idle_watts)


def busy_segments(profile) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return profile.starts, profile.ends, profile.watts


def baseline_member_build(
    spec: MemberSpec, profile, gs: np.ndarray, ge: np.ndarray
) -> MemberBuild:
    """Always-on rewrite: committed segments plus idle gaps."""
    return MemberBuild(
        PowerProgram.concat(
            [busy_segments(profile), idle_gap_segments(gs, ge, spec.idle_watts)]
        )
    )


def spin_down_gap_build(
    spec: MemberSpec,
    profile,
    gs: np.ndarray,
    ge: np.ndarray,
    end: float,
    idle_timeout: float,
) -> MemberBuild:
    """MAID-style gap rewrite with a break-even gate, shared with PDC.

    A gap sleeps only when doing so cannot cost energy:

    * interior gaps need room for the timeout *and* the spin-up ramp,
      and must satisfy ``standby·(L−τ−s) + spinup_w·s ≤ idle·(L−τ)``;
    * the tail gap only needs ``L > τ`` (no ramp — nothing wakes it).

    With the gate, per-gap energy is non-decreasing in the timeout τ:
    while asleep it is ``idle·τ + standby·(L−τ−s) + spinup_w·s`` (slope
    ``idle − standby > 0``) and the gate flips to the constant
    ``idle·L`` exactly when the sleeping branch would exceed it — the
    monotonicity invariant the property tier asserts.
    """
    if not spec.can_spin_down or gs.size == 0:
        return MemberBuild(
            PowerProgram.concat(
                [busy_segments(profile),
                 idle_gap_segments(gs, ge, spec.idle_watts)]
            )
        )
    tau = float(idle_timeout)
    idle = spec.idle_watts
    standby = spec.standby_watts
    ramp = spec.spinup_time
    ramp_watts = spec.spinup_watts
    length = ge - gs
    interior = ge < end
    fits = (length > tau) & (length - tau >= ramp)
    breakeven = (
        standby * (length - tau - ramp) + ramp_watts * ramp
        <= idle * (length - tau)
    )
    sleep_interior = interior & fits & breakeven
    sleep_tail = (~interior) & (length > tau)
    awake = ~(sleep_interior | sleep_tail)

    i0, i1 = gs[sleep_interior], ge[sleep_interior]
    t0, t1 = gs[sleep_tail], ge[sleep_tail]
    program = PowerProgram.concat(
        [
            busy_segments(profile),
            idle_gap_segments(gs[awake], ge[awake], idle),
            (i0, i0 + tau, np.full(i0.shape, idle)),
            (i0 + tau, i1 - ramp, np.full(i0.shape, standby)),
            (i1 - ramp, i1, np.full(i0.shape, ramp_watts)),
            (t0, t0 + tau, np.full(t0.shape, idle)),
            (t0 + tau, t1, np.full(t0.shape, standby)),
        ]
    )
    windows = None
    if i0.size:
        windows = (i0 + tau, i1, np.full(i0.shape, ramp))
    transitions = []
    if i0.size:
        transitions.append((i0 + tau, "standby"))
        transitions.append((i1 - ramp, "spinup"))
    if t0.size:
        transitions.append((t0 + tau, "standby"))
    sleep_seconds = float(
        np.sum(ge[sleep_interior] - gs[sleep_interior] - tau - ramp)
        + np.sum(ge[sleep_tail] - gs[sleep_tail] - tau)
    )
    return MemberBuild(
        program,
        transitions=transitions,
        windows=windows,
        counters={
            "spin_downs": float(i0.size + t0.size),
            "sleep_seconds": sleep_seconds,
        },
    )


class AnalyticPolicy:
    """Base class implementing the :class:`Policy` protocol plumbing.

    Subclasses implement :meth:`_build` — pure segment rewriting — and
    inherit configuration, integration, penalty application, and the
    ``power_state`` / ``idle_transitions`` views.
    """

    name = "policy"

    def __init__(self) -> None:
        self._members: Optional[Tuple[MemberSpec, ...]] = None
        self._last_build: Optional[PolicyBuild] = None
        self._last_overhead: float = 0.0
        self._last_end: float = 0.0

    @property
    def params(self) -> Dict[str, float]:
        return {}

    # -- protocol --------------------------------------------------
    def configure(self, device) -> None:
        """Bind spec constants from a factory-fresh probe ``device``."""
        disks = getattr(device, "disks", None)
        members = list(disks) if disks is not None else [device]
        if not members:
            raise PolicyError(f"policy {self.name!r}: device has no members")
        self._members = tuple(_member_spec(m) for m in members)
        self._last_build = None

    def power_state(self, t: float) -> float:
        """Total watts the policy draws at instant ``t`` (last eval)."""
        build = self._require_build()
        total = self._last_overhead if 0.0 <= t < self._last_end else 0.0
        for member in build.members:
            total += member.program.watts_at(t)
        for extra in build.extras:
            total += extra.watts_at(t)
        return total

    def idle_transitions(self) -> List[Transition]:
        """Ordered power-state transitions from the last evaluation."""
        build = self._require_build()
        out: List[Transition] = []
        assert self._members is not None
        for spec, member in zip(self._members, build.members):
            for times, state in member.transitions:
                out.extend(
                    Transition(float(t), spec.name, state) for t in times
                )
        out.sort(key=lambda tr: (tr.time, tr.member, tr.state))
        return out

    # -- evaluation ------------------------------------------------
    def evaluate(self, capture, *, sampling_cycle: float = 1.0) -> PolicyMetrics:
        """Re-score ``capture`` under this policy."""
        from ..sim.kernel import _Fallback, _power_windows, _tick_boundaries

        if self._members is None:
            raise PolicyError(
                f"policy {self.name!r} used before configure(device)"
            )
        if len(self._members) != len(capture.members):
            raise PolicyError(
                f"policy {self.name!r} configured for {len(self._members)} "
                f"members but capture has {len(capture.members)}"
            )
        build = self._build(capture)
        overhead = (
            capture.overhead_watts if capture.overhead_watts is not None else 0.0
        )
        meter = _ProgramMeter(
            [m.program for m in build.members] + build.extras, overhead
        )
        end = capture.end
        try:
            bounds = _tick_boundaries(0.0, end, float(sampling_cycle))
        except _Fallback as exc:
            raise PolicyError(
                f"policy {self.name!r}: cannot window capture: {exc.reason}"
            )
        analyzer = PowerAnalyzer(
            meter, sampling_cycle=float(sampling_cycle), sensor=None
        )
        _power_windows(analyzer, bounds, end)
        energy = analyzer.total_energy
        mean_watts = analyzer.mean_watts

        responses = self._adjusted_responses(capture, build)
        n = responses.shape[0]
        mean_response = float(np.sum(responses) / n)
        rank = max(int(np.ceil(0.99 * n)) - 1, 0)
        p99 = float(np.partition(responses, rank)[rank])
        iops = n / end if end > 0 else 0.0
        counters = dict(build.counters)
        transitions = 0
        for member in build.members:
            transitions += sum(int(t.size) for t, _ in member.transitions)
            for key, value in member.counters.items():
                counters[key] = counters.get(key, 0.0) + value
        self._last_build = build
        self._last_overhead = overhead
        self._last_end = end
        return PolicyMetrics(
            policy=self.name,
            params=self.params,
            energy_joules=energy,
            mean_watts=mean_watts,
            energy_per_io=energy / n if n else 0.0,
            iops=iops,
            iops_per_watt=iops / mean_watts if mean_watts > 0 else 0.0,
            mean_response=mean_response,
            p99_response=p99,
            transitions=transitions,
            counters=counters,
        )

    # -- subclass hook ---------------------------------------------
    def _build(self, capture) -> PolicyBuild:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------
    def _require_build(self) -> PolicyBuild:
        if self._last_build is None:
            raise PolicyError(
                f"policy {self.name!r} inspected before evaluate(capture)"
            )
        return self._last_build

    def _prepared(self, capture):
        """(spec, profile, gap_starts, gap_ends) per member."""
        assert self._members is not None
        out = []
        for spec, profile in zip(self._members, capture.members):
            gs, ge = _gap_bounds(profile, capture.end)
            out.append((spec, profile, gs, ge))
        return out

    @staticmethod
    def _adjusted_responses(capture, build: PolicyBuild) -> np.ndarray:
        arrivals = capture.arrivals()
        penalty = np.zeros(arrivals.shape, dtype=np.float64)
        for member in build.members:
            if member.windows is None:
                continue
            w0, w1, seconds = member.windows
            idx = np.searchsorted(w0, arrivals, side="right") - 1
            clamped = np.clip(idx, 0, w0.size - 1)
            hit = (idx >= 0) & (arrivals < w1[clamped])
            penalty = np.maximum(
                penalty, np.where(hit, seconds[clamped], 0.0)
            )
        return capture.responses + penalty


class BaselinePolicy(AnalyticPolicy):
    """Always-on reference: committed segments plus idle gaps."""

    name = "baseline"

    def _build(self, capture) -> PolicyBuild:
        members = [
            baseline_member_build(spec, profile, gs, ge)
            for spec, profile, gs, ge in self._prepared(capture)
        ]
        return PolicyBuild(members)


def evaluate_policy(
    policy: AnalyticPolicy,
    capture,
    *,
    sampling_cycle: float = 1.0,
    baseline: Optional[PolicyMetrics] = None,
) -> PolicyMetrics:
    """Evaluate ``policy`` on ``capture``; annotate savings vs baseline."""
    metrics = policy.evaluate(capture, sampling_cycle=sampling_cycle)
    if baseline is None:
        return metrics
    saving = (
        1.0 - metrics.energy_joules / baseline.energy_joules
        if baseline.energy_joules > 0
        else 0.0
    )
    penalty = (
        metrics.mean_response / baseline.mean_response - 1.0
        if baseline.mean_response > 0
        else 0.0
    )
    return replace(metrics, energy_saving=saving, response_penalty=penalty)


#: The protocol name the docs reference; any object with ``name``,
#: ``params``, ``configure``, ``evaluate``, ``power_state`` and
#: ``idle_transitions`` satisfies it.
Policy = AnalyticPolicy

"""eRAID: energy-efficient RAID via redundancy (Li & Wang, SIGOPS-EW'04).

The fourth Table-I technique: exploit *redundancy* for power.  In a
mirrored array the mirror halves carry no unique data, so under light
load they can spin down; reads fall back to the primaries, and writes
to a sleeping mirror are logged and replayed (resynced) when it wakes.

Model, on striped mirror pairs (RAID-10 layout):

* reads — alternate across a pair when both members spin; primary-only
  while the mirror sleeps (no latency penalty beyond the busier
  primary);
* writes — always hit the primary; a sleeping mirror's copy is
  deferred into a dirty log;
* policy — a window timer watches primary utilisation: below
  ``sleep_threshold`` the mirrors spin down; above ``wake_threshold``
  (or when the dirty log exceeds ``max_dirty_log``) they spin up and
  the log replays to them (resync I/O through the normal queues);
* exposure — while dirty entries exist, that data is single-copy; the
  array tracks ``exposure_seconds`` (integral of dirty-log non-empty
  time), the reliability cost TRACER's metrics can weigh against the
  energy saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StorageConfigError
from .policy import (
    AnalyticPolicy,
    MemberBuild,
    PolicyBuild,
    PowerProgram,
    baseline_member_build,
)
from ..power.model import EnergyMeter
from ..power.states import PowerState
from ..sim.engine import Simulator
from ..storage.base import Completion, CompletionCallback, StorageDevice
from ..storage.hdd import HardDiskDrive
from ..trace.record import READ, WRITE, IOPackage
from ..units import SECTOR_BYTES


@dataclass
class _Flight:
    package: IOPackage
    submit_time: float
    on_complete: CompletionCallback
    pending: int


class ERAIDArray(StorageDevice):
    """Striped mirror pairs with mirror spin-down and write logging.

    Parameters
    ----------
    disks:
        Even count; pair ``p`` is (primary ``2p``, mirror ``2p+1``).
    strip_bytes:
        Stripe unit across pairs.
    window:
        Policy evaluation period in seconds (``None`` disables).
    sleep_threshold / wake_threshold:
        Primary-utilisation bounds for spinning mirrors down / up.
    max_dirty_log:
        Pending deferred writes that force a wake + resync.
    """

    def __init__(
        self,
        disks: Sequence[HardDiskDrive],
        strip_bytes: int = 128 * 1024,
        window: Optional[float] = 5.0,
        sleep_threshold: float = 0.2,
        wake_threshold: float = 0.6,
        max_dirty_log: int = 1024,
        non_disk_watts: float = 38.0,
        name: str = "eraid0",
    ) -> None:
        super().__init__(name)
        if len(disks) < 4 or len(disks) % 2:
            raise StorageConfigError("eRAID needs an even count of >= 4 disks")
        if strip_bytes <= 0 or strip_bytes % SECTOR_BYTES:
            raise StorageConfigError("strip_bytes must be a positive 512 multiple")
        if not 0.0 <= sleep_threshold < wake_threshold <= 1.0:
            raise StorageConfigError(
                "need 0 <= sleep_threshold < wake_threshold <= 1"
            )
        if max_dirty_log < 1:
            raise StorageConfigError("max_dirty_log must be >= 1")
        self.disks = list(disks)
        self.n_pairs = len(disks) // 2
        self.strip_bytes = strip_bytes
        self.strip_sectors = strip_bytes // SECTOR_BYTES
        self.window = window
        self.sleep_threshold = sleep_threshold
        self.wake_threshold = wake_threshold
        self.max_dirty_log = max_dirty_log
        self.meter = EnergyMeter(
            [d.timeline for d in self.disks], overhead_watts=non_disk_watts
        )
        per_pair = min(d.capacity_sectors for d in self.disks)
        self._pair_sectors = (per_pair // self.strip_sectors) * self.strip_sectors
        self.mirrors_asleep = False
        self._dirty: List[Tuple[int, IOPackage]] = []  # (pair, mirror pkg)
        self._mirror_next = 0
        self._policy_active = False
        self._resyncing = False
        self._exposure_started: Optional[float] = None
        self.exposure_seconds = 0.0
        self.sleep_events = 0
        self.wake_events = 0
        self.resynced_writes = 0

    # -- Device interface --------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        super().attach(sim)
        for disk in self.disks:
            disk.attach(sim)
        self._policy_active = True
        if self.window is not None:
            sim.schedule_after(self.window, self._policy_tick, priority=20)

    def stop_policy(self) -> None:
        self._policy_active = False

    @property
    def capacity_sectors(self) -> int:
        return self.n_pairs * self._pair_sectors

    def energy_between(self, t0: float, t1: float) -> float:
        return self.meter.energy_between(t0, t1)

    @property
    def dirty_log_length(self) -> int:
        return len(self._dirty)

    # -- Address mapping (stripe across pairs) ------------------------------

    def _pieces(self, package: IOPackage) -> List[Tuple[int, IOPackage]]:
        """(pair, physical package) chunks, strip-aligned."""
        pieces = []
        start = package.sector * SECTOR_BYTES
        remaining = package.nbytes
        while remaining > 0:
            strip_index = start // self.strip_bytes
            offset = start % self.strip_bytes
            take = min(self.strip_bytes - offset, remaining)
            pair = strip_index % self.n_pairs
            row = strip_index // self.n_pairs
            sector = row * self.strip_sectors + offset // SECTOR_BYTES
            pieces.append((pair, IOPackage(sector, take, package.op)))
            start += take
            remaining -= take
        return pieces

    # -- I/O path ------------------------------------------------------------

    def submit(self, package: IOPackage, on_complete: CompletionCallback) -> None:
        sim = self._require_sim()
        self.check_bounds(package)
        pieces = self._pieces(package)

        def _mirror_usable(pair: int) -> bool:
            mirror = self.disks[2 * pair + 1]
            return (
                not self.mirrors_asleep
                and not self._resyncing
                and mirror.state.ready
            )

        fanout = sum(
            2 if (pkg.op == WRITE and _mirror_usable(pair)) else 1
            for pair, pkg in pieces
        )
        flight = _Flight(package, sim.now, on_complete, pending=fanout)

        def _one_done(_completion: Completion) -> None:
            flight.pending -= 1
            if flight.pending == 0:
                flight.on_complete(
                    Completion(
                        package=flight.package,
                        submit_time=flight.submit_time,
                        start_time=flight.submit_time,
                        finish_time=sim.now,
                    )
                )

        for pair, pkg in pieces:
            primary = self.disks[2 * pair]
            mirror = self.disks[2 * pair + 1]
            if pkg.op == READ:
                if _mirror_usable(pair):
                    member = primary if self._mirror_next == 0 else mirror
                    self._mirror_next = 1 - self._mirror_next
                    member.submit(pkg, _one_done)
                else:
                    primary.submit(pkg, _one_done)
            else:
                primary.submit(pkg, _one_done)
                if _mirror_usable(pair):
                    mirror.submit(pkg, _one_done)
                else:
                    # Sleeping or mid-wake: defer the mirror copy.
                    self._log_dirty(pair, pkg)

    def _log_dirty(self, pair: int, pkg: IOPackage) -> None:
        sim = self._require_sim()
        if self._exposure_started is None:
            self._exposure_started = sim.now
        self._dirty.append((pair, pkg))
        if len(self._dirty) >= self.max_dirty_log:
            self._wake_mirrors()

    # -- Policy ----------------------------------------------------------------

    def _primary_utilisation(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        primaries = [self.disks[2 * p] for p in range(self.n_pairs)]
        return max(d.utilisation(t0, t1) for d in primaries)

    def _policy_tick(self) -> None:
        sim = self._require_sim()
        if not self._policy_active:
            return
        t1 = sim.now
        util = self._primary_utilisation(t1 - self.window, t1)
        if not self.mirrors_asleep and util < self.sleep_threshold:
            self._sleep_mirrors()
        elif self.mirrors_asleep and util > self.wake_threshold:
            self._wake_mirrors()
        sim.schedule_after(self.window, self._policy_tick, priority=20)

    def _sleep_mirrors(self) -> None:
        ready = all(
            self.disks[2 * p + 1].state.ready
            and not self.disks[2 * p + 1].busy
            and self.disks[2 * p + 1].queue_depth == 0
            for p in range(self.n_pairs)
        )
        if not ready or self._resyncing:
            return
        for p in range(self.n_pairs):
            self.disks[2 * p + 1].spin_down()
        self.mirrors_asleep = True
        self.sleep_events += 1

    def _wake_mirrors(self) -> None:
        if not self.mirrors_asleep or self._resyncing:
            return
        sim = self._require_sim()
        self.mirrors_asleep = False
        self._resyncing = True
        self.wake_events += 1
        delay = max(
            self.disks[2 * p + 1].spin_up() for p in range(self.n_pairs)
        )
        sim.schedule_after(delay + 0.001, self._resync, priority=15)

    def _resync(self) -> None:
        """Replay the dirty log to the mirrors; loops until drained
        (writes deferred during the resync itself join the next pass)."""
        sim = self._require_sim()
        backlog = self._dirty
        self._dirty = []
        if not backlog:
            if self._exposure_started is not None:
                self.exposure_seconds += sim.now - self._exposure_started
                self._exposure_started = None
            self._resyncing = False
            return
        pending = {"n": len(backlog)}

        def _done(_completion: Completion) -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                self._resync()  # drain anything deferred meanwhile

        for pair, pkg in backlog:
            self.resynced_writes += 1
            self.disks[2 * pair + 1].submit(pkg, _done)


class ERAIDPolicy(AnalyticPolicy):
    """Analytic eRAID for the policy search.

    The pure-function counterpart of :class:`ERAIDArray`: members pair
    up mirror-style (``i`` with ``i + n//2``); in each pair the
    less-busy member parks in standby for the whole horizon when its
    utilisation is at or below ``utilization_threshold``.  Its
    committed service is redirected to the partner (charged as a
    constant-power stream so no energy disappears), reads served while
    parked count as degraded — never more than the workload's reads,
    the invariant the property tier asserts — and the write fraction
    of the redirected service is resynced at write power before the
    horizon ends.
    """

    name = "eraid"

    def __init__(self, utilization_threshold: float = 0.2) -> None:
        super().__init__()
        if not 0.0 <= utilization_threshold <= 1.0:
            raise StorageConfigError(
                "utilization_threshold must be within [0, 1]"
            )
        self.utilization_threshold = float(utilization_threshold)

    @property
    def params(self):
        return {"utilization_threshold": self.utilization_threshold}

    def _build(self, capture) -> PolicyBuild:
        prepared = self._prepared(capture)
        n = len(prepared)
        end = capture.end
        half = n // 2
        sleeping = set()
        for i in range(half):
            j = i + half
            busy_i = prepared[i][1].busy_seconds
            busy_j = prepared[j][1].busy_seconds
            si = i if busy_i <= busy_j else j
            spec_s, profile_s = prepared[si][0], prepared[si][1]
            util = profile_s.busy_seconds / end if end > 0 else 0.0
            if spec_s.can_spin_down and util <= self.utilization_threshold:
                sleeping.add(si)
        total_bytes = capture.read_bytes + capture.write_bytes
        write_fraction = (
            capture.write_bytes / total_bytes if total_bytes else 0.0
        )
        members = []
        extras = []
        counters = {
            "sleeping_members": float(len(sleeping)),
            "degraded_reads": 0.0,
            "resync_seconds": 0.0,
            "redirected_joules": 0.0,
        }
        for i, (spec, profile, gs, ge) in enumerate(prepared):
            if i not in sleeping:
                members.append(baseline_member_build(spec, profile, gs, ge))
                continue
            redirected = float(
                np.sum(profile.watts * (profile.ends - profile.starts))
            )
            resync = min(profile.busy_seconds * write_fraction, end)
            program = PowerProgram.concat(
                [
                    (
                        np.zeros(1),
                        np.asarray([end - resync]),
                        np.asarray([spec.standby_watts]),
                    ),
                    (
                        np.asarray([end - resync]),
                        np.asarray([end]),
                        np.asarray([spec.write_watts]),
                    ),
                ]
            )
            transitions = [(np.zeros(1), "standby")]
            if resync > 0:
                transitions.append((np.asarray([end - resync]), "resync"))
            windows = None
            if profile.starts.size:
                windows = (
                    profile.starts,
                    profile.ends,
                    profile.ends - profile.starts,
                )
            members.append(
                MemberBuild(program, transitions=transitions, windows=windows)
            )
            if redirected > 0 and end > 0:
                extras.append(
                    PowerProgram(
                        np.zeros(1),
                        np.asarray([end]),
                        np.asarray([redirected / end]),
                    )
                )
            counters["degraded_reads"] += float(
                min(profile.starts.size, capture.reads)
            )
            counters["resync_seconds"] += resync
            counters["redirected_joules"] += redirected
        # A read can only degrade once however many mirrors sleep: the
        # array-wide count is capped by the reads the trace served.
        counters["degraded_reads"] = float(
            min(counters["degraded_reads"], capture.reads)
        )
        return PolicyBuild(members, extras=extras, counters=counters)

"""Side-by-side policy comparison using TRACER's metrics.

"TRACER allows systems developers to compare among various energy-saving
techniques integrated into modern storage systems" (§I).  Given a
baseline device factory and alternatives, replay the same trace at the
same load on each and tabulate energy saving vs. performance penalty —
the exact comparison columns of the paper's Table I literature survey.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import ReplayConfig
from ..replay.results import ReplayResult
from ..replay.session import ReplaySession
from ..storage.base import StorageDevice
from ..trace.record import Trace

DeviceFactory = Callable[[], StorageDevice]


@dataclass(frozen=True)
class PolicyComparison:
    """One policy's outcome relative to the baseline."""

    name: str
    result: ReplayResult
    energy_saving: float
    """Fraction of baseline energy saved (positive = saves energy)."""
    response_penalty: float
    """Relative mean-response-time increase over baseline."""
    throughput_ratio: float
    """Policy MBPS over baseline MBPS."""

    @property
    def iops_per_watt(self) -> float:
        return self.result.iops_per_watt

    @property
    def mbps_per_kilowatt(self) -> float:
        return self.result.mbps_per_kilowatt


def compare_policies(
    baseline: Tuple[str, DeviceFactory],
    policies: Sequence[Tuple[str, DeviceFactory]],
    trace: Trace,
    load_proportion: float = 1.0,
    config: Optional[ReplayConfig] = None,
) -> List[PolicyComparison]:
    """Replay ``trace`` on the baseline and each policy; compare.

    Returns one row per entry, baseline first (with zero deltas).
    """
    base_name, base_factory = baseline
    base_result = ReplaySession(base_factory(), config=config).run(
        trace, load_proportion=load_proportion
    )
    rows = [
        PolicyComparison(
            name=base_name,
            result=base_result,
            energy_saving=0.0,
            response_penalty=0.0,
            throughput_ratio=1.0,
        )
    ]
    for name, factory in policies:
        result = ReplaySession(factory(), config=config).run(
            trace, load_proportion=load_proportion
        )
        saving = (
            1.0 - result.energy_joules / base_result.energy_joules
            if base_result.energy_joules > 0
            else 0.0
        )
        penalty = (
            result.mean_response / base_result.mean_response - 1.0
            if base_result.mean_response > 0
            else 0.0
        )
        ratio = result.mbps / base_result.mbps if base_result.mbps > 0 else 0.0
        rows.append(
            PolicyComparison(
                name=name,
                result=result,
                energy_saving=saving,
                response_penalty=penalty,
                throughput_ratio=ratio,
            )
        )
    return rows


COMPARISON_HEADERS = (
    "policy", "energy J", "saving%", "resp ms", "penalty%", "MBPS", "IOPS/W",
)


def comparison_rows(rows: Sequence[PolicyComparison]) -> List[List[str]]:
    """Pre-formatted table cells for :func:`format_comparison`."""
    return [
        [
            row.name,
            f"{row.result.energy_joules:.1f}",
            f"{row.energy_saving * 100:.1f}%",
            f"{row.result.mean_response * 1000:.3f}",
            f"{row.response_penalty * 100:.1f}%",
            f"{row.result.mbps:.2f}",
            f"{row.iops_per_watt:.2f}",
        ]
        for row in rows
    ]


def format_comparison(rows: Sequence[PolicyComparison]) -> str:
    """Comparison table through the shared markdown writer.

    Rendered by :func:`repro.analysis.export.render_table` — the same
    writer ``tracer runs show`` and the search report use — so the
    bench/example output can no longer drift from the CLI's formatting.
    """
    from ..analysis.export import render_table

    return render_table(COMPARISON_HEADERS, comparison_rows(rows))


def comparison_json(rows: Sequence[PolicyComparison]) -> str:
    """Comparison rows through the shared JSON writer."""
    from ..analysis.export import render_json

    return render_json(
        [
            {
                "policy": row.name,
                "energy_joules": row.result.energy_joules,
                "energy_saving": row.energy_saving,
                "mean_response": row.result.mean_response,
                "response_penalty": row.response_penalty,
                "mbps": row.result.mbps,
                "iops_per_watt": row.iops_per_watt,
            }
            for row in rows
        ]
    )

"""Side-by-side policy comparison using TRACER's metrics.

"TRACER allows systems developers to compare among various energy-saving
techniques integrated into modern storage systems" (§I).  Given a
baseline device factory and alternatives, replay the same trace at the
same load on each and tabulate energy saving vs. performance penalty —
the exact comparison columns of the paper's Table I literature survey.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import ReplayConfig
from ..replay.results import ReplayResult
from ..replay.session import ReplaySession
from ..storage.base import StorageDevice
from ..trace.record import Trace

DeviceFactory = Callable[[], StorageDevice]


@dataclass(frozen=True)
class PolicyComparison:
    """One policy's outcome relative to the baseline."""

    name: str
    result: ReplayResult
    energy_saving: float
    """Fraction of baseline energy saved (positive = saves energy)."""
    response_penalty: float
    """Relative mean-response-time increase over baseline."""
    throughput_ratio: float
    """Policy MBPS over baseline MBPS."""

    @property
    def iops_per_watt(self) -> float:
        return self.result.iops_per_watt

    @property
    def mbps_per_kilowatt(self) -> float:
        return self.result.mbps_per_kilowatt


def compare_policies(
    baseline: Tuple[str, DeviceFactory],
    policies: Sequence[Tuple[str, DeviceFactory]],
    trace: Trace,
    load_proportion: float = 1.0,
    config: Optional[ReplayConfig] = None,
) -> List[PolicyComparison]:
    """Replay ``trace`` on the baseline and each policy; compare.

    Returns one row per entry, baseline first (with zero deltas).
    """
    base_name, base_factory = baseline
    base_result = ReplaySession(base_factory(), config=config).run(
        trace, load_proportion=load_proportion
    )
    rows = [
        PolicyComparison(
            name=base_name,
            result=base_result,
            energy_saving=0.0,
            response_penalty=0.0,
            throughput_ratio=1.0,
        )
    ]
    for name, factory in policies:
        result = ReplaySession(factory(), config=config).run(
            trace, load_proportion=load_proportion
        )
        saving = (
            1.0 - result.energy_joules / base_result.energy_joules
            if base_result.energy_joules > 0
            else 0.0
        )
        penalty = (
            result.mean_response / base_result.mean_response - 1.0
            if base_result.mean_response > 0
            else 0.0
        )
        ratio = result.mbps / base_result.mbps if base_result.mbps > 0 else 0.0
        rows.append(
            PolicyComparison(
                name=name,
                result=result,
                energy_saving=saving,
                response_penalty=penalty,
                throughput_ratio=ratio,
            )
        )
    return rows


def format_comparison(rows: Sequence[PolicyComparison]) -> str:
    """Fixed-width table for bench/example output."""
    header = (
        f"{'policy':<20} {'energy J':>10} {'saving%':>8} {'resp ms':>9} "
        f"{'penalty%':>9} {'MBPS':>8} {'IOPS/W':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<20} {row.result.energy_joules:>10.1f} "
            f"{row.energy_saving * 100:>7.1f}% "
            f"{row.result.mean_response * 1000:>9.3f} "
            f"{row.response_penalty * 100:>8.1f}% "
            f"{row.result.mbps:>8.2f} {row.iops_per_watt:>8.2f}"
        )
    return "\n".join(lines)

"""HP ``.srt`` trace parsing and the trace-format transformer.

The paper's workload generator includes "a trace format transformer ...
to change the HP trace format (i.e., trace files with the extension name
srt) into the blktrace format" (Section III-A2).  HP's cello traces ship
in the SRT (self-describing trace) format; the widely used text export
carries one record per line::

    <timestamp> <device> <start_byte> <length_bytes> <R|W>

Timestamps are seconds (float) since trace start.  We parse that text
form, group records that share a timestamp into bunches (that is exactly
what a blktrace bunch is — requests queued in the same submission
window), and emit a standard :class:`~repro.trace.record.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from ..errors import TraceFormatError
from ..units import SECTOR_BYTES
from .blktrace import write_trace
from .record import READ, WRITE, Bunch, IOPackage, Trace

PathLike = Union[str, Path]

_OP_CODES = {"R": READ, "r": READ, "W": WRITE, "w": WRITE}


@dataclass(frozen=True)
class SRTRecord:
    """One parsed SRT line."""

    timestamp: float
    device: int
    offset_bytes: int
    length_bytes: int
    op: int


def parse_srt_line(line: str, lineno: int = 0) -> SRTRecord:
    """Parse one SRT text line; raises :class:`TraceFormatError` on garbage."""
    fields = line.split()
    if len(fields) != 5:
        raise TraceFormatError(
            f"SRT line {lineno}: expected 5 fields, got {len(fields)}: {line!r}"
        )
    try:
        ts = float(fields[0])
        dev = int(fields[1])
        offset = int(fields[2])
        length = int(fields[3])
    except ValueError as exc:
        raise TraceFormatError(f"SRT line {lineno}: {exc}") from exc
    opname = fields[4]
    if opname not in _OP_CODES:
        raise TraceFormatError(
            f"SRT line {lineno}: op must be R or W, got {opname!r}"
        )
    if ts < 0 or offset < 0 or length <= 0:
        raise TraceFormatError(f"SRT line {lineno}: negative/zero field in {line!r}")
    return SRTRecord(ts, dev, offset, length, _OP_CODES[opname])


def parse_srt(source: Union[TextIO, Iterable[str]]) -> Iterator[SRTRecord]:
    """Parse SRT text lines, skipping blanks and ``#`` comments."""
    for lineno, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_srt_line(stripped, lineno)


def srt_to_trace(
    records: Iterable[SRTRecord],
    device: int | None = None,
    bunch_window: float = 0.0,
    label: str = "",
) -> Trace:
    """Convert SRT records to a blktrace-format :class:`Trace`.

    Parameters
    ----------
    records:
        Parsed SRT records, time-ordered.
    device:
        Keep only records for this device number (HP traces interleave
        several disks); ``None`` keeps everything.
    bunch_window:
        Records whose timestamps differ by at most this many seconds are
        folded into one bunch (concurrent submission).  ``0.0`` groups
        only exactly-equal timestamps.
    """
    bunches: List[Bunch] = []
    pending: List[IOPackage] = []
    pending_ts: float | None = None
    last_ts = -1.0
    for rec in records:
        if device is not None and rec.device != device:
            continue
        if rec.timestamp < last_ts:
            raise TraceFormatError(
                f"SRT records out of order: {rec.timestamp} after {last_ts}"
            )
        last_ts = rec.timestamp
        pkg = IOPackage(rec.offset_bytes // SECTOR_BYTES, rec.length_bytes, rec.op)
        if pending_ts is not None and rec.timestamp - pending_ts <= bunch_window:
            pending.append(pkg)
        else:
            if pending:
                bunches.append(Bunch(pending_ts, pending))
            pending = [pkg]
            pending_ts = rec.timestamp
    if pending:
        bunches.append(Bunch(pending_ts, pending))
    return Trace(bunches, label=label)


def convert_srt_file(
    src: PathLike,
    dst: PathLike,
    device: int | None = None,
    bunch_window: float = 0.0,
) -> Trace:
    """Transform an ``.srt`` text file into a ``.replay`` binary file.

    Returns the converted trace (also written to ``dst``), mirroring the
    paper's transformer which must run before TRACER can load HP traces.
    """
    src = Path(src)
    with open(src, "r") as fh:
        trace = srt_to_trace(
            parse_srt(fh), device=device, bunch_window=bunch_window, label=src.stem
        )
    write_trace(trace, dst)
    return trace


def write_srt(trace: Trace, path: PathLike, device: int = 0) -> None:
    """Export a trace to SRT text (round-trip support and test fixtures)."""
    opname = {READ: "R", WRITE: "W"}
    with open(path, "w") as fh:
        fh.write("# HP SRT text export\n")
        for bunch in trace:
            for pkg in bunch.packages:
                fh.write(
                    f"{bunch.timestamp:.9f} {device} "
                    f"{pkg.sector * SECTOR_BYTES} {pkg.nbytes} {opname[pkg.op]}\n"
                )

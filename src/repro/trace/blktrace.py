"""Binary codec for the blktrace ``.replay`` file layout (paper Fig. 4).

On-disk layout (little-endian)::

    file   := magic header, bunch*
    header := magic "TRCR" | version u16 | flags u16 | bunch_count u64
    bunch  := timestamp_ns u64 | npackages u32 | package*
    package:= sector u64 | nbytes u32 | op u8 | pad u8[3]

The real blktrace btrecord/btreplay bunch layout is equivalent in content
(timestamp, package count, then fixed-size IO descriptors); we add a
magic/version header so format errors fail fast instead of producing
garbage bunches.

The codec is vectorised with NumPy: a trace with hundreds of thousands of
packages round-trips in milliseconds, per the HPC guide's
"vectorise, don't loop" rule.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Union

import numpy as np

from ..errors import TraceFormatError, TraceValidationError
from ..units import NS_PER_S
from .packed import PACKED_PACKAGE_DTYPE, PackedTrace
from .record import Bunch, IOPackage, Trace

MAGIC = b"TRCR"
VERSION = 1

_HEADER = struct.Struct("<4sHHQ")
_BUNCH_HEADER = struct.Struct("<QI")
_PACKAGE_DTYPE = np.dtype(
    [("sector", "<u8"), ("nbytes", "<u4"), ("op", "u1"), ("pad", "u1", 3)]
)

PathLike = Union[str, Path]


class BlktraceCodec:
    """Encode/decode :class:`~repro.trace.record.Trace` to the binary format."""

    def encode(self, trace: Trace, stream: BinaryIO) -> int:
        """Write ``trace`` to a binary stream; returns bytes written."""
        written = stream.write(_HEADER.pack(MAGIC, VERSION, 0, len(trace)))
        for bunch in trace:
            ts_ns = round(bunch.timestamp * NS_PER_S)
            written += stream.write(_BUNCH_HEADER.pack(ts_ns, len(bunch)))
            arr = np.zeros(len(bunch), dtype=_PACKAGE_DTYPE)
            arr["sector"] = [p.sector for p in bunch.packages]
            arr["nbytes"] = [p.nbytes for p in bunch.packages]
            arr["op"] = [p.op for p in bunch.packages]
            data = arr.tobytes()
            written += stream.write(data)
        return written

    def decode(self, stream: BinaryIO, label: str = "") -> Trace:
        """Read one trace from a binary stream."""
        raw = stream.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise TraceFormatError("truncated trace header", offset=0)
        magic, version, _flags, bunch_count = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise TraceFormatError(
                f"bad magic {magic!r}; not a TRACER .replay file", offset=0
            )
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        bunches = []
        offset = _HEADER.size
        for _ in range(bunch_count):
            raw = stream.read(_BUNCH_HEADER.size)
            if len(raw) < _BUNCH_HEADER.size:
                raise TraceFormatError("truncated bunch header", offset=offset)
            ts_ns, npackages = _BUNCH_HEADER.unpack(raw)
            offset += _BUNCH_HEADER.size
            if npackages == 0:
                raise TraceFormatError("bunch with zero packages", offset=offset)
            nbytes = npackages * _PACKAGE_DTYPE.itemsize
            raw = stream.read(nbytes)
            if len(raw) < nbytes:
                raise TraceFormatError("truncated package array", offset=offset)
            arr = np.frombuffer(raw, dtype=_PACKAGE_DTYPE)
            offset += nbytes
            try:
                packages = [
                    IOPackage(int(s), int(n), int(o))
                    for s, n, o in zip(arr["sector"], arr["nbytes"], arr["op"])
                ]
                bunches.append(Bunch(ts_ns / NS_PER_S, packages))
            except TraceValidationError as exc:
                # Corrupted field values are a *format* problem from the
                # reader's perspective.
                raise TraceFormatError(
                    f"invalid package fields: {exc}", offset=offset
                ) from exc
        return Trace(bunches, label=label)


def _parse_packed_body(
    buf: bytes, bunch_count: int, base_offset: int
) -> PackedTrace:
    """Parse ``bunch_count`` bunches from ``buf[base_offset:]`` columnar-ly.

    The single Python loop below only walks the 12-byte bunch headers
    (the variable-length framing makes their positions sequentially
    dependent); the package payload — the bulk of the file — is lifted
    in one vectorised byte gather, never materialising IOPackage
    objects.  ``base_offset`` is the absolute file offset of the first
    bunch, used for error reporting.
    """
    bs = _BUNCH_HEADER.size
    ps = _PACKAGE_DTYPE.itemsize
    unpack = _BUNCH_HEADER.unpack_from
    end = len(buf)
    pos = base_offset
    ts_ns = []
    counts = []
    data_offs = []
    append_ts = ts_ns.append
    append_count = counts.append
    append_off = data_offs.append
    for _ in range(bunch_count):
        if pos + bs > end:
            raise TraceFormatError("truncated bunch header", offset=pos)
        t, c = unpack(buf, pos)
        if c == 0:
            raise TraceFormatError("bunch with zero packages", offset=pos)
        if pos + bs + c * ps > end:
            raise TraceFormatError("truncated package array", offset=pos)
        append_ts(t)
        append_count(c)
        append_off(pos + bs)
        pos += bs + c * ps

    count_arr = np.asarray(counts, dtype=np.int64)
    offsets = np.zeros(bunch_count + 1, dtype=np.int64)
    np.cumsum(count_arr, out=offsets[1:])
    total = int(offsets[-1])
    # Gather every package record's bytes with one fancy index: row r of
    # the table lives at data_offs[bunch(r)] + (r - offsets[bunch(r)]) * ps.
    starts = np.repeat(
        np.asarray(data_offs, dtype=np.int64) - offsets[:-1] * ps, count_arr
    ) + np.arange(total, dtype=np.int64) * ps
    u8 = np.frombuffer(buf, dtype=np.uint8)
    raw = (
        u8[starts[:, None] + np.arange(ps, dtype=np.int64)[None, :]]
        .reshape(-1)
        .view(_PACKAGE_DTYPE)
    )
    timestamps = np.asarray(ts_ns, dtype=np.float64) / NS_PER_S
    try:
        return PackedTrace(timestamps, offsets, raw, validate=True)
    except TraceValidationError as exc:
        raise TraceFormatError(f"invalid package fields: {exc}", offset=base_offset) from exc


class PackedCodec:
    """Encode/decode :class:`~repro.trace.packed.PackedTrace` without
    materialising per-package objects.  Byte-compatible with
    :class:`BlktraceCodec` — the two codecs read each other's output."""

    def encode(self, packed: PackedTrace, stream: BinaryIO) -> int:
        n = len(packed)
        offsets = packed.offsets
        sizes = (offsets[1:] - offsets[:-1]).astype(np.int64)
        ts_ns = np.rint(packed.timestamps * NS_PER_S).astype(np.uint64)
        disk = np.zeros(packed.package_count, dtype=_PACKAGE_DTYPE)
        disk["sector"] = packed.packages["sector"]
        disk["nbytes"] = packed.packages["nbytes"]
        disk["op"] = packed.packages["op"]
        body = disk.tobytes()
        ps = _PACKAGE_DTYPE.itemsize
        bs = _BUNCH_HEADER.size
        out = bytearray(_HEADER.size + n * bs + len(body))
        _HEADER.pack_into(out, 0, MAGIC, VERSION, 0, n)
        pack_into = _BUNCH_HEADER.pack_into
        pos = _HEADER.size
        ts_list = ts_ns.tolist()
        size_list = sizes.tolist()
        off_list = (offsets[:-1] * ps).tolist()
        for i in range(n):
            c = size_list[i]
            pack_into(out, pos, ts_list[i], c)
            pos += bs
            src = off_list[i]
            out[pos:pos + c * ps] = body[src:src + c * ps]
            pos += c * ps
        return stream.write(bytes(out))

    def decode(self, stream: BinaryIO, label: str = "") -> PackedTrace:
        raw = stream.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise TraceFormatError("truncated trace header", offset=0)
        magic, version, _flags, bunch_count = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise TraceFormatError(
                f"bad magic {magic!r}; not a TRACER .replay file", offset=0
            )
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        body = raw + stream.read()
        packed = _parse_packed_body(body, bunch_count, _HEADER.size)
        packed.label = label
        return packed


def write_trace(trace: Trace, path: PathLike) -> int:
    """Write a trace to ``path`` in ``.replay`` format; returns bytes written."""
    codec = BlktraceCodec()
    with open(path, "wb") as fh:
        return codec.encode(trace, fh)


def read_trace(path: PathLike) -> Trace:
    """Read a ``.replay`` trace file from ``path``."""
    codec = BlktraceCodec()
    path = Path(path)
    with open(path, "rb") as fh:
        return codec.decode(fh, label=path.stem)


def dumps(trace: Trace) -> bytes:
    """Encode a trace to bytes (useful for the wire protocol and tests)."""
    buf = io.BytesIO()
    BlktraceCodec().encode(trace, buf)
    return buf.getvalue()


def loads(data: bytes, label: str = "") -> Trace:
    """Decode a trace from bytes."""
    return BlktraceCodec().decode(io.BytesIO(data), label=label)


def write_trace_packed(packed: PackedTrace, path: PathLike) -> int:
    """Write a packed trace to ``path`` in ``.replay`` format."""
    with open(path, "wb") as fh:
        return PackedCodec().encode(packed, fh)


def read_trace_packed(path: PathLike) -> PackedTrace:
    """Read a ``.replay`` file straight into the packed representation."""
    path = Path(path)
    with open(path, "rb") as fh:
        return PackedCodec().decode(fh, label=path.stem)


def dumps_packed(packed: PackedTrace) -> bytes:
    """Encode a packed trace to bytes."""
    buf = io.BytesIO()
    PackedCodec().encode(packed, buf)
    return buf.getvalue()


def loads_packed(data: bytes, label: str = "") -> PackedTrace:
    """Decode bytes straight into the packed representation."""
    return PackedCodec().decode(io.BytesIO(data), label=label)

"""Binary codec for the blktrace ``.replay`` file layout (paper Fig. 4).

On-disk layout (little-endian)::

    file   := magic header, bunch*
    header := magic "TRCR" | version u16 | flags u16 | bunch_count u64
    bunch  := timestamp_ns u64 | npackages u32 | package*
    package:= sector u64 | nbytes u32 | op u8 | pad u8[3]

The real blktrace btrecord/btreplay bunch layout is equivalent in content
(timestamp, package count, then fixed-size IO descriptors); we add a
magic/version header so format errors fail fast instead of producing
garbage bunches.

The codec is vectorised with NumPy: a trace with hundreds of thousands of
packages round-trips in milliseconds, per the HPC guide's
"vectorise, don't loop" rule.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Union

import numpy as np

from ..errors import TraceFormatError, TraceValidationError
from ..units import NS_PER_S
from .record import Bunch, IOPackage, Trace

MAGIC = b"TRCR"
VERSION = 1

_HEADER = struct.Struct("<4sHHQ")
_BUNCH_HEADER = struct.Struct("<QI")
_PACKAGE_DTYPE = np.dtype(
    [("sector", "<u8"), ("nbytes", "<u4"), ("op", "u1"), ("pad", "u1", 3)]
)

PathLike = Union[str, Path]


class BlktraceCodec:
    """Encode/decode :class:`~repro.trace.record.Trace` to the binary format."""

    def encode(self, trace: Trace, stream: BinaryIO) -> int:
        """Write ``trace`` to a binary stream; returns bytes written."""
        written = stream.write(_HEADER.pack(MAGIC, VERSION, 0, len(trace)))
        for bunch in trace:
            ts_ns = round(bunch.timestamp * NS_PER_S)
            written += stream.write(_BUNCH_HEADER.pack(ts_ns, len(bunch)))
            arr = np.zeros(len(bunch), dtype=_PACKAGE_DTYPE)
            arr["sector"] = [p.sector for p in bunch.packages]
            arr["nbytes"] = [p.nbytes for p in bunch.packages]
            arr["op"] = [p.op for p in bunch.packages]
            data = arr.tobytes()
            written += stream.write(data)
        return written

    def decode(self, stream: BinaryIO, label: str = "") -> Trace:
        """Read one trace from a binary stream."""
        raw = stream.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise TraceFormatError("truncated trace header", offset=0)
        magic, version, _flags, bunch_count = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise TraceFormatError(
                f"bad magic {magic!r}; not a TRACER .replay file", offset=0
            )
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        bunches = []
        offset = _HEADER.size
        for _ in range(bunch_count):
            raw = stream.read(_BUNCH_HEADER.size)
            if len(raw) < _BUNCH_HEADER.size:
                raise TraceFormatError("truncated bunch header", offset=offset)
            ts_ns, npackages = _BUNCH_HEADER.unpack(raw)
            offset += _BUNCH_HEADER.size
            if npackages == 0:
                raise TraceFormatError("bunch with zero packages", offset=offset)
            nbytes = npackages * _PACKAGE_DTYPE.itemsize
            raw = stream.read(nbytes)
            if len(raw) < nbytes:
                raise TraceFormatError("truncated package array", offset=offset)
            arr = np.frombuffer(raw, dtype=_PACKAGE_DTYPE)
            offset += nbytes
            try:
                packages = [
                    IOPackage(int(s), int(n), int(o))
                    for s, n, o in zip(arr["sector"], arr["nbytes"], arr["op"])
                ]
                bunches.append(Bunch(ts_ns / NS_PER_S, packages))
            except TraceValidationError as exc:
                # Corrupted field values are a *format* problem from the
                # reader's perspective.
                raise TraceFormatError(
                    f"invalid package fields: {exc}", offset=offset
                ) from exc
        return Trace(bunches, label=label)


def write_trace(trace: Trace, path: PathLike) -> int:
    """Write a trace to ``path`` in ``.replay`` format; returns bytes written."""
    codec = BlktraceCodec()
    with open(path, "wb") as fh:
        return codec.encode(trace, fh)


def read_trace(path: PathLike) -> Trace:
    """Read a ``.replay`` trace file from ``path``."""
    codec = BlktraceCodec()
    path = Path(path)
    with open(path, "rb") as fh:
        return codec.decode(fh, label=path.stem)


def dumps(trace: Trace) -> bytes:
    """Encode a trace to bytes (useful for the wire protocol and tests)."""
    buf = io.BytesIO()
    BlktraceCodec().encode(trace, buf)
    return buf.getvalue()


def loads(data: bytes, label: str = "") -> Trace:
    """Decode a trace from bytes."""
    return BlktraceCodec().decode(io.BytesIO(data), label=label)

"""Trace manipulation utilities: slicing, shifting, merging, rebasing.

These are the plumbing operations the benchmarks and the distributed
evaluation use to cut multi-minute traces into replay windows and to
combine per-device traces for multi-array tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..errors import TraceValidationError
from .record import Bunch, Trace


def time_window(trace: Trace, start: float, end: float) -> Trace:
    """Return the sub-trace whose bunch timestamps fall in [start, end)."""
    if end < start:
        raise TraceValidationError(f"window end {end} precedes start {start}")
    bunches = [b for b in trace if start <= b.timestamp < end]
    return Trace(bunches, label=f"{trace.label}[{start:g}:{end:g}s]")


def rebase(trace: Trace, origin: float = 0.0) -> Trace:
    """Shift timestamps so the first bunch lands at ``origin``."""
    if len(trace) == 0:
        return Trace([], label=trace.label)
    delta = origin - trace.bunches[0].timestamp
    return Trace([b.shifted(delta) for b in trace], label=trace.label)


def concat(traces: Sequence[Trace], gap: float = 0.0, label: str = "") -> Trace:
    """Concatenate traces back-to-back, inserting ``gap`` seconds between.

    Each trace is rebased so its first bunch starts right after the
    previous trace's last bunch plus the gap.
    """
    bunches: List[Bunch] = []
    cursor = 0.0
    for trace in traces:
        if len(trace) == 0:
            continue
        base = trace.bunches[0].timestamp
        for bunch in trace:
            bunches.append(bunch.shifted(cursor - base))
        cursor = bunches[-1].timestamp + gap
    return Trace(bunches, label=label or "concat")


def merge(traces: Sequence[Trace], label: str = "") -> Trace:
    """Merge traces by timestamp (stable across equal stamps).

    Used when several collectors traced different devices over the same
    wall-clock window and the union stream is wanted.
    """
    indexed = []
    for t_idx, trace in enumerate(traces):
        for b_idx, bunch in enumerate(trace):
            indexed.append((bunch.timestamp, t_idx, b_idx, bunch))
    indexed.sort(key=lambda item: (item[0], item[1], item[2]))
    return Trace([item[3] for item in indexed], label=label or "merge")


def first_n_bunches(trace: Trace, n: int) -> Trace:
    """The first ``n`` bunches (replay warm-up windows)."""
    return Trace(trace.bunches[: max(0, n)], label=trace.label)


def split_by_op(trace: Trace) -> tuple:
    """Split into (reads-only, writes-only) traces.

    Bunches that become empty after the split are dropped; timestamps are
    preserved, so the two halves can be replayed against each other.
    """
    reads: List[Bunch] = []
    writes: List[Bunch] = []
    for bunch in trace:
        r = [p for p in bunch.packages if p.is_read]
        w = [p for p in bunch.packages if p.is_write]
        if r:
            reads.append(Bunch(bunch.timestamp, r))
        if w:
            writes.append(Bunch(bunch.timestamp, w))
    return (
        Trace(reads, label=f"{trace.label}:reads"),
        Trace(writes, label=f"{trace.label}:writes"),
    )


def fit_to_capacity(
    trace: Trace,
    capacity_sectors: int,
    mode: str = "scale",
) -> Trace:
    """Remap a trace's addresses into a smaller device's range.

    The paper notes a trace collected on a system with bandwidth B can
    test any device with bandwidth ≤ B; the same portability question
    arises for *capacity* (e.g. replaying an HDD-array trace on the
    paper's 4×32 GB SSD array).  Two remapping modes:

    * ``"scale"`` — multiply every address by ``capacity / span`` so the
      trace's footprint shrinks proportionally.  Preserves address
      ordering and *relative* seek distances, but compresses the gaps
      inside sequential runs (strict block continuity is lost).
    * ``"wrap"`` — addresses modulo the capacity.  Preserves request
      sizes and strictly sequential runs (until a run crosses the wrap
      point) but folds distant regions on top of each other.

    Requests whose *size* exceeds the capacity are rejected.
    """
    if capacity_sectors <= 0:
        raise TraceValidationError("capacity_sectors must be > 0")
    if mode not in ("scale", "wrap"):
        raise TraceValidationError(f"mode must be 'scale' or 'wrap', got {mode!r}")
    if len(trace) == 0:
        return Trace([], label=trace.label)
    max_end = max(p.end_sector for p in trace.packages())
    if max_end <= capacity_sectors:
        return Trace(list(trace.bunches), label=trace.label)

    bunches: List[Bunch] = []
    factor = capacity_sectors / max_end
    for bunch in trace:
        packages = []
        for pkg in bunch.packages:
            size_sectors = pkg.sectors
            if size_sectors > capacity_sectors:
                raise TraceValidationError(
                    f"request of {pkg.nbytes} bytes cannot fit a "
                    f"{capacity_sectors}-sector device"
                )
            limit = capacity_sectors - size_sectors
            if mode == "scale":
                sector = min(int(pkg.sector * factor), limit)
            else:
                sector = pkg.sector % capacity_sectors
                if sector > limit:
                    sector = limit
            packages.append(
                type(pkg)(sector, pkg.nbytes, pkg.op)
            )
        bunches.append(Bunch(bunch.timestamp, packages))
    return Trace(bunches, label=f"{trace.label}-fit")


def interarrival_times(trace: Trace) -> np.ndarray:
    """Array of inter-bunch gaps in seconds (len(trace)-1 entries)."""
    ts = np.array([b.timestamp for b in trace], dtype=np.float64)
    if len(ts) < 2:
        return np.empty(0, dtype=np.float64)
    return np.diff(ts)

"""Block-level trace model.

TRACER's traces follow the blktrace ``.replay`` layout of Fig. 4 in the
paper: a trace is a sequence of *bunches*; each bunch carries an arrival
timestamp and the number of concurrent *IO_packages* it contains; each
IO_package is a (start sector, byte length, read/write) triple.  Requests
inside one bunch are issued concurrently; bunches are issued at their
timestamps.

This package provides the in-memory records, a binary codec for the
on-disk format, streaming readers/writers, trace statistics (Table III),
an HP ``.srt`` format transformer, a named trace repository, validation,
and slicing/merging utilities.
"""

from .record import IOPackage, Bunch, Trace, READ, WRITE
from .packed import PackedTrace, TraceLike, pack, unpack
from .blktrace import (
    read_trace,
    write_trace,
    BlktraceCodec,
    PackedCodec,
    read_trace_packed,
    write_trace_packed,
    dumps_packed,
    loads_packed,
)
from .reader import TraceReader
from .writer import TraceWriter
from .stats import TraceStats, compute_stats
from .srt import SRTRecord, parse_srt, srt_to_trace, convert_srt_file
from .repository import TraceRepository, TraceName
from .validate import validate_trace
from . import ops

__all__ = [
    "IOPackage",
    "Bunch",
    "Trace",
    "READ",
    "WRITE",
    "PackedTrace",
    "TraceLike",
    "pack",
    "unpack",
    "read_trace",
    "write_trace",
    "BlktraceCodec",
    "PackedCodec",
    "read_trace_packed",
    "write_trace_packed",
    "dumps_packed",
    "loads_packed",
    "TraceReader",
    "TraceWriter",
    "TraceStats",
    "compute_stats",
    "SRTRecord",
    "parse_srt",
    "srt_to_trace",
    "convert_srt_file",
    "TraceRepository",
    "TraceName",
    "validate_trace",
    "ops",
]

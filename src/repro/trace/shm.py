"""Zero-copy trace sharing across process boundaries.

A parallel sweep used to ship its trace to every worker as pickled
``.replay`` bytes — for a multi-hundred-MB packed trace that is one
serialisation plus ``n_workers`` copies of the payload.  This module
publishes the :class:`~repro.trace.packed.PackedTrace` columns *once*
into POSIX shared memory; workers receive only a tiny descriptor —
``(segment name, dtype descr, shape)`` per column — and map the same
physical pages read-only.  No trace byte ever crosses a pipe.

Protocol
--------

1. The parent wraps its trace in a :class:`SharedTracePublication`
   (typically via the context manager): one ``multiprocessing.
   shared_memory.SharedMemory`` block per column, columns copied in
   once.
2. ``publication.descriptor`` — a small picklable dict — travels to
   workers through the pool initializer (see
   :func:`repro.workload.parallel.run_sweep`).
3. Workers call :func:`attach_packed` to map the segments and rebuild a
   ``PackedTrace`` whose arrays alias the shared pages (``validate=
   False``: the parent already validated the real trace).
4. The parent closes *and unlinks* the segments when the sweep ends;
   workers merely close their mappings.

The CPython ``resource_tracker`` would normally unlink an attached
segment when the *first* worker exits (fixed in 3.13 via
``track=False``); :func:`_attach_block` suppresses tracker registration
while attaching on older interpreters so the parent remains the sole
owner.
"""

from __future__ import annotations

import secrets
from typing import Any, Dict, List, Tuple

import numpy as np
from multiprocessing import shared_memory

from .packed import PackedTrace

#: Columns published per trace, in descriptor order.
_COLUMNS: Tuple[str, ...] = ("timestamps", "offsets", "packages")


def _dtype_descr(dtype: np.dtype) -> Any:
    """A picklable, reconstructible description of ``dtype``."""
    return np.lib.format.dtype_to_descr(dtype)


def _dtype_from_descr(descr: Any) -> np.dtype:
    return np.lib.format.descr_to_dtype(descr)


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting ownership.

    On Python >= 3.13 ``track=False`` skips the resource tracker; on
    older interpreters registration is suppressed for the duration of
    the attach, so a worker exit cannot unlink memory the parent still
    owns (and the tracker never sees a segment it would double-free).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _register_except_shm(rname: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedTracePublication:
    """One packed trace published into shared memory (parent side).

    Use as a context manager: the segments are unlinked on exit, after
    which worker descriptors are dead.
    """

    def __init__(self, trace: PackedTrace) -> None:
        if not isinstance(trace, PackedTrace):
            raise TypeError(
                f"only PackedTrace can be published, got {type(trace).__name__}"
            )
        self.label = trace.label
        self._blocks: List[shared_memory.SharedMemory] = []
        self._columns: Dict[str, Dict[str, Any]] = {}
        token = secrets.token_hex(4)
        try:
            for i, column in enumerate(_COLUMNS):
                arr = np.ascontiguousarray(getattr(trace, column))
                block = shared_memory.SharedMemory(
                    create=True,
                    size=max(int(arr.nbytes), 1),
                    name=f"tracer-{token}-{i}",
                )
                self._blocks.append(block)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=block.buf)
                view[...] = arr
                self._columns[column] = {
                    "name": block.name,
                    "dtype": _dtype_descr(arr.dtype),
                    "shape": tuple(int(s) for s in arr.shape),
                }
        except BaseException:
            self.close(unlink=True)
            raise

    @property
    def descriptor(self) -> Dict[str, Any]:
        """The picklable handle workers attach with — names, dtypes,
        shapes, and the label; never the column data."""
        return {"label": self.label, "columns": dict(self._columns)}

    def close(self, unlink: bool = True) -> None:
        """Release the parent's mapping and (by default) the segments."""
        for block in self._blocks:
            try:
                block.close()
                if unlink:
                    block.unlink()
            except FileNotFoundError:
                pass
        self._blocks = []

    def __enter__(self) -> "SharedTracePublication":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close(unlink=True)


def attach_packed(
    descriptor: Dict[str, Any],
) -> Tuple[PackedTrace, List[shared_memory.SharedMemory]]:
    """Rebuild a :class:`PackedTrace` over shared segments (worker side).

    Returns the trace and the attached blocks; the caller must keep the
    blocks referenced for as long as the trace is used (the arrays alias
    their pages) and ``close()`` them when done.
    """
    blocks: List[shared_memory.SharedMemory] = []
    arrays: Dict[str, np.ndarray] = {}
    try:
        for column in _COLUMNS:
            spec = descriptor["columns"][column]
            block = _attach_block(spec["name"])
            blocks.append(block)
            arrays[column] = np.ndarray(
                tuple(spec["shape"]),
                dtype=_dtype_from_descr(spec["dtype"]),
                buffer=block.buf,
            )
    except BaseException:
        for block in blocks:
            block.close()
        raise
    trace = PackedTrace(
        arrays["timestamps"],
        arrays["offsets"],
        arrays["packages"],
        label=descriptor.get("label", ""),
        validate=False,
    )
    return trace, blocks

"""Streaming trace writer.

The trace collector produces bunches one at a time while a workload runs;
buffering an entire multi-minute trace before writing would double peak
memory.  :class:`TraceWriter` appends bunches incrementally and patches
the header's bunch count on close.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceValidationError
from ..units import NS_PER_S
from .blktrace import MAGIC, VERSION, _BUNCH_HEADER, _HEADER, _PACKAGE_DTYPE
from .record import Bunch

PathLike = Union[str, Path]


class TraceWriter:
    """Incrementally write bunches to a ``.replay`` file.

    Bunch timestamps must be non-decreasing; the writer enforces this so
    a collector bug cannot produce a trace the replayer would reject.

    Usage::

        with TraceWriter("out.replay") as writer:
            writer.append(bunch)
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self._count = 0
        self._last_ts = -1.0
        # Placeholder header; count patched in close().
        self._fh.write(_HEADER.pack(MAGIC, VERSION, 0, 0))

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(abort=exc_type is not None)

    @property
    def count(self) -> int:
        """Bunches written so far."""
        return self._count

    def append(self, bunch: Bunch) -> None:
        """Append one bunch.  Raises on out-of-order timestamps."""
        if bunch.timestamp < self._last_ts:
            raise TraceValidationError(
                f"bunch timestamp {bunch.timestamp} precedes previous "
                f"{self._last_ts}; traces must be time-ordered"
            )
        self._last_ts = bunch.timestamp
        ts_ns = round(bunch.timestamp * NS_PER_S)
        self._fh.write(_BUNCH_HEADER.pack(ts_ns, len(bunch)))
        arr = np.zeros(len(bunch), dtype=_PACKAGE_DTYPE)
        arr["sector"] = [p.sector for p in bunch.packages]
        arr["nbytes"] = [p.nbytes for p in bunch.packages]
        arr["op"] = [p.op for p in bunch.packages]
        self._fh.write(arr.tobytes())
        self._count += 1

    def close(self, abort: bool = False) -> None:
        """Patch the header with the final bunch count and close the file."""
        if self._fh.closed:
            return
        if not abort:
            self._fh.seek(0)
            self._fh.write(_HEADER.pack(MAGIC, VERSION, 0, self._count))
        self._fh.close()

"""Columnar trace representation: the packed fast path.

:class:`PackedTrace` stores a whole trace as three NumPy arrays instead
of nested Python objects:

* ``packages`` — one contiguous structured table, a row per IO_package
  (``sector`` i8, ``nbytes`` i8, ``op`` i1), in bunch order;
* ``offsets`` — CSR-style int64 array of length ``n_bunches + 1``;
  bunch *i* owns rows ``packages[offsets[i]:offsets[i + 1]]``;
* ``timestamps`` — float64 arrival time of each bunch in seconds.

A multi-hundred-MB trace like cello99 becomes a few flat buffers, so the
proportional filter, the time scaler, and the statistics pass run as
vectorised array operations instead of per-object loops.  Conversion to
and from the legacy :class:`~repro.trace.record.Trace` object model is
lossless; the object API remains the compatibility surface and the two
paths are property-tested to produce bit-identical results.

Columns are widened from the on-disk layout (u8/u4/u1) to int64/int64/int8
so that downstream arithmetic — extent sweeps, byte totals, sequentiality
tests — happens in the exact integer types the legacy object path uses.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

from ..errors import TraceValidationError
from .record import Bunch, IOPackage, Trace

#: In-memory columnar package layout (widened from the disk layout).
PACKED_PACKAGE_DTYPE = np.dtype(
    [("sector", "<i8"), ("nbytes", "<i8"), ("op", "i1")]
)


class PackedTrace:
    """An immutable columnar trace.

    Construct via :meth:`from_trace`, :func:`repro.trace.blktrace.loads_packed`,
    or :meth:`repro.trace.reader.TraceReader.read_packed`; build derived
    traces with :meth:`select` / :meth:`with_timestamps` (both vectorised).
    """

    __slots__ = ("timestamps", "offsets", "packages", "label")

    def __init__(
        self,
        timestamps: np.ndarray,
        offsets: np.ndarray,
        packages: np.ndarray,
        label: str = "",
        validate: bool = True,
    ) -> None:
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if packages.dtype != PACKED_PACKAGE_DTYPE:
            widened = np.empty(len(packages), dtype=PACKED_PACKAGE_DTYPE)
            for name in ("sector", "nbytes", "op"):
                widened[name] = packages[name]
            packages = widened
        self.packages = packages
        self.label = label
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = len(self.timestamps)
        if self.offsets.shape != (n + 1,):
            raise TraceValidationError(
                f"offsets must have length n_bunches + 1 = {n + 1}, "
                f"got {self.offsets.shape}"
            )
        if n and self.offsets[0] != 0:
            raise TraceValidationError("offsets must start at 0")
        if len(self.offsets) and self.offsets[-1] != len(self.packages):
            raise TraceValidationError(
                f"offsets end at {self.offsets[-1]} but package table has "
                f"{len(self.packages)} rows"
            )
        sizes = np.diff(self.offsets)
        if np.any(sizes <= 0):
            raise TraceValidationError("a bunch must contain at least one IOPackage")
        if n and (not np.all(np.isfinite(self.timestamps)) or self.timestamps.min() < 0):
            raise TraceValidationError("bunch timestamps must be finite and >= 0")
        if len(self.packages):
            if self.packages["sector"].min() < 0:
                raise TraceValidationError("sector must be >= 0")
            if self.packages["nbytes"].min() <= 0:
                raise TraceValidationError("nbytes must be > 0")
            op = self.packages["op"]
            if np.any((op != 0) & (op != 1)):
                raise TraceValidationError("op must be READ(0) or WRITE(1)")

    # ------------------------------------------------------------------
    # conversion

    @classmethod
    def from_trace(cls, trace: Trace) -> "PackedTrace":
        """Pack a legacy object trace (lossless)."""
        n = len(trace)
        timestamps = np.empty(n, dtype=np.float64)
        offsets = np.empty(n + 1, dtype=np.int64)
        offsets[0] = 0
        total = trace.package_count
        packages = np.empty(total, dtype=PACKED_PACKAGE_DTYPE)
        sector = packages["sector"]
        nbytes = packages["nbytes"]
        op = packages["op"]
        pos = 0
        for i, bunch in enumerate(trace.bunches):
            timestamps[i] = bunch.timestamp
            for pkg in bunch.packages:
                sector[pos] = pkg.sector
                nbytes[pos] = pkg.nbytes
                op[pos] = pkg.op
                pos += 1
            offsets[i + 1] = pos
        return cls(timestamps, offsets, packages, label=trace.label, validate=False)

    def to_trace(self) -> Trace:
        """Unpack into the legacy object model (lossless)."""
        rows = self.packages.tolist()
        offsets = self.offsets.tolist()
        timestamps = self.timestamps.tolist()
        fast_pkg = IOPackage._from_validated
        fast_bunch = Bunch._from_validated
        bunches = [
            fast_bunch(
                timestamps[i],
                tuple(
                    fast_pkg(s, n, o) for s, n, o in rows[offsets[i]:offsets[i + 1]]
                ),
            )
            for i in range(len(timestamps))
        ]
        return Trace(bunches, label=self.label)

    # ------------------------------------------------------------------
    # bulk accessors (mirror Trace's API)

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def package_count(self) -> int:
        return len(self.packages)

    @property
    def nbytes(self) -> int:
        """Total bytes transferred by the whole trace."""
        return int(self.packages["nbytes"].sum()) if len(self.packages) else 0

    @property
    def duration(self) -> float:
        if len(self.timestamps) < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    @property
    def bunch_sizes(self) -> np.ndarray:
        """Packages per bunch (int64, length ``len(self)``)."""
        return np.diff(self.offsets)

    def bunch(self, i: int) -> Bunch:
        """Materialise bunch ``i`` as a legacy object (compat accessor)."""
        i = int(i)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"bunch index {i} out of range")
        o0, o1 = int(self.offsets[i]), int(self.offsets[i + 1])
        fast_pkg = IOPackage._from_validated
        packages = tuple(
            fast_pkg(s, n, o) for s, n, o in self.packages[o0:o1].tolist()
        )
        return Bunch._from_validated(float(self.timestamps[i]), packages)

    def iter_bunches(self) -> Iterator[Bunch]:
        """Iterate legacy bunch objects (compat path; materialises lazily)."""
        for i in range(len(self)):
            yield self.bunch(i)

    def __iter__(self) -> Iterator[Bunch]:
        return self.iter_bunches()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return (
            np.array_equal(self.timestamps, other.timestamps)
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.packages, other.packages)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedTrace(label={self.label!r}, bunches={len(self)}, "
            f"packages={self.package_count}, duration={self.duration:.3f}s)"
        )

    # ------------------------------------------------------------------
    # vectorised derivations

    def select(
        self,
        which: np.ndarray,
        label: Optional[str] = None,
    ) -> "PackedTrace":
        """Return a new trace keeping the bunches marked by ``which``.

        ``which`` is either a boolean mask over bunches or an array of
        bunch indices (must be sorted and unique to preserve order).
        The whole operation is a pair of NumPy gathers — no per-bunch
        Python loop.
        """
        which = np.asarray(which)
        if which.dtype == bool:
            idx = np.flatnonzero(which)
        else:
            idx = which.astype(np.int64, copy=False)
        counts = self.offsets[idx + 1] - self.offsets[idx]
        new_offsets = np.zeros(len(idx) + 1, dtype=np.int64)
        np.cumsum(counts, out=new_offsets[1:])
        total = int(new_offsets[-1])
        # Flat package rows: for each kept bunch, its run of row indices.
        starts = np.repeat(self.offsets[idx] - new_offsets[:-1], counts)
        rows = starts + np.arange(total, dtype=np.int64)
        return PackedTrace(
            self.timestamps[idx],
            new_offsets,
            self.packages[rows],
            label=self.label if label is None else label,
            validate=False,
        )

    def with_timestamps(
        self, timestamps: np.ndarray, label: Optional[str] = None
    ) -> "PackedTrace":
        """Return a copy sharing package data but with new bunch times."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if timestamps.shape != self.timestamps.shape:
            raise TraceValidationError(
                f"timestamp array must have shape {self.timestamps.shape}, "
                f"got {timestamps.shape}"
            )
        if len(timestamps) and (
            not np.all(np.isfinite(timestamps)) or timestamps.min() < 0
        ):
            raise TraceValidationError("bunch timestamps must be finite and >= 0")
        return PackedTrace(
            timestamps,
            self.offsets,
            self.packages,
            label=self.label if label is None else label,
            validate=False,
        )

    def with_label(self, label: str) -> "PackedTrace":
        """Return a copy (sharing all arrays) under a new label."""
        return PackedTrace(
            self.timestamps, self.offsets, self.packages, label=label, validate=False
        )


#: Anything the load-control / replay stack accepts as a trace.
TraceLike = Union[Trace, PackedTrace]


def pack(trace: TraceLike) -> PackedTrace:
    """Coerce to the packed representation (no-op when already packed)."""
    if isinstance(trace, PackedTrace):
        return trace
    return PackedTrace.from_trace(trace)


def unpack(trace: TraceLike) -> Trace:
    """Coerce to the legacy object representation."""
    if isinstance(trace, PackedTrace):
        return trace.to_trace()
    return trace

"""The trace repository.

Section III-A2: "Collected trace files are stored in the trace
repository.  The name of each trace file implies important information
such as storage device type, request size, random rate, and read rate."

:class:`TraceName` encodes/decodes that naming convention;
:class:`TraceRepository` is a directory of ``.replay`` files addressed by
workload mode, with store/load/lookup/list operations used by the
evaluation host and the 125-trace matrix builder.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from ..config import WorkloadMode
from ..errors import RepositoryError
from ..units import KiB
from .blktrace import read_trace, read_trace_packed, write_trace, write_trace_packed
from .packed import PACKED_PACKAGE_DTYPE, PackedTrace, TraceLike
from .record import Trace

PathLike = Union[str, Path]

_NAME_RE = re.compile(
    r"^(?P<device>[a-z0-9-]+)_rs(?P<rs>\d+)_rnd(?P<rnd>\d{1,3})_rd(?P<rd>\d{1,3})"
    r"(?:_(?P<tag>[A-Za-z0-9-]+))?\.replay$"
)


@dataclass(frozen=True)
class TraceName:
    """Encoded trace file name: device type + workload mode (+ tag).

    Example: ``hdd-raid5_rs4096_rnd050_rd000.replay`` is the 4 KiB,
    50 % random, 0 % read trace collected on an HDD RAID-5 array.
    """

    device: str
    request_size: int
    random_ratio: float
    read_ratio: float
    tag: str = ""

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[a-z0-9-]+", self.device):
            raise RepositoryError(
                f"device type must be lowercase alphanumeric/hyphen, got {self.device!r}"
            )
        if self.tag and not re.fullmatch(r"[A-Za-z0-9-]+", self.tag):
            raise RepositoryError(f"invalid tag {self.tag!r}")

    @property
    def filename(self) -> str:
        base = (
            f"{self.device}_rs{self.request_size}"
            f"_rnd{round(self.random_ratio * 100):03d}"
            f"_rd{round(self.read_ratio * 100):03d}"
        )
        if self.tag:
            base += f"_{self.tag}"
        return base + ".replay"

    @classmethod
    def parse(cls, filename: str) -> "TraceName":
        """Decode a repository file name; raises on foreign files."""
        m = _NAME_RE.match(Path(filename).name)
        if m is None:
            raise RepositoryError(f"not a repository trace name: {filename!r}")
        return cls(
            device=m.group("device"),
            request_size=int(m.group("rs")),
            random_ratio=int(m.group("rnd")) / 100.0,
            read_ratio=int(m.group("rd")) / 100.0,
            tag=m.group("tag") or "",
        )

    def matches(self, mode: WorkloadMode) -> bool:
        """True when this name's workload parameters equal ``mode``'s."""
        return (
            self.request_size == mode.request_size
            and abs(self.random_ratio - mode.random_ratio) < 0.005
            and abs(self.read_ratio - mode.read_ratio) < 0.005
        )


#: Members every packed sidecar must carry (checked against the zip
#: directory before handing out a lazy trace — reading the directory
#: touches no column data).
_SIDECAR_KEYS = frozenset({"timestamps", "offsets", "sector", "nbytes", "op"})


class _LazyPackedTrace(PackedTrace):
    """A :class:`PackedTrace` whose columns load on first access.

    ``load_packed`` returns this over an open ``.npz`` sidecar handle:
    the zip directory has been read (cheap), the column payloads have
    not.  Because :class:`PackedTrace` uses ``__slots__``, leaving the
    column slots unset makes the first ``timestamps`` / ``offsets`` /
    ``packages`` read raise into :meth:`__getattr__`, which materialises
    all three and closes the handle — every later access is a plain slot
    load, indistinguishable from an eager trace.  A sweep that looks up
    many repository traces but replays few never parses the unused ones.

    A sidecar that turns out to be truncated or corrupt mid-read falls
    back to re-parsing the authoritative ``.replay`` file.
    """

    __slots__ = ("_npz", "_source")

    def __init__(self, npz, source: Path, label: str) -> None:
        # Deliberately no super().__init__: the column slots stay unset.
        self._npz = npz
        self._source = source
        self.label = label

    def _materialize(self) -> None:
        npz, self._npz = self._npz, None
        try:
            try:
                sector = npz["sector"]
                packages = np.empty(len(sector), dtype=PACKED_PACKAGE_DTYPE)
                packages["sector"] = sector
                packages["nbytes"] = npz["nbytes"]
                packages["op"] = npz["op"]
                timestamps = np.asarray(npz["timestamps"], dtype=np.float64)
                offsets = np.asarray(npz["offsets"], dtype=np.int64)
            except (OSError, ValueError, KeyError):
                rebuilt = read_trace_packed(self._source)
                timestamps = rebuilt.timestamps
                offsets = rebuilt.offsets
                packages = rebuilt.packages
        finally:
            try:
                npz.close()
            except Exception:
                pass
        self.timestamps = timestamps
        self.offsets = offsets
        self.packages = packages

    @property
    def materialized(self) -> bool:
        """Whether the columns have been read from disk yet."""
        return self._npz is None

    def __getattr__(self, name: str):
        if name in ("timestamps", "offsets", "packages"):
            if self._npz is not None:
                self._materialize()
                return getattr(self, name)
        raise AttributeError(name)


class TraceRepository:
    """A directory of named ``.replay`` traces.

    The repository is the hand-off point between the trace collector
    (which stores peak-workload traces) and the replay tool (which loads
    the trace matching a requested workload mode).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, name: TraceName) -> Path:
        return self.root / name.filename

    def packed_cache_path(self, name: TraceName) -> Path:
        """Sidecar holding the columnar arrays of a stored trace."""
        return self.root / (name.filename + ".npz")

    def store(
        self, name: TraceName, trace: TraceLike, overwrite: bool = False
    ) -> Path:
        """Write ``trace`` under ``name``; refuses to clobber by default.

        Accepts either representation.  Any stale packed sidecar for the
        name is dropped so :meth:`load_packed` never serves old data.
        """
        path = self.path_for(name)
        if path.exists() and not overwrite:
            raise RepositoryError(f"trace already in repository: {path.name}")
        if isinstance(trace, PackedTrace):
            write_trace_packed(trace, path)
        else:
            write_trace(trace, path)
        cache = self.packed_cache_path(name)
        if cache.exists():
            cache.unlink()
        return path

    def load(self, name: TraceName) -> Trace:
        """Load the trace stored under ``name``."""
        path = self.path_for(name)
        if not path.exists():
            raise RepositoryError(f"trace not in repository: {path.name}")
        return read_trace(path)

    def load_packed(self, name: TraceName) -> PackedTrace:
        """Load the trace under ``name`` as a :class:`PackedTrace`.

        The columnar arrays are cached on disk in an ``.npz`` sidecar
        next to the ``.replay`` file, so repeated sweeps over the same
        repository skip even the (already cheap) binary parse.  The
        sidecar is rebuilt whenever it is missing or older than its
        trace file.

        A cache hit is *lazy*: the sidecar is opened (``mmap_mode="r"``,
        which on an ``.npz`` archive means only the zip directory is
        read) and the returned trace defers column materialisation to
        the first ``timestamps`` / ``offsets`` / ``packages`` access —
        loading a repository of traces to pick one costs a stat and a
        directory read per trace, not a full parse.
        """
        path = self.path_for(name)
        if not path.exists():
            raise RepositoryError(f"trace not in repository: {path.name}")
        cache = self.packed_cache_path(name)
        if cache.exists() and cache.stat().st_mtime >= path.stat().st_mtime:
            try:
                data = np.load(cache, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError):
                # Corrupt or foreign sidecar: fall through and rebuild.
                pass
            else:
                if _SIDECAR_KEYS.issubset(data.files):
                    return _LazyPackedTrace(data, path, label=path.stem)
                data.close()
        packed = read_trace_packed(path)
        tmp = cache.with_suffix(".tmp.npz")
        np.savez(
            tmp,
            timestamps=packed.timestamps,
            offsets=packed.offsets,
            sector=packed.packages["sector"],
            nbytes=packed.packages["nbytes"],
            op=packed.packages["op"],
        )
        tmp.replace(cache)
        return packed

    def __contains__(self, name: TraceName) -> bool:
        return self.path_for(name).exists()

    def names(self) -> Iterator[TraceName]:
        """Iterate all decodable trace names in the repository."""
        for path in sorted(self.root.glob("*.replay")):
            try:
                yield TraceName.parse(path.name)
            except RepositoryError:
                continue

    def find(
        self,
        device: Optional[str] = None,
        mode: Optional[WorkloadMode] = None,
    ) -> List[TraceName]:
        """Find names by device type and/or workload mode."""
        out = []
        for name in self.names():
            if device is not None and name.device != device:
                continue
            if mode is not None and not name.matches(mode):
                continue
            out.append(name)
        return out

    def lookup(self, device: str, mode: WorkloadMode) -> TraceName:
        """Return the unique trace for (device, mode); raise otherwise."""
        matches = self.find(device=device, mode=mode)
        if not matches:
            raise RepositoryError(
                f"no trace for device={device!r} "
                f"rs={mode.request_size} rnd={mode.random_ratio} rd={mode.read_ratio}"
            )
        if len(matches) > 1:
            raise RepositoryError(
                f"ambiguous: {len(matches)} traces match device={device!r} mode"
            )
        return matches[0]

    def __len__(self) -> int:
        return sum(1 for _ in self.names())

"""In-memory trace records: IO_package, bunch, trace.

Mirrors the file structure of a blktrace ``.replay`` file (paper Fig. 4):

* an :class:`IOPackage` is one block I/O request — starting sector,
  length in bytes, and operation type;
* a :class:`Bunch` is a set of concurrent IO_packages plus the arrival
  timestamp of the bunch;
* a :class:`Trace` is the ordered sequence of bunches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence

from ..errors import TraceValidationError
from ..units import SECTOR_BYTES

READ = 0
"""Operation code for a read request."""

WRITE = 1
"""Operation code for a write request."""

_OP_NAMES = {READ: "R", WRITE: "W"}


@dataclass(frozen=True)
class IOPackage:
    """One block-level I/O request.

    Parameters
    ----------
    sector:
        Starting sector (512-byte units), absolute on the target device.
    nbytes:
        Request length in bytes.  blktrace stores byte lengths even
        though addressing is in sectors.
    op:
        :data:`READ` or :data:`WRITE`.
    """

    sector: int
    nbytes: int
    op: int

    def __post_init__(self) -> None:
        if self.sector < 0:
            raise TraceValidationError(f"sector must be >= 0, got {self.sector}")
        if self.nbytes <= 0:
            raise TraceValidationError(f"nbytes must be > 0, got {self.nbytes}")
        if self.op not in (READ, WRITE):
            raise TraceValidationError(f"op must be READ(0) or WRITE(1), got {self.op}")

    @classmethod
    def _from_validated(cls, sector: int, nbytes: int, op: int) -> "IOPackage":
        """Build a package from already-validated fields, skipping checks.

        The packed fast path validates whole columns vectorised; paying
        ``__post_init__`` again per element would dominate dispatch.
        """
        pkg = object.__new__(cls)
        object.__setattr__(pkg, "sector", sector)
        object.__setattr__(pkg, "nbytes", nbytes)
        object.__setattr__(pkg, "op", op)
        return pkg

    @property
    def is_read(self) -> bool:
        return self.op == READ

    @property
    def is_write(self) -> bool:
        return self.op == WRITE

    @property
    def sectors(self) -> int:
        """Number of whole sectors this request touches."""
        return -(-self.nbytes // SECTOR_BYTES)

    @property
    def end_sector(self) -> int:
        """First sector *after* this request (exclusive end)."""
        return self.sector + self.sectors

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{_OP_NAMES[self.op]}@{self.sector}+{self.nbytes}B"


@dataclass(frozen=True)
class Bunch:
    """A timestamped group of concurrent IO_packages.

    ``timestamp`` is the arrival time in seconds relative to the start of
    the trace.  All packages in a bunch are issued simultaneously during
    replay ("Concurrent I/O requests in a selected bunch must be replayed
    in parallel", Section IV-A).
    """

    timestamp: float
    packages: tuple

    def __init__(self, timestamp: float, packages: Iterable[IOPackage]) -> None:
        object.__setattr__(self, "timestamp", float(timestamp))
        object.__setattr__(self, "packages", tuple(packages))
        if self.timestamp < 0:
            raise TraceValidationError(
                f"bunch timestamp must be >= 0, got {self.timestamp}"
            )
        if not self.packages:
            raise TraceValidationError("a bunch must contain at least one IOPackage")

    @classmethod
    def _from_validated(cls, timestamp: float, packages: tuple) -> "Bunch":
        """Build a bunch from already-validated parts, skipping checks."""
        bunch = object.__new__(cls)
        object.__setattr__(bunch, "timestamp", timestamp)
        object.__setattr__(bunch, "packages", packages)
        return bunch

    def __len__(self) -> int:
        return len(self.packages)

    def __iter__(self) -> Iterator[IOPackage]:
        return iter(self.packages)

    @property
    def nbytes(self) -> int:
        """Total bytes across all packages in the bunch."""
        return sum(pkg.nbytes for pkg in self.packages)

    @property
    def read_count(self) -> int:
        return sum(1 for pkg in self.packages if pkg.is_read)

    def shifted(self, delta: float) -> "Bunch":
        """Return a copy with the timestamp moved by ``delta`` seconds."""
        return Bunch(self.timestamp + delta, self.packages)

    def scaled(self, factor: float) -> "Bunch":
        """Return a copy with the timestamp multiplied by ``factor``."""
        return Bunch(self.timestamp * factor, self.packages)


class Trace:
    """An ordered sequence of bunches, with bulk accessors.

    The constructor does *not* sort; callers own ordering.  Use
    :func:`repro.trace.validate.validate_trace` to check monotonicity.
    """

    __slots__ = ("bunches", "label")

    def __init__(self, bunches: Iterable[Bunch], label: str = "") -> None:
        self.bunches: List[Bunch] = list(bunches)
        self.label = label

    def __len__(self) -> int:
        return len(self.bunches)

    def __iter__(self) -> Iterator[Bunch]:
        return iter(self.bunches)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Trace(self.bunches[idx], label=self.label)
        return self.bunches[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.bunches == other.bunches

    @property
    def package_count(self) -> int:
        """Total number of IO_packages across all bunches."""
        return sum(len(b) for b in self.bunches)

    @property
    def nbytes(self) -> int:
        """Total bytes transferred by the whole trace."""
        return sum(b.nbytes for b in self.bunches)

    @property
    def duration(self) -> float:
        """Timestamp of the last bunch minus the first (0 for <2 bunches)."""
        if len(self.bunches) < 2:
            return 0.0
        return self.bunches[-1].timestamp - self.bunches[0].timestamp

    def packages(self) -> Iterator[IOPackage]:
        """Iterate over every IO_package in bunch order."""
        for bunch in self.bunches:
            yield from bunch.packages

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(label={self.label!r}, bunches={len(self.bunches)}, "
            f"packages={self.package_count}, duration={self.duration:.3f}s)"
        )

"""Streaming trace reader.

For the multi-hundred-MB real-world traces (cello99 spans days), loading
the whole file is wasteful when a consumer — e.g. the proportional filter
— walks the trace once.  :class:`TraceReader` yields bunches lazily from
disk with constant memory, or bulk-loads the whole file into the
columnar :class:`~repro.trace.packed.PackedTrace` fast path without
materialising any per-package objects.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Union

import numpy as np

from ..errors import TraceFormatError, TraceValidationError
from ..units import NS_PER_S
from .blktrace import (
    MAGIC,
    VERSION,
    _BUNCH_HEADER,
    _HEADER,
    _PACKAGE_DTYPE,
    _parse_packed_body,
)
from .packed import PackedTrace
from .record import Bunch, IOPackage

PathLike = Union[str, Path]


class TraceReader:
    """Iterate bunches of a ``.replay`` file without loading it whole.

    Usable as a context manager and as an iterable::

        with TraceReader("web.replay") as reader:
            for bunch in reader:
                ...

    A reader is single-pass: the file offset is tracked across reads, and
    starting a second (or resuming a partially consumed) iteration raises
    :class:`~repro.errors.TraceFormatError` instead of silently yielding
    garbage from a mid-stream position — reopen the file to re-read it.

    Attributes
    ----------
    bunch_count:
        Declared number of bunches from the file header.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        try:
            raw = self._fh.read(_HEADER.size)
            if len(raw) < _HEADER.size:
                raise TraceFormatError("truncated trace header", offset=0)
            magic, version, _flags, bunch_count = _HEADER.unpack(raw)
            if magic != MAGIC:
                raise TraceFormatError(f"bad magic {magic!r}", offset=0)
            if version != VERSION:
                raise TraceFormatError(f"unsupported trace version {version}")
            self.bunch_count = bunch_count
        except Exception:
            self._fh.close()
            raise
        self._read = 0
        self._offset = _HEADER.size
        self._iterating = False

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __iter__(self) -> Iterator[Bunch]:
        # Guard eagerly (not inside the generator, which would defer the
        # check to the first next() call).
        if self._read > 0 or self._iterating:
            raise TraceFormatError(
                f"{self.path.name}: reader already consumed "
                f"{self._read}/{self.bunch_count} bunches; a resumed or "
                "repeated iteration would start mid-stream — reopen the file",
                offset=self._offset,
            )
        self._iterating = True
        return self._iter_bunches()

    def _iter_bunches(self) -> Iterator[Bunch]:
        while self._read < self.bunch_count:
            yield self._next_bunch()

    def _next_bunch(self) -> Bunch:
        offset = self._fh.tell()
        if offset != self._offset:
            raise TraceFormatError(
                f"file position {offset} is not at the expected bunch "
                f"boundary {self._offset}; stream was moved externally",
                offset=offset,
            )
        raw = self._fh.read(_BUNCH_HEADER.size)
        if len(raw) < _BUNCH_HEADER.size:
            raise TraceFormatError("truncated bunch header", offset=offset)
        ts_ns, npackages = _BUNCH_HEADER.unpack(raw)
        if npackages == 0:
            raise TraceFormatError("bunch with zero packages", offset=offset)
        nbytes = npackages * _PACKAGE_DTYPE.itemsize
        raw = self._fh.read(nbytes)
        if len(raw) < nbytes:
            raise TraceFormatError("truncated package array", offset=offset)
        arr = np.frombuffer(raw, dtype=_PACKAGE_DTYPE)
        try:
            packages = [
                IOPackage(int(s), int(n), int(o))
                for s, n, o in zip(arr["sector"], arr["nbytes"], arr["op"])
            ]
            bunch = Bunch(ts_ns / NS_PER_S, packages)
        except TraceValidationError as exc:
            raise TraceFormatError(
                f"invalid package fields: {exc}", offset=offset
            ) from exc
        self._read += 1
        self._offset = offset + _BUNCH_HEADER.size + nbytes
        return bunch

    def read_packed(self) -> PackedTrace:
        """Bulk-load the remainder of the file as a :class:`PackedTrace`.

        This is the fast path: one read, one vectorised parse, zero
        IOPackage/Bunch objects.  Only valid on a fresh reader (the
        packed parse needs the whole body); consumes the reader.
        """
        if self._read > 0 or self._iterating:
            raise TraceFormatError(
                f"{self.path.name}: cannot bulk-load after streaming "
                f"{self._read} bunches; reopen the file",
                offset=self._offset,
            )
        self._iterating = True
        body = self._fh.read()
        packed = _parse_packed_body(body, self.bunch_count, base_offset=0)
        packed.label = self.path.stem
        self._read = self.bunch_count
        self._offset += len(body)
        return packed

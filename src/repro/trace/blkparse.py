"""Importer for blkparse ASCII output (the `blktrace` toolchain).

Real-world users collect traces with Linux ``blktrace`` and render them
with ``blkparse``; the default per-event line looks like::

    8,0    3      102     0.000481superfluous  1234  D   W 816 + 8 [kworker/3:1]

i.e. ``maj,min cpu seq timestamp pid action rwbs sector + nsectors
[process]``.  This module parses that layout, keeps one *action* class
(``Q`` queued / ``D`` dispatched / ``C`` completed — dispatch by
default, matching what btreplay replays), and folds events into the
bunch structure of :class:`~repro.trace.record.Trace`.

Only R/W data events are kept: discards, flushes, and barrier-only
events carry no replayable payload.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator, Optional, TextIO, Union

from ..errors import TraceFormatError
from ..units import SECTOR_BYTES
from .record import READ, WRITE, Trace
from .srt import SRTRecord, srt_to_trace

PathLike = Union[str, Path]

_LINE_RE = re.compile(
    r"^\s*(?P<maj>\d+),(?P<min>\d+)"
    r"\s+(?P<cpu>\d+)"
    r"\s+(?P<seq>\d+)"
    r"\s+(?P<time>\d+\.\d+)"
    r"\s+(?P<pid>\d+)"
    r"\s+(?P<action>[A-Z])"
    r"\s+(?P<rwbs>[A-Z]+)"
    r"\s+(?P<sector>\d+)\s*\+\s*(?P<count>\d+)"
    r"(?:\s+\[(?P<proc>[^\]]*)\])?\s*$"
)


def parse_blkparse_line(line: str, lineno: int = 0) -> Optional[SRTRecord]:
    """Parse one blkparse event line into an SRT-style record.

    Returns ``None`` for structurally valid lines that carry nothing
    replayable (zero-length transfers, non-R/W rwbs flags).  Raises
    :class:`TraceFormatError` for lines that do not match the format at
    all.
    """
    m = _LINE_RE.match(line)
    if m is None:
        raise TraceFormatError(
            f"blkparse line {lineno}: unrecognised event: {line!r}"
        )
    rwbs = m.group("rwbs")
    if "R" in rwbs and "W" not in rwbs:
        op = READ
    elif "W" in rwbs:
        op = WRITE
    else:
        return None  # discard/flush/barrier-only event
    count = int(m.group("count"))
    if count == 0:
        return None
    device = (int(m.group("maj")) << 20) | int(m.group("min"))
    return SRTRecord(
        timestamp=float(m.group("time")),
        device=device,
        offset_bytes=int(m.group("sector")) * SECTOR_BYTES,
        length_bytes=count * SECTOR_BYTES,
        op=op,
    )


def parse_blkparse(
    source: Union[TextIO, Iterable[str]],
    action: str = "D",
    strict: bool = False,
) -> Iterator[SRTRecord]:
    """Stream records of one action class from blkparse text.

    Parameters
    ----------
    action:
        Which event class to keep: ``Q`` (queued), ``D`` (dispatched,
        default — btreplay's convention) or ``C`` (completed).
    strict:
        When False (default), lines that don't look like event lines
        (blkparse summaries, per-CPU headers, blank lines) are skipped;
        when True, they raise.
    """
    if action not in ("Q", "D", "C", "I", "M"):
        raise TraceFormatError(f"unsupported blkparse action {action!r}")
    for lineno, line in enumerate(source, start=1):
        stripped = line.rstrip("\n")
        if not stripped.strip():
            continue
        m = _LINE_RE.match(stripped)
        if m is None:
            if strict:
                raise TraceFormatError(
                    f"blkparse line {lineno}: unrecognised event: {stripped!r}"
                )
            continue
        if m.group("action") != action:
            continue
        record = parse_blkparse_line(stripped, lineno)
        if record is not None:
            yield record


def blkparse_to_trace(
    source: Union[TextIO, Iterable[str]],
    action: str = "D",
    device: Optional[int] = None,
    bunch_window: float = 0.001,
    label: str = "",
) -> Trace:
    """Convert blkparse text into a replayable :class:`Trace`.

    Events are folded into bunches with the same coalescing window the
    collector uses; out-of-order timestamps (blkparse merges per-CPU
    streams) are sorted first.
    """
    records = sorted(
        parse_blkparse(source, action=action), key=lambda r: r.timestamp
    )
    return srt_to_trace(
        iter(records), device=device, bunch_window=bunch_window, label=label
    )


def convert_blkparse_file(
    src: PathLike,
    dst: PathLike,
    action: str = "D",
    device: Optional[int] = None,
    bunch_window: float = 0.001,
) -> Trace:
    """File-to-file transformer: blkparse text → ``.replay``."""
    from .blktrace import write_trace

    src = Path(src)
    with open(src, "r") as fh:
        trace = blkparse_to_trace(
            fh,
            action=action,
            device=device,
            bunch_window=bunch_window,
            label=src.stem,
        )
    write_trace(trace, dst)
    return trace

"""Semantic trace validation.

The binary codec guarantees structural integrity; this module checks the
invariants the replayer relies on: time-ordered bunches, non-empty
bunches, and (optionally) requests inside a device's addressable range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import TraceValidationError
from .record import Trace


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a validation pass."""

    ok: bool
    issues: tuple

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise TraceValidationError("; ".join(self.issues))


def validate_trace(
    trace: Trace,
    capacity_sectors: Optional[int] = None,
    strict: bool = True,
) -> ValidationReport:
    """Validate ``trace``.

    Parameters
    ----------
    capacity_sectors:
        When given, every request must end at or before this sector
        (the target device's capacity).
    strict:
        When True, raise :class:`TraceValidationError` on the first
        category of failure instead of returning a report.
    """
    issues: List[str] = []

    last_ts = -1.0
    out_of_order = 0
    for i, bunch in enumerate(trace):
        if bunch.timestamp < last_ts:
            out_of_order += 1
        last_ts = max(last_ts, bunch.timestamp)
    if out_of_order:
        issues.append(f"{out_of_order} bunches with decreasing timestamps")

    if capacity_sectors is not None:
        overflow = sum(
            1 for pkg in trace.packages() if pkg.end_sector > capacity_sectors
        )
        if overflow:
            issues.append(
                f"{overflow} packages exceed device capacity of "
                f"{capacity_sectors} sectors"
            )

    if len(trace) == 0:
        issues.append("trace contains no bunches")

    report = ValidationReport(ok=not issues, issues=tuple(issues))
    if strict:
        report.raise_if_failed()
    return report

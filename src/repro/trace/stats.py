"""Trace statistics (the quantities of the paper's Table III).

``compute_stats`` summarises a trace into the characteristics the paper
reports for the FIU web-server trace — dataset size, read ratio, average
request size — plus the extra distributional facts the workload
synthesisers are calibrated against (randomness, bunch fan-out,
inter-arrival behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Iterable

import numpy as np

from ..units import GiB, KiB
from .packed import PackedTrace, TraceLike
from .record import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace.

    Attributes mirror Table III where applicable:

    * ``dataset_bytes`` — bytes of *unique* device area touched (the
      paper's "DataSet (GB)").
    * ``read_ratio`` — fraction of packages that are reads.
    * ``mean_request_bytes`` — the paper's "Average Req_size (KB)".
    """

    bunch_count: int
    package_count: int
    total_bytes: int
    dataset_bytes: int
    read_ratio: float
    mean_request_bytes: float
    max_request_bytes: int
    min_request_bytes: int
    duration: float
    random_ratio: float
    mean_bunch_size: float
    mean_interarrival: float
    iops: float
    mbps: float

    @property
    def dataset_gib(self) -> float:
        return self.dataset_bytes / GiB

    @property
    def mean_request_kib(self) -> float:
        return self.mean_request_bytes / KiB

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)


def _unique_extent_bytes(starts: np.ndarray, ends: np.ndarray) -> int:
    """Total sectors covered by the union of [start, end) intervals."""
    if len(starts) == 0:
        return 0
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    ends = ends[order]
    # Sweep the sorted intervals, merging overlaps.
    total = 0
    cur_start = int(starts[0])
    cur_end = int(ends[0])
    for s, e in zip(starts[1:], ends[1:]):
        s = int(s)
        e = int(e)
        if s > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = s, e
        elif e > cur_end:
            cur_end = e
    total += cur_end - cur_start
    return total * 512


def compute_stats(trace: TraceLike) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``.

    Randomness is estimated as the fraction of packages (in issue order)
    that do *not* start at the previous package's end sector — the same
    notion IOmeter's random ratio controls.

    Accepts both representations; a :class:`PackedTrace` skips the
    object walk entirely (its columns *are* the working arrays), with
    bit-identical results.
    """
    if isinstance(trace, PackedTrace):
        n_bunches = len(trace)
        sec = trace.packages["sector"]
        size = trace.packages["nbytes"]
        op = trace.packages["op"]
        ts = trace.timestamps
        bunch_sizes = trace.bunch_sizes
    else:
        sectors = []
        nbytes = []
        ops = []
        sizes_list = []
        timestamps = []
        for bunch in trace:
            sizes_list.append(len(bunch))
            timestamps.append(bunch.timestamp)
            for pkg in bunch.packages:
                sectors.append(pkg.sector)
                nbytes.append(pkg.nbytes)
                ops.append(pkg.op)
        n_bunches = len(trace)
        sec = np.asarray(sectors, dtype=np.int64)
        size = np.asarray(nbytes, dtype=np.int64)
        op = np.asarray(ops, dtype=np.int8)
        ts = np.asarray(timestamps, dtype=np.float64)
        bunch_sizes = np.asarray(sizes_list, dtype=np.int64)
    if len(sec) == 0:
        return TraceStats(
            bunch_count=0,
            package_count=0,
            total_bytes=0,
            dataset_bytes=0,
            read_ratio=0.0,
            mean_request_bytes=0.0,
            max_request_bytes=0,
            min_request_bytes=0,
            duration=0.0,
            random_ratio=0.0,
            mean_bunch_size=0.0,
            mean_interarrival=0.0,
            iops=0.0,
            mbps=0.0,
        )

    size_sectors = -(-size // 512)
    ends = sec + size_sectors
    dataset = _unique_extent_bytes(sec, ends)

    if len(sec) > 1:
        sequential = sec[1:] == ends[:-1]
        random_ratio = 1.0 - (np.count_nonzero(sequential) / (len(sec) - 1))
    else:
        random_ratio = 0.0

    duration = float(ts[-1] - ts[0]) if len(ts) > 1 else 0.0
    interarrivals = np.diff(ts) if len(ts) > 1 else np.array([0.0])
    total_bytes = int(size.sum())
    # Rates over the trace span; a zero-duration trace reports 0 rather
    # than dividing by zero.
    iops = len(sec) / duration if duration > 0 else 0.0
    mbps = (total_bytes / 1e6) / duration if duration > 0 else 0.0

    return TraceStats(
        bunch_count=n_bunches,
        package_count=len(sec),
        total_bytes=total_bytes,
        dataset_bytes=int(dataset),
        read_ratio=float(np.count_nonzero(op == 0) / len(op)),
        mean_request_bytes=float(size.mean()),
        max_request_bytes=int(size.max()),
        min_request_bytes=int(size.min()),
        duration=duration,
        random_ratio=float(random_ratio),
        mean_bunch_size=float(np.mean(bunch_sizes)),
        mean_interarrival=float(interarrivals.mean()),
        iops=iops,
        mbps=mbps,
    )

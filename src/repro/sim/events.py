"""Event records for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, priority, sequence)``: ties in time break on the
    caller-supplied priority (lower runs first), then on insertion order,
    which keeps the engine fully deterministic.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Cancellation is O(1); the calendar lazily discards cancelled
        entries instead of re-heapifying.
        """
        self.cancelled = True

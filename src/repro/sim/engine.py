"""The discrete-event simulation engine.

A minimal but complete event-calendar simulator: a binary heap of
:class:`~repro.sim.events.Event` entries, a monotone clock, and run-until
loops.  All storage, power, and replay components in this package are
written against this engine; nothing in the simulation path touches wall
clocks or threads, which is what makes runs reproducible.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Any, Callable, Iterable, List, Optional, Sequence

from ..errors import SimulationError
from .events import Event

#: Instrumented stepping samples callback wall time once per this many
#: events — cheap enough to leave on, frequent enough to be meaningful.
_PROFILE_SAMPLE_EVERY = 64


class Simulator:
    """Deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._calendar: list[Event] = []
        self._sequence = 0
        self._processed = 0
        # Telemetry is a construction-time gate: when disabled (the
        # default) the class-level ``step`` runs and nothing below
        # exists, so the event loop is byte-for-byte the seed hot path.
        from ..telemetry import get_registry

        reg = get_registry()
        if reg.enabled:
            self._tele_events = reg.counter("sim.events")
            self._tele_callback = reg.timer("sim.callback_seconds")
            self._tele_now = reg.gauge("sim.now")
            self.step = self._step_instrumented  # type: ignore[method-assign]

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._calendar)

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling *at* the current time is allowed (the event runs within
        the current run loop); scheduling into the past is an error.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            args=args,
        )
        self._sequence += 1
        heapq.heappush(self._calendar, event)
        return event

    def schedule_batch(
        self,
        times: Iterable[float],
        callback: Callable[..., Any],
        args_seq: Optional[Iterable[tuple]] = None,
        priority: int = 0,
    ) -> List[Event]:
        """Schedule ``callback(*args)`` at each of ``times`` in one shot.

        The calendar is extended and re-heapified **once** — O(n + m)
        instead of the O(m log(n + m)) of ``m`` individual pushes — which
        is what makes replaying a multi-hundred-thousand-bunch trace
        cheap to set up.  Ordering semantics are identical to equivalent
        :meth:`schedule` calls made in iteration order (sequence numbers
        are assigned in order, so time/priority ties still resolve
        deterministically).

        Parameters
        ----------
        times:
            Absolute simulated times (any iterable of floats, e.g. a
            NumPy array).  All must be ``>= now``; nothing is scheduled
            if any time is invalid.
        args_seq:
            Optional per-event argument tuples, same length as ``times``;
            omitted means every callback fires with no arguments.
        """
        time_list = [float(t) for t in times]
        if args_seq is None:
            args_list: Sequence[tuple] = [()] * len(time_list)
        else:
            args_list = list(args_seq)
            if len(args_list) != len(time_list):
                raise SimulationError(
                    f"schedule_batch: {len(time_list)} times but "
                    f"{len(args_list)} argument tuples"
                )
        if time_list and min(time_list) < self._now:
            raise SimulationError(
                f"cannot schedule event at t={min(time_list)} before "
                f"current time t={self._now}"
            )
        events = []
        seq = self._sequence
        for t, args in zip(time_list, args_list):
            events.append(
                Event(
                    time=t,
                    priority=priority,
                    sequence=seq,
                    callback=callback,
                    args=args,
                )
            )
            seq += 1
        self._sequence = seq
        self._calendar.extend(events)
        heapq.heapify(self._calendar)
        return events

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback, *args, priority=priority)

    def _pop(self) -> Optional[Event]:
        while self._calendar:
            event = heapq.heappop(self._calendar)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the calendar is empty."""
        event = self._pop()
        if event is None:
            return False
        self._now = event.time
        event.callback(*event.args)
        self._processed += 1
        return True

    def _step_instrumented(self) -> bool:
        """Telemetry variant of :meth:`step`.

        Installed as an instance attribute when the simulator is built
        with telemetry enabled.  All instrument updates happen on the
        deterministic ``_PROFILE_SAMPLE_EVERY`` stride — the off-stride
        path adds only an increment and a modulo to the seed loop, which
        is what keeps the enabled engine within the overhead budget.
        The ``sim.events`` counter advances by the stride per sample, so
        it reads as the processed count rounded down to the stride (the
        exact count stays available as :attr:`events_processed`).
        """
        event = self._pop()
        if event is None:
            return False
        self._now = event.time
        self._processed += 1
        if self._processed % _PROFILE_SAMPLE_EVERY == 0:
            self._tele_events.inc(_PROFILE_SAMPLE_EVERY)
            self._tele_now.set(self._now)
            t0 = _time.perf_counter()
            event.callback(*event.args)
            self._tele_callback.add(
                (_time.perf_counter() - t0) * _PROFILE_SAMPLE_EVERY,
                calls=_PROFILE_SAMPLE_EVERY,
            )
        else:
            event.callback(*event.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the calendar drains.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock
            is then advanced *to* ``until`` (so a monitor sampling at 1 Hz
            and a run ``until=60`` leaves ``now == 60``).
        max_events:
            Safety valve for tests; at most this many events execute —
            the run raises :class:`SimulationError` the moment one more
            would, which catches accidental event storms.
        """
        executed = 0
        while self._calendar:
            nxt = self._calendar[0]
            if nxt.cancelled:
                heapq.heappop(self._calendar)
                continue
            if until is not None and nxt.time > until:
                break
            if max_events is not None and executed >= max_events:
                # Runaway loops are exactly what the flight recorder
                # exists for: capture the tail before raising.
                from ..telemetry.flightrec import autodump, get_flight_recorder

                get_flight_recorder().record(
                    "sim.runaway", self._now,
                    max_events=max_events, pending=len(self._calendar),
                )
                autodump("sim_runaway")
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway event loop?"
                )
            if not self.step():
                break
            executed += 1
        if until is not None and until > self._now:
            self._now = float(until)

    def advance_to(self, time: float) -> None:
        """Advance the clock with no events (idle-period measurement)."""
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self.run(until=time)

"""The discrete-event simulation engine.

A minimal but complete event-calendar simulator: a binary heap of
:class:`~repro.sim.events.Event` entries, a monotone clock, and run-until
loops.  All storage, power, and replay components in this package are
written against this engine; nothing in the simulation path touches wall
clocks or threads, which is what makes runs reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .events import Event


class Simulator:
    """Deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._calendar: list[Event] = []
        self._sequence = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._calendar)

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling *at* the current time is allowed (the event runs within
        the current run loop); scheduling into the past is an error.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            args=args,
        )
        self._sequence += 1
        heapq.heappush(self._calendar, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback, *args, priority=priority)

    def _pop(self) -> Optional[Event]:
        while self._calendar:
            event = heapq.heappop(self._calendar)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the calendar is empty."""
        event = self._pop()
        if event is None:
            return False
        self._now = event.time
        event.callback(*event.args)
        self._processed += 1
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the calendar drains.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock
            is then advanced *to* ``until`` (so a monitor sampling at 1 Hz
            and a run ``until=60`` leaves ``now == 60``).
        max_events:
            Safety valve for tests; raises :class:`SimulationError` if
            exceeded, which catches accidental event storms.
        """
        executed = 0
        while self._calendar:
            nxt = self._calendar[0]
            if nxt.cancelled:
                heapq.heappop(self._calendar)
                continue
            if until is not None and nxt.time > until:
                break
            if not self.step():
                break
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway event loop?"
                )
        if until is not None and until > self._now:
            self._now = float(until)

    def advance_to(self, time: float) -> None:
        """Advance the clock with no events (idle-period measurement)."""
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self.run(until=time)

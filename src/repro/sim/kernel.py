"""Analytical (closed-form) replay kernel.

The event-driven replay path costs one heap pop per bunch dispatch plus
one per completion — for a 100k-bunch packed trace that is hundreds of
thousands of Python callbacks even though the *math* of a fault-free
FCFS replay is a handful of recurrences.  This module computes an entire
qualifying replay in bulk over the :class:`~repro.trace.packed.PackedTrace`
CSR arrays:

* bunch dispatch times (vectorised rebase, identical to
  :meth:`ReplayEngine.start`),
* the array controller's link-serialisation chain
  (``dispatch = max(arrival, link_busy) + overhead``),
* RAID-0/5/JBOD chunk expansion in closed form (bit-for-bit the
  :class:`~repro.storage.raid.RaidGeometry` loop),
* per-device FCFS queue waits via a segmented Lindley recurrence
  (``finish_k = max(submit_k, finish_{k-1}) + service_k``),
* per-request service times and Watts from each device model's
  vectorised ``service_times`` mirror,
* and the sampled outputs — :class:`~repro.replay.monitor.PerfSample`
  series, :class:`~repro.power.analyzer.PowerAnalyzer` windows, latency
  histograms, and :class:`~repro.telemetry.stream.IntervalFrame` series.

**Bit-identity is the contract.**  Every floating-point expression here
is ordered exactly as the event path orders it: seeded ``np.cumsum``
chains reproduce left-to-right scalar addition, ``np.maximum`` is a
selection (exact), window sums re-run the monitor's Python-float
accumulation over ``.tolist()`` slices, and the power analyzer /
interval recorder are fed through their *real* implementations after
the device timelines are committed.  Anything the closed form cannot
reproduce exactly — unsorted dispatch times, tied flight completions,
out-of-range requests (the event path raises mid-run), pathological
sampling cycles — raises :class:`_Fallback` *before any state is
mutated* and the caller falls back to the event engine.

The public entry point is :func:`try_kernel_replay`; qualification rules
are documented in ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import StorageIOError
from ..power.analyzer import PowerAnalyzer
from ..power.states import PowerState
from ..replay.monitor import PerfSample
from ..storage.array import DiskArray
from ..storage.base import QueuedDevice, StorageDevice
from ..storage.hdd import HardDiskDrive
from ..storage.queueing import FIFOQueue
from ..storage.raid import FlightExpansion, RaidLevel, expand_flights
from ..storage.ssd import SolidStateDrive
from ..trace.packed import PackedTrace
from ..trace.record import READ
from ..units import SECTOR_BYTES
from .engine import Simulator

#: Segmented-solver refinement passes before falling back to the exact
#: scalar loop (each pass only ever *adds* idle-start heads, so ten
#: passes resolve all but adversarial arrival patterns).
_MAX_PASSES = 10

#: Two-phase RMW barrier fixpoint passes.  Each pass propagates one more
#: level of the pre-read -> parity-write dependency chain, so congested
#: write queues need more passes than the segmented refinements above
#: (a saturated 600-package stripe mix takes ~11); the fixpoint itself
#: is unique, so the cap only decides fuse-vs-fallback, never the
#: numbers.
_MAX_RMW_PASSES = 32

#: Sampling-window count cap: beyond this the closed-form window walk
#: costs more than the event path saves.
_MAX_WINDOWS = 2_000_000

_NEG_INF = float("-inf")


class _Fallback(Exception):
    """The configuration (or computed schedule) needs the event engine."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Exact FCFS queue solver (Lindley recurrence)
# ---------------------------------------------------------------------------


def _lindley_scalar(submit: np.ndarray, sv: np.ndarray, prev: float) -> np.ndarray:
    """Reference solver: the event path's arithmetic, request by request."""
    out = np.empty(submit.size, dtype=np.float64)
    cur = prev
    for i, (t, s) in enumerate(zip(submit.tolist(), sv.tolist())):
        start = t if t > cur else cur
        cur = start + s
        out[i] = cur
    return out


def _eval_lindley_segments_loop(
    submit: np.ndarray, sv: np.ndarray, heads: np.ndarray, prev: float
) -> np.ndarray:
    """Per-segment reference evaluation (sequential over busy runs).

    Each segment [a, b) is a busy run: its first request starts at
    ``max(submit[a], previous finish)`` (exact selection) and the rest
    chain by seeded cumulative sum — the same left-to-right additions
    the scalar loop performs.
    """
    n = submit.size
    f = np.empty(n, dtype=np.float64)
    cur = prev
    bounds = np.append(heads, n)
    for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
        sa = submit[a]
        seed = sa if sa > cur else cur
        f[a:b] = np.cumsum(np.concatenate(([seed], sv[a:b])))[1:]
        cur = float(f[b - 1])
    return f


#: Offset-sweep eligibility: below this many segments the per-segment
#: loop's overhead is negligible, so the sweep machinery isn't worth it.
_SWEEP_MIN_SEGMENTS = 256

#: Segments longer than this are evaluated with one seeded cumsum each
#: (a handful of numpy calls) instead of joining the offset sweep, which
#: would otherwise pay one sweep step per element of the longest run.
_SWEEP_MAX_LEN = 64

#: Seed-repair waves before falling back to the sequential loop.  Each
#: wave finalises at least one more segment of every chain of busy runs
#: that merge (a head whose submit lands inside the previous run), so
#: only adversarially long merge chains hit the cap.
_MAX_SWEEP_WAVES = 40


def _eval_lindley_segments(
    submit: np.ndarray, sv: np.ndarray, heads: np.ndarray, prev: float
) -> np.ndarray:
    """Evaluate finish times given idle-start positions ``heads``.

    Lightly loaded schedules split into tens of thousands of short busy
    runs; evaluating them one Python-loop iteration apiece dominates the
    solver.  Instead, sweep *by offset within segment*: seed every
    segment at its own ``submit[a]`` (the true seed whenever the head is
    a genuine idle restart), then chain ``f[a + j] = f[a + j - 1] +
    sv[a + j]`` for all segments at once, one vectorized step per
    offset.  The additions and their dependency order are exactly the
    per-segment cumsum's, so the values are bit-identical.  Heads whose
    run actually merges with the previous one (``submit[a]`` below the
    previous run's finish) are then re-seeded at ``max(submit[a],
    previous finish)`` and re-swept — values only grow, and each wave
    finalises the next segment of every merge chain, so the iteration
    reaches the sequential evaluation's unique answer; if a pathological
    chain outlives the wave cap, fall back to the sequential loop.
    """
    n = submit.size
    n_seg = heads.size
    if n_seg < _SWEEP_MIN_SEGMENTS:
        return _eval_lindley_segments_loop(submit, sv, heads, prev)
    bounds = np.append(heads, n)
    lens = np.diff(bounds)
    long_seg = np.flatnonzero(lens > _SWEEP_MAX_LEN)
    if long_seg.size * 8 > n_seg:
        return _eval_lindley_segments_loop(submit, sv, heads, prev)

    f = np.empty(n, dtype=np.float64)
    seed = submit[heads].copy()
    if not seed[0] > prev:
        seed[0] = prev

    def _sweep(sel: np.ndarray) -> None:
        """(Re)evaluate the selected segments from their current seeds."""
        if long_seg.size:
            is_long = lens[sel] > _SWEEP_MAX_LEN
            for si in sel[is_long].tolist():
                a, b = int(bounds[si]), int(bounds[si + 1])
                f[a:b] = np.cumsum(
                    np.concatenate(([seed[si]], sv[a:b]))
                )[1:]
            sel = sel[~is_long]
            if not sel.size:
                return
        hs = heads[sel]
        ls = lens[sel]
        f[hs] = seed[sel] + sv[hs]
        for j in range(1, int(ls.max())):
            live = ls > j
            if not np.all(live):
                hs, ls = hs[live], ls[live]
            pos = hs + j
            f[pos] = f[pos - 1] + sv[pos]

    _sweep(np.arange(n_seg))
    tails = bounds[1:-1] - 1
    for _ in range(_MAX_SWEEP_WAVES):
        want = seed.copy()
        np.maximum(submit[heads[1:]], f[tails], out=want[1:])
        stale = np.flatnonzero(want != seed)
        if not stale.size:
            return f
        seed[stale] = want[stale]
        _sweep(stale)
    return _eval_lindley_segments_loop(submit, sv, heads, prev)


def _solve_lindley(
    submit: np.ndarray, sv: np.ndarray, prev: float = _NEG_INF
) -> np.ndarray:
    """Finish times of ``finish_k = max(submit_k, finish_{k-1}) + sv_k``.

    Bit-identical to the scalar recurrence.  Two O(1)-pass fast paths
    cover the common regimes (server never queues / server never
    idles); otherwise idle-start heads are guessed from the arrival
    slack and refined until the evaluation is self-consistent, which
    by induction makes it exact.
    """
    n = submit.size
    if n == 0:
        return submit.astype(np.float64)
    # Fully-idle: every request starts at its own submit time.
    f_idle = submit + sv
    if submit[0] >= prev and (n == 1 or bool(np.all(submit[1:] >= f_idle[:-1]))):
        return f_idle
    # Fully-busy: one seeded cumsum chain.
    s0 = submit[0]
    seed0 = s0 if s0 > prev else prev
    f_busy = np.cumsum(np.concatenate(([seed0], sv)))[1:]
    if bool(np.all(submit[1:] <= f_busy[:-1])):
        return f_busy
    # General: guess heads from arrival slack, refine to fixpoint.
    approx = submit - np.concatenate(([0.0], np.cumsum(sv)[:-1]))
    is_head = approx >= np.maximum.accumulate(approx)
    is_head[0] = True
    for _ in range(_MAX_PASSES):
        heads = np.flatnonzero(is_head)
        f = _eval_lindley_segments(submit, sv, heads, prev)
        viol = np.flatnonzero(submit[1:] > f[:-1]) + 1
        new = viol[~is_head[viol]]
        if new.size == 0:
            return f
        is_head[new] = True
    return _lindley_scalar(submit, sv, prev)


def _eval_lindley_segments_grid(
    submit: np.ndarray, sv: np.ndarray, heads: np.ndarray, prev: float
) -> np.ndarray:
    """Row-batched segment evaluation with *shared* head columns.

    Every row is split at the same column positions.  A split at a
    column where the row is actually mid-busy-run is harmless: the seed
    ``max(submit[:, a], cur)`` resolves to ``cur`` there, and
    ``cumsum([cur, sv_a, …])`` performs the identical left-to-right
    additions the unsplit chain would — splitting a seeded cumsum is
    bit-neutral.  Only *missing* a true idle restart changes results,
    and the refinement loop in the caller catches those as violations.

    ``sv`` is ``(n,)`` when every row shares one service vector or
    ``(P, n)`` for per-row service times (the RMW grid path, where each
    cell serves in its own order); a 1-D slice broadcasts into the
    block exactly as the per-row copy would.
    """
    n_rows, n = submit.shape
    f = np.empty((n_rows, n), dtype=np.float64)
    cur = np.full(n_rows, prev, dtype=np.float64)
    bounds = np.append(heads, n)
    for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
        block = np.empty((n_rows, b - a + 1), dtype=np.float64)
        np.maximum(submit[:, a], cur, out=block[:, 0])
        block[:, 1:] = sv[..., a:b]
        f[:, a:b] = np.cumsum(block, axis=1)[:, 1:]
        cur = f[:, b - 1]
    return f


def _solve_lindley_grid(
    submit: np.ndarray, sv: np.ndarray, prev: float = _NEG_INF
) -> np.ndarray:
    """Batched Lindley solver over a leading parameter axis.

    ``submit`` is ``(P, n)`` — one row per grid cell.  ``sv`` is either
    one shared ``(n,)`` service-time vector (the single-phase path:
    service depends on request geometry and fresh device state, never
    on arrival times) or a ``(P, n)`` matrix of per-row service times
    (the RMW path, where each cell's serving order differs).  Rows are
    independent; each row's result is bit-identical to
    ``_solve_lindley(submit[i], sv_row, prev)``:

    * the idle fast path is the same elementwise ``submit + sv`` (a
      broadcast is still one add per element);
    * the busy fast path seeds column 0 per row and runs
      ``np.cumsum(axis=1)`` — ``add.accumulate`` along the last axis is
      a strict left-to-right chain per row, the exact additions of the
      1-D seeded cumsum;
    * remaining rows are solved together: per-row head guesses are
      unioned into one shared column set and refined to a fixpoint.
      Shared extra splits are bit-neutral (see
      :func:`_eval_lindley_segments_grid`), so a violation-free
      evaluation equals the scalar recurrence on every row.
    """
    submit = np.ascontiguousarray(submit, dtype=np.float64)
    n_cells, n = submit.shape
    if n == 0 or n_cells == 0:
        return submit.copy()
    out = np.empty((n_cells, n), dtype=np.float64)
    f_idle = submit + sv
    ok_idle = submit[:, 0] >= prev
    if n > 1:
        ok_idle &= np.all(submit[:, 1:] >= f_idle[:, :-1], axis=1)
    chain = np.empty((n_cells, n + 1), dtype=np.float64)
    chain[:, 0] = np.maximum(submit[:, 0], prev)
    chain[:, 1:] = sv
    f_busy = np.cumsum(chain, axis=1)[:, 1:]
    if n > 1:
        ok_busy = np.all(submit[:, 1:] <= f_busy[:, :-1], axis=1)
    else:
        ok_busy = np.ones(n_cells, dtype=bool)
    out[ok_idle] = f_idle[ok_idle]
    busy_rows = ~ok_idle & ok_busy
    out[busy_rows] = f_busy[busy_rows]
    gen = np.flatnonzero(~ok_idle & ~ok_busy)
    if gen.size == 0:
        return out
    sub = np.ascontiguousarray(submit[gen])
    sv_gen = sv if sv.ndim == 1 else np.ascontiguousarray(sv[gen])
    if sv.ndim == 1:
        approx = sub - np.concatenate(([0.0], np.cumsum(sv)[:-1]))
    else:
        # Head guesses only pick split columns (splits are bit-neutral);
        # subtracting the per-row running service sum mirrors the 1-D
        # expression row by row.
        approx = sub.copy()
        approx[:, 1:] -= np.cumsum(sv_gen, axis=1)[:, :-1]
    is_head = approx >= np.maximum.accumulate(approx, axis=1)
    col_head = np.any(is_head, axis=0)
    col_head[0] = True
    for _ in range(_MAX_PASSES):
        heads = np.flatnonzero(col_head)
        f = _eval_lindley_segments_grid(sub, sv_gen, heads, prev)
        viol_cols = np.flatnonzero(np.any(sub[:, 1:] > f[:, :-1], axis=0)) + 1
        new = viol_cols[~col_head[viol_cols]]
        if new.size == 0:
            out[gen] = f
            return out
        col_head[new] = True
    for j, i in enumerate(gen.tolist()):
        out[i] = _solve_lindley(
            submit[i], sv if sv.ndim == 1 else sv_gen[j], prev
        )
    return out


# ---------------------------------------------------------------------------
# Exact link-serialisation solver (controller dispatch chain)
# ---------------------------------------------------------------------------


def _chain_scalar(
    t: np.ndarray, c: float, p: np.ndarray, prev: float
) -> Tuple[np.ndarray, np.ndarray]:
    d = np.empty(t.size, dtype=np.float64)
    link = np.empty(t.size, dtype=np.float64)
    cur = prev
    for i, (ti, pi) in enumerate(zip(t.tolist(), p.tolist())):
        disp = ti if ti > cur else cur
        disp = disp + c
        d[i] = disp
        cur = disp + pi
        link[i] = cur
    return d, link


def _eval_chain_segments_loop(
    t: np.ndarray, c: float, p: np.ndarray, heads: np.ndarray, prev: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment reference evaluation of the dispatch chain.

    A busy run interleaves the per-request overhead and payload additions
    into one cumulative sum — element order ``seed, +c, +p_0, +c, +p_1…``
    matches the event path's ``dispatch += overhead; link = dispatch +
    payload`` exactly.
    """
    n = t.size
    d = np.empty(n, dtype=np.float64)
    link = np.empty(n, dtype=np.float64)
    cur = prev
    bounds = np.append(heads, n)
    for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
        ta = t[a]
        seed = ta if ta > cur else cur
        m = b - a
        arr = np.empty(2 * m + 1, dtype=np.float64)
        arr[0] = seed
        arr[1::2] = c
        arr[2::2] = p[a:b]
        cs = np.cumsum(arr)
        d[a:b] = cs[1::2]
        link[a:b] = cs[2::2]
        cur = float(link[b - 1])
    return d, link


def _eval_chain_segments(
    t: np.ndarray, c: float, p: np.ndarray, heads: np.ndarray, prev: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate the dispatch chain given idle-link positions ``heads``.

    Same offset-sweep scheme as :func:`_eval_lindley_segments` (which
    see): segments are seeded independently at their own submit times
    and chained one vectorized step per offset — ``d[k] = link[k - 1] +
    c``; ``link[k] = d[k] + p[k]``, the interleaved cumsum's exact
    additions — then heads that actually merge with the previous busy
    run are re-seeded and re-swept until the evaluation is
    self-consistent.
    """
    n = t.size
    n_seg = heads.size
    if n_seg < _SWEEP_MIN_SEGMENTS:
        return _eval_chain_segments_loop(t, c, p, heads, prev)
    bounds = np.append(heads, n)
    lens = np.diff(bounds)
    long_seg = np.flatnonzero(lens > _SWEEP_MAX_LEN)
    if long_seg.size * 8 > n_seg:
        return _eval_chain_segments_loop(t, c, p, heads, prev)

    d = np.empty(n, dtype=np.float64)
    link = np.empty(n, dtype=np.float64)
    seed = t[heads].copy()
    if not seed[0] > prev:
        seed[0] = prev

    def _sweep(sel: np.ndarray) -> None:
        if long_seg.size:
            is_long = lens[sel] > _SWEEP_MAX_LEN
            for si in sel[is_long].tolist():
                a, b = int(bounds[si]), int(bounds[si + 1])
                m = b - a
                arr = np.empty(2 * m + 1, dtype=np.float64)
                arr[0] = seed[si]
                arr[1::2] = c
                arr[2::2] = p[a:b]
                cs = np.cumsum(arr)
                d[a:b] = cs[1::2]
                link[a:b] = cs[2::2]
            sel = sel[~is_long]
            if not sel.size:
                return
        hs = heads[sel]
        ls = lens[sel]
        d[hs] = seed[sel] + c
        link[hs] = d[hs] + p[hs]
        for j in range(1, int(ls.max())):
            live = ls > j
            if not np.all(live):
                hs, ls = hs[live], ls[live]
            pos = hs + j
            d[pos] = link[pos - 1] + c
            link[pos] = d[pos] + p[pos]

    _sweep(np.arange(n_seg))
    tails = bounds[1:-1] - 1
    for _ in range(_MAX_SWEEP_WAVES):
        want = seed.copy()
        np.maximum(t[heads[1:]], link[tails], out=want[1:])
        stale = np.flatnonzero(want != seed)
        if not stale.size:
            return d, link
        seed[stale] = want[stale]
        _sweep(stale)
    return _eval_chain_segments_loop(t, c, p, heads, prev)


def _solve_link_chain(
    t: np.ndarray, c: float, p: np.ndarray, prev: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Dispatch/link-free times of the array controller chain.

    ``d_k = max(t_k, link_{k-1}) + c``; ``link_k = d_k + p_k`` — the
    arithmetic of :meth:`DiskArray.submit`, reproduced bit-for-bit.
    """
    n = t.size
    if n == 0:
        empty = t.astype(np.float64)
        return empty, empty
    d_idle = t + c
    l_idle = d_idle + p
    if t[0] >= prev and (n == 1 or bool(np.all(t[1:] >= l_idle[:-1]))):
        return d_idle, l_idle
    t0 = t[0]
    seed0 = t0 if t0 > prev else prev
    heads0 = np.zeros(1, dtype=np.int64)
    d_busy, l_busy = _eval_chain_segments(t, c, p, heads0, prev)
    if bool(np.all(t[1:] <= l_busy[:-1])):
        return d_busy, l_busy
    approx = t - np.concatenate(([0.0], np.cumsum(c + p)[:-1]))
    is_head = approx >= np.maximum.accumulate(approx)
    is_head[0] = True
    for _ in range(_MAX_PASSES):
        heads = np.flatnonzero(is_head)
        d, link = _eval_chain_segments(t, c, p, heads, prev)
        viol = np.flatnonzero(t[1:] > link[:-1]) + 1
        new = viol[~is_head[viol]]
        if new.size == 0:
            return d, link
        is_head[new] = True
    return _chain_scalar(t, c, p, prev)


def _eval_chain_segments_grid(
    t: np.ndarray, c: float, p: np.ndarray, heads: np.ndarray, prev: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-batched dispatch-chain evaluation with *shared* head columns.

    Same bit-neutral-split argument as
    :func:`_eval_lindley_segments_grid`: a split where a row is
    mid-busy-run seeds with ``cur`` and the interleaved cumsum
    ``[cur, c, p_a, c, p_{a+1}, …]`` repeats the unsplit chain's
    additions exactly.
    """
    n_rows, n = t.shape
    d = np.empty((n_rows, n), dtype=np.float64)
    link = np.empty((n_rows, n), dtype=np.float64)
    cur = np.full(n_rows, prev, dtype=np.float64)
    bounds = np.append(heads, n)
    for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
        m = b - a
        arr = np.empty((n_rows, 2 * m + 1), dtype=np.float64)
        np.maximum(t[:, a], cur, out=arr[:, 0])
        arr[:, 1::2] = c
        arr[:, 2::2] = p[a:b]
        cs = np.cumsum(arr, axis=1)
        d[:, a:b] = cs[:, 1::2]
        link[:, a:b] = cs[:, 2::2]
        cur = link[:, b - 1]
    return d, link


def _solve_link_chain_grid(
    t: np.ndarray, c: float, p: np.ndarray, prev: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched link-chain solver over a leading parameter axis.

    ``t`` is ``(P, n)`` submit times; ``c`` (controller overhead) and
    ``p`` (per-request payload serialisation) are shared across rows.
    Per row bit-identical to ``_solve_link_chain(t[i], c, p, prev)``:
    the busy path interleaves ``seed, +c, +p_0, +c, +p_1…`` into one
    ``(P, 2n + 1)`` row-wise cumsum, the same left-to-right additions
    as the 1-D evaluator; general rows are solved together with a
    shared, refined head-column union (extra splits are bit-neutral).
    """
    t = np.ascontiguousarray(t, dtype=np.float64)
    n_cells, n = t.shape
    if n == 0 or n_cells == 0:
        return t.copy(), t.copy()
    d = np.empty((n_cells, n), dtype=np.float64)
    link = np.empty((n_cells, n), dtype=np.float64)
    d_idle = t + c
    l_idle = d_idle + p
    ok_idle = t[:, 0] >= prev
    if n > 1:
        ok_idle &= np.all(t[:, 1:] >= l_idle[:, :-1], axis=1)
    arr = np.empty((n_cells, 2 * n + 1), dtype=np.float64)
    arr[:, 0] = np.maximum(t[:, 0], prev)
    arr[:, 1::2] = c
    arr[:, 2::2] = p
    cs = np.cumsum(arr, axis=1)
    d_busy = cs[:, 1::2]
    l_busy = cs[:, 2::2]
    if n > 1:
        ok_busy = np.all(t[:, 1:] <= l_busy[:, :-1], axis=1)
    else:
        ok_busy = np.ones(n_cells, dtype=bool)
    d[ok_idle] = d_idle[ok_idle]
    link[ok_idle] = l_idle[ok_idle]
    busy_rows = ~ok_idle & ok_busy
    d[busy_rows] = d_busy[busy_rows]
    link[busy_rows] = l_busy[busy_rows]
    gen = np.flatnonzero(~ok_idle & ~ok_busy)
    if gen.size == 0:
        return d, link
    tg = np.ascontiguousarray(t[gen])
    approx = tg - np.concatenate(([0.0], np.cumsum(c + p)[:-1]))
    is_head = approx >= np.maximum.accumulate(approx, axis=1)
    col_head = np.any(is_head, axis=0)
    col_head[0] = True
    for _ in range(_MAX_PASSES):
        heads = np.flatnonzero(col_head)
        dg, lg = _eval_chain_segments_grid(tg, c, p, heads, prev)
        viol_cols = np.flatnonzero(np.any(tg[:, 1:] > lg[:, :-1], axis=0)) + 1
        new = viol_cols[~col_head[viol_cols]]
        if new.size == 0:
            d[gen] = dg
            link[gen] = lg
            return d, link
        col_head[new] = True
    for i in gen:
        d[i], link[i] = _solve_link_chain(t[i], c, p, prev)
    return d, link


# ---------------------------------------------------------------------------
# Qualification
# ---------------------------------------------------------------------------


def _qualify_member(dev: StorageDevice) -> Optional[str]:
    """None if ``dev`` is kernel-capable, else the human-readable reason."""
    if type(dev) is HardDiskDrive:
        if dev.rotational_jitter:
            return "hdd rotational jitter draws per request"
        if dev.state is not PowerState.IDLE:
            return f"hdd power state {dev.state.value}"
    elif type(dev) is SolidStateDrive:
        pass
    else:
        return f"device model {type(dev).__name__} has no kernel contract"
    if dev._busy:
        return "device busy at replay start"
    if type(dev._queue) is not FIFOQueue:
        return f"queue discipline {type(dev._queue).__name__}"
    if len(dev._queue):
        return "device queue not empty at replay start"
    if "_finish" in dev.__dict__:
        return "telemetry-instrumented device"
    return None


def _qualify_device(device: StorageDevice, trace: PackedTrace) -> Optional[str]:
    """None if the target qualifies for the analytical kernel.

    Checks run in a documented, deterministic order so the recorded
    fallback reason is stable when several apply: array-level structure
    first (subclass, empty enclosure, instrumentation, degraded state,
    RAID level), then the member disks in disk-index order.  A RAID-5
    array that cannot take the kernel for a structural reason therefore
    reports *that* reason — never whichever member check happens to
    fire first (see ``tests/sim/test_kernel.py``).
    """
    if isinstance(device, DiskArray):
        if type(device) is not DiskArray:
            return f"array subclass {type(device).__name__}"
        if device.geometry is None:
            return "array has no disks installed"
        if "_plan" in device.__dict__:
            return "telemetry-instrumented array"
        if device.failed_disk is not None or device.rebuilding:
            return "array degraded or rebuilding"
        level = device.geometry.level
        if level not in (RaidLevel.JBOD, RaidLevel.RAID0, RaidLevel.RAID5):
            # RAID-1/10 round-robin mirror reads through planner state.
            return f"raid level {level.value} mutates planner state"
        for disk in device.disks:
            reason = _qualify_member(disk)
            if reason is not None:
                return f"{disk.name}: {reason}"
        return None
    if isinstance(device, QueuedDevice):
        reason = _qualify_member(device)
        if reason is not None:
            return f"{device.name}: {reason}"
        return None
    return f"device model {type(device).__name__} has no kernel contract"


# ---------------------------------------------------------------------------
# Schedule computation (pure — all mutations deferred to commit closures)
# ---------------------------------------------------------------------------


@dataclass
class _Computed:
    """A fully-solved replay schedule, ready to commit.

    ``fin``/``resp``/``nbytes`` are in *completion-event order* (the
    order the monitor saw completions on the event path); ``push`` /
    ``pop`` are the merged, sorted queue-entry and queue-exit instants
    across all members (for interval-frame queue depths).  ``commit``
    performs every device/timeline mutation the event path would have
    made — it must be infallible.
    """

    end: float
    fin: np.ndarray
    resp: np.ndarray
    nbytes: np.ndarray
    push: np.ndarray
    pop: np.ndarray
    commit: Callable[[], None]


def _dispatch_times(trace: PackedTrace, t0: float) -> np.ndarray:
    """Per-package submit instants — the packed engine's rebased bunch
    times, repeated across each bunch's rows."""
    times = t0 + (trace.timestamps - trace.timestamps[0])
    if times.size > 1 and bool(np.any(np.diff(times) < 0)):
        raise _Fallback("unsorted bunch timestamps reorder dispatch")
    return np.repeat(times, np.diff(trace.offsets))


def _columns(trace: PackedTrace) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    pk = trace.packages
    sectors = pk["sector"].astype(np.int64, copy=False)
    nbytes = pk["nbytes"].astype(np.int64, copy=False)
    ops = pk["op"].astype(np.int64)
    if sectors.size == 0:
        raise _Fallback("trace has no packages")
    if bool(np.any(nbytes <= 0)) or bool(np.any(sectors < 0)):
        raise _Fallback("invalid package geometry")
    return sectors, nbytes, ops


def _check_timeline_clear(dev: QueuedDevice, first_start: float) -> None:
    """The event path appends segments after the timeline's last end;
    a stale timeline would make it raise mid-run — fall back instead."""
    ends = dev.timeline._ends
    if ends and first_start < ends[-1] - 1e-12:
        raise _Fallback(f"{dev.name}: power timeline extends past replay start")


def _serve_fifo(
    dev: QueuedDevice,
    submit: np.ndarray,
    sectors: np.ndarray,
    nbytes: np.ndarray,
    ops: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Callable[[], None]]:
    """Solve one member device's FCFS service sequence.

    Returns ``(fin, starts, push_times, pop_times, commit)``; commit
    applies the device-model cursor state, queue counters, completion
    count, head hint, and the power-timeline segments.
    """
    try:
        svc = dev.service_times(sectors, nbytes, ops)
    except StorageIOError as exc:
        raise _Fallback(str(exc))
    fin = _solve_lindley(submit, svc.seconds)
    if bool(np.any(np.diff(fin) < 0)):
        raise _Fallback(f"{dev.name}: non-monotone completion schedule")
    starts = np.maximum(submit, np.concatenate(([_NEG_INF], fin[:-1])))
    _check_timeline_clear(dev, float(starts[0]))
    queued = starts > submit
    push = submit[queued]
    pop = starts[queued]
    high = 0
    if push.size:
        ranks = np.arange(1, push.size + 1, dtype=np.int64)
        high = int((ranks - np.searchsorted(pop, push, side="right")).max())
    n = int(submit.size)
    n_queued = int(push.size)
    end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
    if int(end_sectors.max()) > dev.capacity_sectors:
        raise _Fallback(f"{dev.name}: request beyond capacity")
    last_end = int(end_sectors[-1])
    watts = svc.watts
    apply_model = svc.apply_state

    def commit() -> None:
        dev.timeline.extend_segments(starts, fin, watts)
        apply_model()
        dev.completed_count += n
        dev._head_hint = last_end
        dev._queue.pushed_total += n_queued
        dev._queue.popped_total += n_queued
        if high > dev.queued_high_water:
            dev.queued_high_water = high

    return fin, starts, push, pop, commit


def _compute_single(
    trace: PackedTrace, device: QueuedDevice, t0: float
) -> _Computed:
    submit = _dispatch_times(trace, t0)
    sectors, nbytes, ops = _columns(trace)
    fin, _starts, push, pop, commit = _serve_fifo(
        device, submit, sectors, nbytes, ops
    )
    # Single-server FIFO completes in row order (finish events are
    # scheduled in serving order, ties resolve by sequence), so the
    # monitor saw completions exactly in row order.
    resp = fin - submit
    return _Computed(
        end=float(fin[-1]),
        fin=fin,
        resp=resp,
        nbytes=nbytes,
        push=push,
        pop=pop,
        commit=commit,
    )


def _expand_subios(
    geom, sectors: np.ndarray, nbytes: np.ndarray, ops: np.ndarray
) -> FlightExpansion:
    """Closed-form clean-mode stripe planning.

    Delegates to :func:`repro.storage.raid.expand_flights` — sub-I/Os
    come back flight-major in plan order (``pre`` block, then ``post``),
    exactly as :meth:`RaidGeometry.plan` emits them, with integer
    arithmetic throughout (int64) so equality with the Python loop is
    exact.
    """
    return expand_flights(geom, sectors, nbytes, ops)


def _solve_two_phase(
    device: DiskArray,
    exp: FlightExpansion,
    dispatch: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Solve the per-flight two-phase (RMW) barrier to a verified fixpoint.

    The event path issues a flight's ``pre`` reads at its dispatch
    instant and its ``post`` writes the moment the last pre read
    completes (:meth:`DiskArray._pre_done` runs inside that completion
    callback).  Post arrivals therefore feed back into the member FIFO
    orders, which determine the order-dependent service times (seek
    chains, write-stream cursors), which determine the pre completion
    times — a fixpoint.  Iterate it: seed every post arrival at its
    flight's dispatch, then repeatedly (a) sort each disk's sub-I/Os by
    arrival (stable, so plan order breaks ties exactly like the event
    calendar: completion-issued posts carry lower flight indices than
    any dispatch tied with them, and a flight's pre block precedes its
    post block), (b) recompute that order's service plan and Lindley
    finishes, (c) reduce each flight's pre block to its barrier instant.
    Exact float convergence of the arrival vector means the evaluated
    schedule is self-consistent, and causality (service times are
    positive, posts issue strictly after their pre reads) makes the
    event engine's schedule the *unique* fixpoint — so the converged
    arrivals are bit-identical to the event path's.

    Returns ``(arrivals, sub_fin, disk_rows)`` with ``arrivals`` the
    converged per-sub-I/O queue-entry instants, ``sub_fin`` their finish
    times, and ``disk_rows`` each member's sub-I/O indices in plan
    order.  Raises :class:`_Fallback` on non-convergence or on arrival
    ties the event calendar would break by schedule sequence numbers
    (two RMW barriers releasing at one instant).
    """
    total = exp.total
    sub_flight = exp.sub_flight
    has_pre = exp.pre_counts > 0
    pre_flights = np.flatnonzero(has_pre)
    pre_idx = np.flatnonzero(exp.is_pre)
    pre_seg = np.concatenate(
        ([0], np.cumsum(exp.pre_counts[pre_flights])[:-1])
    ).astype(np.int64)
    post_mask = ~exp.is_pre & has_pre[sub_flight]

    order0 = np.argsort(exp.disk, kind="stable")
    disk_sorted = exp.disk[order0]
    cuts = np.searchsorted(
        disk_sorted, np.arange(len(device.disks) + 1, dtype=np.int64)
    )
    disk_rows = [
        order0[int(cuts[di]):int(cuts[di + 1])]
        for di in range(len(device.disks))
    ]

    sub_fin = np.empty(total, dtype=np.float64)
    base_arr = dispatch[sub_flight]
    post_at = sub_flight[post_mask]
    post_arrival = dispatch.copy()
    arrivals = base_arr
    # Two exact pass-to-pass shortcuts: a member whose arrival vector is
    # unchanged serves identically (its finishes are already in
    # ``sub_fin``), and a member whose serving *order* is unchanged
    # reuses the previous pass's service plan (service depends only on
    # the request sequence, never on the clock).
    svc_memo: List[Optional[tuple]] = [None] * len(device.disks)
    arr_memo: List[Optional[np.ndarray]] = [None] * len(device.disks)
    for _ in range(_MAX_RMW_PASSES):
        arrivals = base_arr.copy()
        arrivals[post_mask] = post_arrival[post_at]
        for di, disk in enumerate(device.disks):
            rows = disk_rows[di]
            if not rows.size:
                continue
            arr_d = arrivals[rows]
            if arr_memo[di] is not None and np.array_equal(
                arr_memo[di], arr_d
            ):
                continue
            arr_memo[di] = arr_d
            perm = rows[np.argsort(arr_d, kind="stable")]
            memo = svc_memo[di]
            if memo is not None and np.array_equal(memo[0], perm):
                svc = memo[1]
            else:
                try:
                    svc = disk.service_times(
                        exp.sector[perm], exp.nbytes[perm], exp.op[perm]
                    )
                except StorageIOError as exc:
                    raise _Fallback(str(exc))
                svc_memo[di] = (perm, svc)
            sub_fin[perm] = _solve_lindley(arrivals[perm], svc.seconds)
        new_post = dispatch.copy()
        new_post[pre_flights] = np.maximum.reduceat(
            sub_fin[pre_idx], pre_seg
        )
        if np.array_equal(new_post, post_arrival):
            break
        post_arrival = new_post
    else:
        raise _Fallback("rmw barrier schedule did not converge")

    # Arrival ties the event calendar breaks by sequence number cannot
    # be reproduced: equal instants at one disk are only deterministic
    # within a flight (plan order) or between a completion-issued post
    # and a later flight's dispatch (completions outrank dispatch
    # events) — which stable plan-order sorting already encodes.
    for rows in disk_rows:
        if rows.size < 2:
            continue
        arr_d = arrivals[rows]
        perm = rows[np.argsort(arr_d, kind="stable")]
        tied = arrivals[perm[1:]] == arrivals[perm[:-1]]
        cross = sub_flight[perm[1:]] != sub_flight[perm[:-1]]
        benign = post_mask[perm[:-1]] & ~post_mask[perm[1:]]
        if bool(np.any(tied & cross & ~benign)):
            raise _Fallback("tied sub-I/O arrival times")
    return arrivals, sub_fin, disk_rows


def _compute_array(trace: PackedTrace, device: DiskArray, t0: float) -> _Computed:
    geom = device.geometry
    assert geom is not None
    submit = _dispatch_times(trace, t0)
    sectors, nbytes, ops = _columns(trace)
    end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
    if int(end_sectors.max()) > geom.capacity_sectors:
        raise _Fallback("request beyond array capacity")

    # Controller dispatch: overhead plus host-link payload serialisation.
    overhead = device.enclosure.controller_overhead
    payload = nbytes / device.enclosure.link_rate
    dispatch, link = _solve_link_chain(
        submit, overhead, payload, device._link_busy_until
    )

    exp = _expand_subios(geom, sectors, nbytes, ops)
    flight_offsets = exp.flight_offsets
    sub_sector, sub_nbytes, sub_op = exp.sector, exp.nbytes, exp.op
    total = exp.total
    sub_fin = np.empty(total, dtype=np.float64)
    commits: List[Callable[[], None]] = []
    pushes: List[np.ndarray] = []
    pops: List[np.ndarray] = []
    if exp.has_pre:
        # RAID-5 read-modify-write: post writes barrier on their pre
        # reads.  Solve the barrier fixpoint, then serve each member in
        # the converged arrival order.
        arrivals, _fins, disk_rows = _solve_two_phase(device, exp, dispatch)
        for di, disk in enumerate(device.disks):
            rows = disk_rows[di]
            if not rows.size:
                continue
            perm = rows[np.argsort(arrivals[rows], kind="stable")]
            fin, _starts, push, pop, commit = _serve_fifo(
                disk,
                arrivals[perm],
                sub_sector[perm],
                sub_nbytes[perm],
                sub_op[perm],
            )
            sub_fin[perm] = fin
            commits.append(commit)
            if push.size:
                pushes.append(push)
                pops.append(pop)
    else:
        arrivals = dispatch[exp.sub_flight]

        # Per-disk FCFS service.  Stable sort keeps each disk's sub-I/Os
        # in flight/plan order — the member queue's arrival order.
        order = np.argsort(exp.disk, kind="stable")
        disk_sorted = exp.disk[order]
        cuts = np.searchsorted(
            disk_sorted, np.arange(len(device.disks) + 1, dtype=np.int64)
        )
        for di, disk in enumerate(device.disks):
            lo, hi = int(cuts[di]), int(cuts[di + 1])
            if lo == hi:
                continue
            rows = order[lo:hi]
            fin, _starts, push, pop, commit = _serve_fifo(
                disk,
                arrivals[rows],
                sub_sector[rows],
                sub_nbytes[rows],
                sub_op[rows],
            )
            sub_fin[rows] = fin
            commits.append(commit)
            if push.size:
                pushes.append(push)
                pops.append(pop)

    # A flight completes when its last sub-I/O finishes.  Tied flight
    # finish times would make the monitor's accumulation order depend
    # on event sequence numbers — the closed form cannot reproduce
    # that, so such schedules fall back.
    fl_fin = np.maximum.reduceat(sub_fin, flight_offsets[:-1])
    if np.unique(fl_fin).size != fl_fin.size:
        raise _Fallback("tied flight completion times")
    comp_order = np.argsort(fl_fin, kind="stable")
    fin_ev = fl_fin[comp_order]
    resp_ev = (fl_fin - submit)[comp_order]
    bytes_ev = nbytes[comp_order]

    push_all = (
        np.sort(np.concatenate(pushes))
        if pushes
        else np.empty(0, dtype=np.float64)
    )
    pop_all = (
        np.sort(np.concatenate(pops)) if pops else np.empty(0, dtype=np.float64)
    )
    n_flights = int(submit.size)
    link_end = float(link[-1])

    def commit() -> None:
        for one in commits:
            one()
        device.completed_count += n_flights
        device.subio_count += total
        device._link_busy_until = link_end

    return _Computed(
        end=float(fin_ev[-1]),
        fin=fin_ev,
        resp=resp_ev,
        nbytes=bytes_ev,
        push=push_all,
        pop=pop_all,
        commit=commit,
    )


# ---------------------------------------------------------------------------
# Sampled-output synthesis
# ---------------------------------------------------------------------------


def _tick_boundaries(t0: float, t_end: float, cycle: float) -> List[float]:
    """Fired sampling-tick instants, reproducing the event chain.

    Boundaries accumulate as Python floats (``b += cycle``) exactly like
    the rescheduling tick events; a tick landing at or after the final
    completion never fires (completions carry priority 0, ticks 10/11,
    and the run loop exits on the final completion).
    """
    bounds = [t0]
    b = t0
    while True:
        nb = b + cycle
        if nb >= t_end:
            break
        if nb <= b:
            raise _Fallback("sampling cycle vanishes below float resolution")
        bounds.append(nb)
        b = nb
        if len(bounds) > _MAX_WINDOWS:
            raise _Fallback("too many sampling windows for the kernel")
    return bounds


def _window_cuts(bounds: List[float], fin: np.ndarray) -> np.ndarray:
    """Completion-array cut indices per window (boundary ties close the
    window: completion events outrank sampling ticks at equal times)."""
    edges = np.asarray(bounds[1:], dtype=np.float64)
    mid = np.searchsorted(fin, edges, side="right")
    return np.concatenate(([0], mid, [fin.size])).astype(np.int64)


def _perf_series(
    bounds: List[float], end: float, comp: _Computed
) -> List[PerfSample]:
    cuts = _window_cuts(bounds, comp.fin)
    resp_list = comp.resp.tolist()
    byte_prefix = np.concatenate(([0], np.cumsum(comp.nbytes)))
    starts = bounds
    ends = bounds[1:] + [end]
    samples: List[PerfSample] = []
    for i in range(len(starts)):
        a, b = int(cuts[i]), int(cuts[i + 1])
        s, e = starts[i], ends[i]
        cnt = b - a
        if e <= s and not cnt:
            continue  # the monitor's forced close flushes counts only
        samples.append(
            PerfSample(
                start=float(s),
                end=float(e),
                completed=int(cnt),
                total_bytes=int(byte_prefix[b] - byte_prefix[a]),
                total_response=float(sum(resp_list[a:b])),
            )
        )
    return samples


def _power_windows(
    analyzer: PowerAnalyzer, bounds: List[float], end: float
) -> None:
    """Replay the analyzer's sampling windows through its real
    ``_record_window`` (same sensor-read order, same energy queries)."""
    ends = bounds[1:] + [end]
    for a, b in zip(bounds, ends):
        analyzer._record_window(a, b)


def _frame_series(
    bounds: List[float],
    end: float,
    comp: _Computed,
    power_source,
) -> list:
    from ..telemetry.flightrec import get_flight_recorder
    from ..telemetry.registry import DEFAULT_TIME_BUCKETS
    from ..telemetry.stream import IntervalFrame

    buckets = tuple(float(b) for b in DEFAULT_TIME_BUCKETS)
    barr = np.asarray(buckets, dtype=np.float64)
    cuts = _window_cuts(bounds, comp.fin)
    resp_list = comp.resp.tolist()
    byte_prefix = np.concatenate(([0], np.cumsum(comp.nbytes)))
    starts = bounds
    ends = bounds[1:] + [end]
    flightrec = get_flight_recorder()
    frames = []
    for i in range(len(starts)):
        a, b = int(cuts[i]), int(cuts[i + 1])
        s, e = starts[i], ends[i]
        cnt = b - a
        if e <= s and not cnt:
            continue
        if cnt:
            counts = np.bincount(
                np.searchsorted(barr, comp.resp[a:b], side="right"),
                minlength=barr.size + 1,
            )
        else:
            counts = np.zeros(barr.size + 1, dtype=np.int64)
        energy = (
            power_source.energy_between(s, e) if power_source is not None else 0.0
        )
        depth = int(
            np.searchsorted(comp.push, e, side="right")
            - np.searchsorted(comp.pop, e, side="right")
        )
        frame = IntervalFrame(
            index=len(frames),
            start=float(s),
            end=float(e),
            completed=int(cnt),
            total_bytes=int(byte_prefix[b] - byte_prefix[a]),
            response_sum=float(sum(resp_list[a:b])),
            energy_joules=float(energy),
            queue_depth=depth,
            latency_buckets=buckets,
            latency_counts=tuple(int(x) for x in counts),
        )
        frames.append(frame)
        flightrec.record(
            "stream.interval", frame.end,
            index=frame.index, completed=frame.completed,
            queue_depth=frame.queue_depth,
        )
    return frames


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


@dataclass
class KernelOutcome:
    """Everything the session needs to assemble a ``ReplayResult``."""

    end: float
    perf_samples: List[PerfSample]
    analyzer: PowerAnalyzer
    frames: list
    completed: int
    total_bytes: int
    total_response: float
    #: Per-request finish / response times in completion-event order —
    #: the same values the event-path monitor would have observed.
    finishes: Optional[np.ndarray] = None
    responses: Optional[np.ndarray] = None


def try_kernel_replay(
    sim: Simulator,
    trace,
    device: StorageDevice,
    *,
    sampling_cycle: float,
    sensor=None,
    stream_interval: float = 0.0,
) -> Tuple[Optional[KernelOutcome], Optional[str]]:
    """Attempt the closed-form replay of ``trace`` against ``device``.

    Returns ``(outcome, None)`` on success — with all device, queue,
    and power-timeline state committed and the simulation clock
    advanced to the final completion — or ``(None, reason)`` when the
    configuration does not qualify, in which case *nothing* has been
    mutated and the caller must run the event engine.
    """
    from ..telemetry import get_registry

    if get_registry().enabled:
        return None, "telemetry registry enabled"
    if not isinstance(trace, PackedTrace):
        return None, "object-trace replay"
    if sim.pending:
        return None, "simulator calendar not empty"
    reason = _qualify_device(device, trace)
    if reason is not None:
        return None, reason

    t0 = sim.now
    try:
        if isinstance(device, DiskArray):
            comp = _compute_array(trace, device, t0)
        else:
            comp = _compute_single(trace, device, t0)  # type: ignore[arg-type]
        mon_bounds = _tick_boundaries(t0, comp.end, float(sampling_cycle))
        frame_bounds = (
            _tick_boundaries(t0, comp.end, float(stream_interval))
            if stream_interval > 0
            else None
        )
    except _Fallback as exc:
        return None, exc.reason

    # ---- Commit: infallible from here on. ----
    comp.commit()
    perf_samples = _perf_series(mon_bounds, comp.end, comp)
    source = device.meter if isinstance(device, DiskArray) else device
    analyzer = PowerAnalyzer(
        source, sampling_cycle=float(sampling_cycle), sensor=sensor
    )
    _power_windows(analyzer, mon_bounds, comp.end)
    frames = (
        _frame_series(frame_bounds, comp.end, comp, source)
        if frame_bounds is not None
        else []
    )
    completed = sum(s.completed for s in perf_samples) + 0
    total_bytes = sum(s.total_bytes for s in perf_samples) + 0
    total_response = sum(s.total_response for s in perf_samples) + 0.0
    sim.advance_to(comp.end)
    return (
        KernelOutcome(
            end=comp.end,
            perf_samples=perf_samples,
            analyzer=analyzer,
            frames=frames,
            completed=completed,
            total_bytes=total_bytes,
            total_response=total_response,
            finishes=comp.fin,
            responses=comp.resp,
        ),
        None,
    )

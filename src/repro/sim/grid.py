"""Grid-fused analytical replay: one broadcast, many cells.

A parameter sweep evaluates the same trace against the same device
family at many ``(load, time_scale)`` points.  Per point, the analytical
kernel (:mod:`repro.sim.kernel`) already collapses the replay to closed
form — but a sweep still re-derives everything per cell: the filtered
trace, the service-time plans, the sub-I/O expansion, the per-disk
sort.  None of that depends on *when* requests arrive, only on *which*
requests run against *which* factory-fresh device — and that is shared
by every cell that differs only in its time scale.

This module lifts the kernel's solvers to a leading parameter axis:

* cells are grouped by load (same filtered row set), and the filter,
  CSR columns, capacity checks, stripe expansion, per-disk stable sort,
  and ``VectorService`` plans are computed once per group;
* the link chain and the per-disk Lindley recurrences run as one
  ``(P, n)`` row-wise broadcast
  (:func:`~repro.sim.kernel._solve_link_chain_grid` /
  :func:`~repro.sim.kernel._solve_lindley_grid`), chunked over the
  parameter axis to bound peak memory;
* per-cell outputs are assembled through the *real* samplers —
  ``_perf_series``, :class:`~repro.power.analyzer.PowerAnalyzer`
  windows, ``_frame_series`` — fed by a frozen energy source that
  reproduces :class:`~repro.power.model.PowerTimeline` arithmetic from
  the batch arrays, so no per-cell device is ever constructed or
  mutated.

**Bit-identity is inherited from the kernel's contract**: every cell's
:class:`~repro.replay.results.ReplayResult` equals what
``replay_trace(trace, factory(), load, config=replace(cfg,
time_scale=ts), engine="kernel")`` returns, field for field.  Any cell
the fusion cannot reproduce exactly (non-qualifying device, unsorted
scaled timestamps, tied flight completions, pathological sampling
cycles) is handed back to the caller with the reason, to be replayed
per point — where ``engine="auto"`` re-derives the identical
user-visible fallback metadata the event path records today.

The public sweep API wrapping this module is
:func:`repro.workload.parallel.run_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import ReplayConfig
from ..core.timescale import TimeScaler
from ..errors import ReplayError, StorageIOError
from ..power.analyzer import PowerAnalyzer
from ..storage.array import DiskArray
from ..storage.base import QueuedDevice, StorageDevice
from ..trace.packed import PackedTrace
from ..units import SECTOR_BYTES
from .kernel import (
    KernelOutcome,
    _Computed,
    _Fallback,
    _MAX_RMW_PASSES,
    _NEG_INF,
    _columns,
    _expand_subios,
    _frame_series,
    _perf_series,
    _power_windows,
    _qualify_device,
    _solve_lindley_grid,
    _solve_link_chain_grid,
    _tick_boundaries,
)

#: Default peak-memory budget for the batched solve; the parameter axis
#: is chunked so one chunk's working set stays under this many bytes.
DEFAULT_CHUNK_BYTES = 256 * 1024 * 1024

_EMPTY = np.empty(0, dtype=np.float64)
_CUM_SEED = np.zeros(1, dtype=np.float64)


@dataclass(frozen=True)
class GridCell:
    """One grid point within a (trace, device) plane."""

    load: float
    time_scale: float


@dataclass
class CellEval:
    """Fusion outcome for one cell.

    ``result`` is the bit-identical :class:`ReplayResult` when the cell
    was evaluated by the fused kernel; otherwise ``unfused`` names why
    the fusion handed the cell back (the caller replays it per point,
    which re-derives the user-visible fallback reason exactly as
    ``engine="auto"`` does).  ``capture`` is the cell's
    :class:`~repro.replay.capture.ReplayCapture` when requested —
    bit-identical to what a per-point replay would capture.
    """

    result: Optional[object]
    unfused: Optional[str]
    capture: Optional[object] = None


class _NullClock:
    """Stand-in for the simulator in result assembly — only ``now`` is
    read, and the kernel has already advanced it to the final
    completion."""

    __slots__ = ("now",)

    def __init__(self, now: float) -> None:
        self.now = now


class _FrozenTimeline:
    """Read-only stand-in for a committed, fresh-baseline ``PowerTimeline``.

    Holds the batch-computed segment columns of one member device for
    one cell and answers ``energy_between`` with the exact arithmetic
    :class:`~repro.power.model.PowerTimeline` performs after
    ``extend_segments``: a single-level baseline integral plus the
    prefix-sum excess walk (same cumsum seed, same bisect semantics,
    same tail subtraction) — so every returned float matches the value
    a per-cell device commit would have produced, without building the
    device or materialising Python lists.  ``cum`` carries the leading
    0.0 of the real ``_cum_excess``; a member that served nothing is
    represented by empty columns (pure baseline, like a fresh
    timeline).
    """

    __slots__ = ("starts", "ends", "watts", "cum", "base_watts")

    def __init__(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        watts: np.ndarray,
        cum: np.ndarray,
        base_watts: float,
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.watts = watts
        self.cum = cum
        self.base_watts = base_watts

    def _excess_upto(self, t: float) -> float:
        idx = int(np.searchsorted(self.starts, t, side="right"))
        total = float(self.cum[idx])
        if idx > 0:
            end = float(self.ends[idx - 1])
            if end > t:
                tail_base = self.base_watts * (end - t)
                total -= float(self.watts[idx - 1]) * (end - t) - tail_base
        return total

    def energy_between(self, t0: float, t1: float) -> float:
        if t1 == t0:
            return 0.0
        base = self.base_watts * (t1 - t0)
        return base + self._excess_upto(t1) - self._excess_upto(t0)


class _FrozenMeter:
    """``EnergyMeter`` arithmetic over frozen timelines.

    The member order and the sequential Python-float accumulation match
    the real meter — including members that served nothing, whose
    timelines still contribute their baseline integral in place.
    """

    __slots__ = ("timelines", "overhead_watts")

    def __init__(
        self, timelines: List[_FrozenTimeline], overhead_watts: float
    ) -> None:
        self.timelines = timelines
        self.overhead_watts = overhead_watts

    def energy_between(self, t0: float, t1: float) -> float:
        total = self.overhead_watts * (t1 - t0)
        for timeline in self.timelines:
            total += timeline.energy_between(t0, t1)
        return total


def _noop() -> None:
    return None


@dataclass
class _MemberPlan:
    """One member disk's shared (time-independent) service plan.

    ``seconds``/``watts`` are ``None`` on the RAID-5 RMW path: there the
    serving order (hence the seek/stream-dependent service plan) varies
    per cell, so plans are derived per arrival-order class inside
    :func:`_solve_array_chunk_rmw` instead of once per group.
    """

    rows: np.ndarray  # sub-I/O indices served by this disk, plan order
    seconds: Optional[np.ndarray]
    watts: Optional[np.ndarray]
    base_watts: float


@dataclass
class _MemberBatch:
    """One member's solved schedule for a chunk of cells (columns empty
    when the member served nothing).

    Columns are in the member's *serving* (arrival) order.  On the
    read/single-phase path that order is shared by every cell, so one
    ``watts`` row serves the whole chunk; on the RMW path each cell may
    serve in a different order and ``watts2d`` carries per-cell rows.
    """

    starts2d: np.ndarray  # (P, k) segment starts, serving order
    fin2d: np.ndarray  # (P, k) segment ends
    watts: np.ndarray  # (k,) shared across cells (empty when per-cell)
    cum2d: np.ndarray  # (P, k + 1) seeded excess prefix sums
    base_watts: float
    submit2d: np.ndarray  # (P, k) member arrival instants
    watts2d: Optional[np.ndarray] = None  # (P, k) per-cell Watts rows

    @property
    def served(self) -> bool:
        return self.fin2d.size > 0

    def cell_watts(self, i: int) -> np.ndarray:
        return self.watts2d[i] if self.watts2d is not None else self.watts


def evaluate_grid_cells(
    trace,
    device: StorageDevice,
    cells: Sequence[GridCell],
    *,
    config: Optional[ReplayConfig] = None,
    stream_interval: Optional[float] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    capture: bool = False,
) -> List[CellEval]:
    """Evaluate ``cells`` against ``device`` with the fused kernel.

    ``device`` is a *probe*: one factory-fresh instance standing in for
    the per-cell devices a serial sweep would build (its service models
    are consulted read-only; nothing is mutated).  Cells the fusion
    cannot reproduce bit-identically come back with ``unfused`` set and
    must be replayed per point by the caller.

    Raises :class:`ReplayError` exactly where the per-point path would
    raise for *every* cell (empty trace, a load that filters away all
    bunches).
    """
    cfg = config or ReplayConfig()
    cells = list(cells)
    if len(trace) == 0:
        raise ReplayError("cannot replay an empty trace")
    if not isinstance(trace, PackedTrace):
        return [CellEval(None, "object-trace replay") for _ in cells]
    from ..telemetry import get_registry

    if get_registry().enabled:
        return [CellEval(None, "telemetry registry enabled") for _ in cells]

    from ..obslog import get_logger
    from ..replay.session import ReplaySession

    session = ReplaySession(device, config=cfg, stream_interval=stream_interval)
    slog = get_logger("replay.session")

    evals: List[CellEval] = [CellEval(None, "not evaluated") for _ in cells]
    # Group cells by load: every cell of a group replays the same
    # filtered row set, so all time-independent work is shared.
    group_order: List[float] = []
    groups: dict = {}
    for gi, cell in enumerate(cells):
        if cell.load not in groups:
            groups[cell.load] = []
            group_order.append(cell.load)
        groups[cell.load].append(gi)
    try:
        for load in group_order:
            _evaluate_group(
                trace, device, load, groups[load], cells, evals,
                session=session, slog=slog, cfg=cfg, chunk_bytes=chunk_bytes,
                capture=capture,
            )
    finally:
        session.config = cfg
    return evals


def _evaluate_group(
    trace: PackedTrace,
    device: StorageDevice,
    load: float,
    indices: List[int],
    cells: List[GridCell],
    evals: List[CellEval],
    *,
    session,
    slog,
    cfg: ReplayConfig,
    chunk_bytes: int,
    capture: bool = False,
) -> None:
    def refuse(reason: str) -> None:
        for gi in indices:
            evals[gi] = CellEval(None, reason)

    base = session.controller.apply(trace, load)
    if len(base) == 0:
        raise ReplayError(
            f"load proportion {load} left no bunches to replay"
        )
    reason = _qualify_device(device, base)
    if reason is not None:
        refuse(reason)
        return

    is_array = isinstance(device, DiskArray)
    members: List[QueuedDevice] = (
        list(device.disks) if is_array else [device]  # type: ignore[list-item]
    )
    for member in members:
        timeline = member.timeline
        if (
            timeline.segment_count
            or len(timeline._base_times) > 1
            or timeline._base_times[0] != 0.0
        ):
            refuse("probe device not factory-fresh")
            return

    # ---- Shared (time-independent) computation, once per group. ----
    plans: List[Optional[_MemberPlan]] = []
    try:
        times = 0.0 + (base.timestamps - base.timestamps[0])
        if times.size > 1 and bool(np.any(np.diff(times) < 0)):
            raise _Fallback("unsorted bunch timestamps reorder dispatch")
        sectors, nbytes, ops = _columns(base)
        if is_array:
            geom = device.geometry
            end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
            if int(end_sectors.max()) > geom.capacity_sectors:
                raise _Fallback("request beyond array capacity")
            link_overhead = device.enclosure.controller_overhead
            link_prev = device._link_busy_until
            payload = nbytes / device.enclosure.link_rate
            exp = _expand_subios(geom, sectors, nbytes, ops)
            total = exp.total
            rmw = exp.has_pre
            order = np.argsort(exp.disk, kind="stable")
            disk_sorted = exp.disk[order]
            cuts = np.searchsorted(
                disk_sorted, np.arange(len(members) + 1, dtype=np.int64)
            )
            for di, disk in enumerate(members):
                lo, hi = int(cuts[di]), int(cuts[di + 1])
                if lo == hi:
                    plans.append(None)
                    continue
                rows = order[lo:hi]
                sub_end = exp.sector[rows] + -(
                    -exp.nbytes[rows] // SECTOR_BYTES
                )
                if int(sub_end.max()) > disk.capacity_sectors:
                    raise _Fallback(f"{disk.name}: request beyond capacity")
                if rmw:
                    # Serving order — and with it the seek/stream-
                    # dependent service plan — varies per cell on the
                    # RMW path; plans are built per arrival-order class
                    # in the chunk solver.
                    plans.append(
                        _MemberPlan(
                            rows, None, None, disk.timeline._base_watts[0]
                        )
                    )
                    continue
                try:
                    svc = disk.service_times(
                        exp.sector[rows], exp.nbytes[rows], exp.op[rows]
                    )
                except StorageIOError as exc:
                    raise _Fallback(str(exc))
                plans.append(
                    _MemberPlan(
                        rows, svc.seconds, svc.watts,
                        disk.timeline._base_watts[0],
                    )
                )
        else:
            try:
                svc = device.service_times(sectors, nbytes, ops)  # type: ignore[union-attr]
            except StorageIOError as exc:
                raise _Fallback(str(exc))
            end_sectors = sectors + -(-nbytes // SECTOR_BYTES)
            if int(end_sectors.max()) > device.capacity_sectors:
                raise _Fallback(f"{device.name}: request beyond capacity")
            plans.append(
                _MemberPlan(
                    np.arange(nbytes.size, dtype=np.int64),
                    svc.seconds, svc.watts,
                    device.timeline._base_watts[0],  # type: ignore[union-attr]
                )
            )
    except _Fallback as exc:
        refuse(exc.reason)
        return

    totals = None
    if capture:
        from ..replay.capture import workload_totals

        # Workload totals are load-dependent but time-scale-invariant:
        # one computation covers every cell of the group.
        totals = workload_totals(base)

    n_bunches = len(base)
    n_pkgs = int(base.package_count)
    reps = np.diff(base.offsets)
    si = session.stream_interval
    cycle = float(cfg.sampling_cycle)

    # Chunk the parameter axis so the working set stays bounded: the
    # dominant per-cell float64 rows are ~7 over the sub-I/O axis plus
    # the flight/event-order and bunch-time rows.  The RMW solver also
    # holds per-cell serving orders, Watts rows, and the serving-order
    # segment columns, roughly doubling the sub-I/O-axis footprint.
    if is_array:
        sub_rows = 14 if rmw else 7
        per_cell = 8 * (sub_rows * total + 10 * n_pkgs + 2 * n_bunches)
    else:
        per_cell = 8 * (8 * n_pkgs + 2 * n_bunches)
    step = max(1, int(chunk_bytes // max(per_cell, 1)))

    for at in range(0, len(indices), step):
        chunk = indices[at:at + step]
        n_cells = len(chunk)
        manipulated = []
        times2d = np.empty((n_cells, n_bunches), dtype=np.float64)
        for i, gi in enumerate(chunk):
            ts_val = cells[gi].time_scale
            m = TimeScaler(ts_val).apply(base) if ts_val != 1.0 else base
            manipulated.append(m)
            times2d[i] = 0.0 + (m.timestamps - m.timestamps[0])
        # Positive scaling preserves order, but guard each cell anyway —
        # an unsorted row must fall back exactly like the per-point path.
        unsorted = (
            np.any(np.diff(times2d, axis=1) < 0, axis=1)
            if n_bunches > 1
            else np.zeros(n_cells, dtype=bool)
        )
        cell_reason: List[Optional[str]] = [
            "unsorted bunch timestamps reorder dispatch" if bad else None
            for bad in unsorted
        ]
        submit2d = np.repeat(times2d, reps, axis=1)

        if is_array and rmw:
            solved = _solve_array_chunk_rmw(
                device, members, plans, submit2d, link_overhead, link_prev,
                payload, exp, nbytes, cell_reason,
            )
        elif is_array:
            solved = _solve_array_chunk(
                device, members, plans, submit2d, link_overhead, link_prev,
                payload, exp.sub_flight, exp.flight_offsets, total, nbytes,
                cell_reason,
            )
        else:
            solved = _solve_single_chunk(
                device, plans[0], submit2d, nbytes, cell_reason
            )
        if solved is None:
            for i, gi in enumerate(chunk):
                evals[gi] = CellEval(
                    None, cell_reason[i] or "batch solve failed"
                )
            continue
        fin_ev2d, resp_ev2d, bytes_ev2d, batches, overhead_watts = solved

        # ---- Per-cell assembly through the real samplers. ----
        for i, gi in enumerate(chunk):
            if cell_reason[i] is not None:
                evals[gi] = CellEval(None, cell_reason[i])
                continue
            m = manipulated[i]
            end = float(fin_ev2d[i, -1])
            try:
                mon_bounds = _tick_boundaries(0.0, end, cycle)
                frame_bounds = (
                    _tick_boundaries(0.0, end, float(si)) if si > 0 else None
                )
            except _Fallback as exc:
                evals[gi] = CellEval(None, exc.reason)
                continue
            if si > 0:
                push, pop = _queue_instants(batches, i)
            else:
                push = pop = _EMPTY
            comp = _Computed(
                end=end,
                fin=fin_ev2d[i],
                resp=resp_ev2d[i],
                nbytes=bytes_ev2d[i] if bytes_ev2d.ndim == 2 else bytes_ev2d,
                push=push,
                pop=pop,
                commit=_noop,
            )
            perf_samples = _perf_series(mon_bounds, end, comp)
            timelines = [
                _FrozenTimeline(
                    b.starts2d[i], b.fin2d[i], b.cell_watts(i), b.cum2d[i],
                    b.base_watts,
                )
                if b.served
                else _FrozenTimeline(
                    _EMPTY, _EMPTY, _EMPTY, _CUM_SEED, b.base_watts
                )
                for b in batches
            ]
            if overhead_watts is None:
                source = timelines[0]
            else:
                source = _FrozenMeter(timelines, overhead_watts)
            analyzer = PowerAnalyzer(source, sampling_cycle=cycle, sensor=None)
            _power_windows(analyzer, mon_bounds, end)
            frames = (
                _frame_series(frame_bounds, end, comp, source)
                if frame_bounds is not None
                else []
            )
            completed = sum(s.completed for s in perf_samples) + 0
            total_bytes = sum(s.total_bytes for s in perf_samples) + 0
            total_response = sum(s.total_response for s in perf_samples) + 0.0
            outcome = KernelOutcome(
                end=end,
                perf_samples=perf_samples,
                analyzer=analyzer,
                frames=frames,
                completed=completed,
                total_bytes=total_bytes,
                total_response=total_response,
            )
            session.config = replace(cfg, time_scale=cells[gi].time_scale)
            slog.event(
                "start", time=0.0, trace=m.label, load=load,
                packages=m.package_count, streaming=si,
            )
            result = session._kernel_result(
                outcome, m, load, _NullClock(end), slog, 0.0
            )
            cell_capture = (
                _cell_capture(
                    members, batches, i, fin_ev2d[i], resp_ev2d[i],
                    end, overhead_watts, totals,
                )
                if capture
                else None
            )
            evals[gi] = CellEval(result, None, cell_capture)


def _cell_capture(
    members: List[QueuedDevice],
    batches: List["_MemberBatch"],
    i: int,
    fin_row: np.ndarray,
    resp_row: np.ndarray,
    end: float,
    overhead_watts: Optional[float],
    totals,
):
    """Freeze one cell's replay record for the policy oracle.

    Rows are copied out of the chunk arrays so the capture does not pin
    the whole ``(P, k)`` batch in memory.  The values are bit-identical
    to what :class:`~repro.replay.capture.CaptureSink` snapshots after a
    per-point replay: members commit one segment per served request in
    member arrival order on every path.
    """
    from ..replay.capture import MemberProfile, ReplayCapture

    profiles = []
    for member, b in zip(members, batches):
        if b.served:
            profiles.append(
                MemberProfile(
                    name=member.name,
                    starts=np.array(b.starts2d[i], dtype=np.float64),
                    ends=np.array(b.fin2d[i], dtype=np.float64),
                    watts=np.array(b.cell_watts(i), dtype=np.float64),
                    base_watts=b.base_watts,
                )
            )
        else:
            profiles.append(
                MemberProfile(member.name, _EMPTY, _EMPTY, _EMPTY, b.base_watts)
            )
    reads, writes, read_bytes, write_bytes = totals
    return ReplayCapture(
        end=end,
        finishes=np.array(fin_row, dtype=np.float64),
        responses=np.array(resp_row, dtype=np.float64),
        members=tuple(profiles),
        overhead_watts=overhead_watts,
        reads=reads,
        writes=writes,
        read_bytes=read_bytes,
        write_bytes=write_bytes,
    )


def _lindley_batch(
    member_name: str,
    arrivals2d: np.ndarray,
    plan: _MemberPlan,
    cell_reason: List[Optional[str]],
) -> _MemberBatch:
    """Solve one member's FCFS batch and freeze its power columns.

    Marks cells whose schedule the closed form cannot commit exactly
    (non-monotone finishes, or zero-length power segments that the real
    timeline would drop, desynchronising the frozen arrays) in
    ``cell_reason`` — first member wins, matching the per-point order.
    """
    n_cells, k = arrivals2d.shape
    fin2d = _solve_lindley_grid(arrivals2d, plan.seconds)
    if k > 1:
        mono_bad = np.any(np.diff(fin2d, axis=1) < 0, axis=1)
    else:
        mono_bad = np.zeros(n_cells, dtype=bool)
    starts2d = np.maximum(
        arrivals2d,
        np.concatenate(
            (np.full((n_cells, 1), _NEG_INF), fin2d[:, :-1]), axis=1
        ),
    )
    dur2d = fin2d - starts2d
    zero_bad = np.any(dur2d <= 0.0, axis=1)
    for i in range(n_cells):
        if cell_reason[i] is None and bool(mono_bad[i]):
            cell_reason[i] = f"{member_name}: non-monotone completion schedule"
        if cell_reason[i] is None and bool(zero_bad[i]):
            cell_reason[i] = f"{member_name}: zero-length power segment"
    excess2d = plan.watts * dur2d - plan.base_watts * dur2d
    cum2d = np.concatenate(
        (
            np.zeros((n_cells, 1), dtype=np.float64),
            np.cumsum(excess2d, axis=1),
        ),
        axis=1,
    )
    return _MemberBatch(
        starts2d=starts2d,
        fin2d=fin2d,
        watts=plan.watts,
        cum2d=cum2d,
        base_watts=plan.base_watts,
        submit2d=arrivals2d,
    )


def _solve_single_chunk(
    device: QueuedDevice,
    plan: _MemberPlan,
    submit2d: np.ndarray,
    nbytes: np.ndarray,
    cell_reason: List[Optional[str]],
):
    """Batch-solve one chunk of cells against a single queued device."""
    batch = _lindley_batch(device.name, submit2d, plan, cell_reason)
    if all(r is not None for r in cell_reason):
        return None
    # Single-server FIFO completes in row order; responses and the byte
    # column stay in the shared request order.
    resp2d = batch.fin2d - submit2d
    return batch.fin2d, resp2d, nbytes, [batch], None


def _solve_array_chunk(
    device: DiskArray,
    members: List[QueuedDevice],
    plans: List[Optional[_MemberPlan]],
    submit2d: np.ndarray,
    link_overhead: float,
    link_prev: float,
    payload: np.ndarray,
    sub_flight: np.ndarray,
    flight_offsets: np.ndarray,
    total: int,
    nbytes: np.ndarray,
    cell_reason: List[Optional[str]],
):
    """Batch-solve one chunk of cells against a disk array.

    Returns ``(fin_ev2d, resp_ev2d, bytes_ev2d, batches, overhead)`` or
    ``None`` when every cell of the chunk was marked unfused via
    ``cell_reason``.  ``batches`` lists one :class:`_MemberBatch` per
    member in disk order (idle members get empty columns) so the frozen
    meter accumulates exactly like the real
    :class:`~repro.power.model.EnergyMeter`.
    """
    n_cells = submit2d.shape[0]
    d2d, _link2d = _solve_link_chain_grid(
        submit2d, link_overhead, payload, link_prev
    )
    arrivals2d = d2d[:, sub_flight]
    sub_fin2d = np.empty((n_cells, total), dtype=np.float64)
    batches: List[_MemberBatch] = []
    for di, plan in enumerate(plans):
        if plan is None:
            batches.append(
                _MemberBatch(
                    _EMPTY, _EMPTY, _EMPTY, _CUM_SEED,
                    members[di].timeline._base_watts[0], _EMPTY,
                )
            )
            continue
        a2d = np.ascontiguousarray(arrivals2d[:, plan.rows])
        batch = _lindley_batch(members[di].name, a2d, plan, cell_reason)
        sub_fin2d[:, plan.rows] = batch.fin2d
        batches.append(batch)
    if all(r is not None for r in cell_reason):
        return None

    fin_ev2d, resp_ev2d, bytes_ev2d = _flight_completions(
        sub_fin2d, flight_offsets, submit2d, nbytes, cell_reason
    )
    return fin_ev2d, resp_ev2d, bytes_ev2d, batches, (
        device.enclosure.non_disk_watts
    )


def _flight_completions(
    sub_fin2d: np.ndarray,
    flight_offsets: np.ndarray,
    submit2d: np.ndarray,
    nbytes: np.ndarray,
    cell_reason: List[Optional[str]],
):
    """Reduce sub-I/O finishes to completion-event-order flight columns.

    Shared tail of both array chunk solvers: a flight completes when its
    last sub-I/O finishes; tied flight completions cannot be reproduced
    (the monitor's accumulation order would depend on event sequence
    numbers) and mark the cell unfused.
    """
    n_cells = sub_fin2d.shape[0]
    fl_fin2d = np.maximum.reduceat(sub_fin2d, flight_offsets[:-1], axis=1)
    if fl_fin2d.shape[1] > 1:
        srt = np.sort(fl_fin2d, axis=1)
        tied = np.any(srt[:, 1:] == srt[:, :-1], axis=1)
        for i in range(n_cells):
            if cell_reason[i] is None and bool(tied[i]):
                cell_reason[i] = "tied flight completion times"
    comp_order2d = np.argsort(fl_fin2d, axis=1, kind="stable")
    fin_ev2d = np.take_along_axis(fl_fin2d, comp_order2d, axis=1)
    resp_ev2d = np.take_along_axis(fl_fin2d - submit2d, comp_order2d, axis=1)
    bytes_ev2d = nbytes[comp_order2d]
    return fin_ev2d, resp_ev2d, bytes_ev2d


def _solve_array_chunk_rmw(
    device: DiskArray,
    members: List[QueuedDevice],
    plans: List[Optional[_MemberPlan]],
    submit2d: np.ndarray,
    link_overhead: float,
    link_prev: float,
    payload: np.ndarray,
    exp,
    nbytes: np.ndarray,
    cell_reason: List[Optional[str]],
):
    """Batch-solve a chunk of cells whose expansion carries RMW barriers.

    The two-phase fixpoint of :func:`~repro.sim.kernel._solve_two_phase`
    lifted to the parameter axis.  Post-write arrival instants feed back
    into each member's serving order, and the order determines the
    seek/stream-dependent service plan — so unlike the single-phase
    path there is no chunk-wide shared ``VectorService``.  Instead, each
    pass evaluates whole ``(P, k)`` matrices: per-cell serving orders
    come from one ``argsort``, per-cell service plans from the members'
    ``service_times_grid`` 2-D mirrors (row-wise bit-identical to
    ``service_times`` on that row's sequence), and the queue recurrence
    from :func:`~repro.sim.kernel._solve_lindley_grid` with a per-row
    service matrix — no per-cell Python loop anywhere in the pass.
    Convergence is tracked per row (exact float equality of the
    post-arrival vector); a converged row is a fixpoint of a
    deterministic map, so re-solving it can never change it — each pass
    only touches the still-active rows and the chunk's cost decays with
    convergence.  Rows that fail to converge — or that tie in a way
    only event sequence numbers could break — are marked in
    ``cell_reason`` and handed back for per-point replay, while the
    converged rows stay fused.
    """
    n_cells = submit2d.shape[0]
    total = exp.total
    sub_flight = exp.sub_flight
    has_pre = exp.pre_counts > 0
    pre_flights = np.flatnonzero(has_pre)
    pre_idx = np.flatnonzero(exp.is_pre)
    pre_seg = np.concatenate(
        ([0], np.cumsum(exp.pre_counts[pre_flights])[:-1])
    ).astype(np.int64)
    post_mask = ~exp.is_pre & has_pre[sub_flight]
    post_at = sub_flight[post_mask]

    d2d, _link2d = _solve_link_chain_grid(
        submit2d, link_overhead, payload, link_prev
    )
    base_arr2d = d2d[:, sub_flight]
    post2d = d2d.copy()
    arrivals2d = base_arr2d.copy()
    sub_fin2d = np.empty((n_cells, total), dtype=np.float64)
    # Full-size per-member state, written only for active rows each pass
    # (frozen rows keep their fixpoint values for assembly below).
    ord_full: List[Optional[np.ndarray]] = [None] * len(plans)
    fin_sorted: List[Optional[np.ndarray]] = [None] * len(plans)
    watts_sorted: List[Optional[np.ndarray]] = [None] * len(plans)
    for di, plan in enumerate(plans):
        if plan is None:
            continue
        if not hasattr(members[di], "service_times_grid"):
            reason = f"{members[di].name}: no vectorized grid service model"
            for i in range(n_cells):
                if cell_reason[i] is None:
                    cell_reason[i] = reason
            return None
        k = int(plan.rows.size)
        ord_full[di] = np.empty((n_cells, k), dtype=np.int64)
        fin_sorted[di] = np.empty((n_cells, k), dtype=np.float64)
        watts_sorted[di] = np.empty((n_cells, k), dtype=np.float64)
    converged = np.zeros(n_cells, dtype=bool)
    act = np.arange(n_cells)
    for _ in range(_MAX_RMW_PASSES):
        arr_act = base_arr2d[act].copy()
        arr_act[:, post_mask] = post2d[np.ix_(act, post_at)]
        arrivals2d[act] = arr_act
        for di, plan in enumerate(plans):
            if plan is None:
                continue
            rows = plan.rows
            a2d = np.ascontiguousarray(arr_act[:, rows])
            ord2d = np.argsort(a2d, axis=1, kind="stable")
            ord_full[di][act] = ord2d
            a_sorted = np.take_along_axis(a2d, ord2d, axis=1)
            perm2d = rows[ord2d]
            try:
                sec2d, w2d = members[di].service_times_grid(
                    exp.sector[perm2d], exp.nbytes[perm2d], exp.op[perm2d]
                )
            except StorageIOError as exc:
                reason = str(exc)
                for i in act.tolist():
                    if cell_reason[i] is None:
                        cell_reason[i] = reason
                fin_srt = a_sorted  # placeholder; cells already unfused
                w2d = np.zeros_like(a_sorted)
            else:
                fin_srt = _solve_lindley_grid(a_sorted, sec2d)
            fin_sorted[di][act] = fin_srt
            watts_sorted[di][act] = w2d
            sub_fin2d[act[:, None], perm2d] = fin_srt
        new_post = d2d[act].copy()
        new_post[:, pre_flights] = np.maximum.reduceat(
            sub_fin2d[np.ix_(act, pre_idx)], pre_seg, axis=1
        )
        row_done = np.all(new_post == post2d[act], axis=1)
        post2d[act] = new_post
        converged[act[row_done]] = True
        # Unfused rows (service errors) stop iterating too — nothing
        # downstream reads their values.
        dead = np.array(
            [cell_reason[i] is not None for i in act.tolist()], dtype=bool
        )
        act = act[~(row_done | dead)]
        if not act.size:
            break
    for i in range(n_cells):
        if cell_reason[i] is None and not bool(converged[i]):
            cell_reason[i] = "rmw barrier schedule did not converge"

    # Arrival-tie taxonomy — same rule as the 1-D solver: cross-flight
    # ties at a member are deterministic only when a completion-issued
    # post precedes a dispatch-issued sub-I/O.
    for di, plan in enumerate(plans):
        if plan is None or plan.rows.size < 2:
            continue
        rows = plan.rows
        ord2d = ord_full[di]
        a_sorted = np.take_along_axis(
            np.ascontiguousarray(arrivals2d[:, rows]), ord2d, axis=1
        )
        perm2d = rows[ord2d]
        fl = sub_flight[perm2d]
        pm = post_mask[perm2d]
        tied = a_sorted[:, 1:] == a_sorted[:, :-1]
        cross = fl[:, 1:] != fl[:, :-1]
        benign = pm[:, :-1] & ~pm[:, 1:]
        bad = np.any(tied & cross & ~benign, axis=1)
        for i in np.flatnonzero(bad).tolist():
            if cell_reason[i] is None:
                cell_reason[i] = "tied sub-I/O arrival times"
    if all(r is not None for r in cell_reason):
        return None

    batches: List[_MemberBatch] = []
    for di, plan in enumerate(plans):
        if plan is None:
            batches.append(
                _MemberBatch(
                    _EMPTY, _EMPTY, _EMPTY, _CUM_SEED,
                    members[di].timeline._base_watts[0], _EMPTY,
                )
            )
            continue
        rows = plan.rows
        k = int(rows.size)
        sub2d = np.take_along_axis(
            np.ascontiguousarray(arrivals2d[:, rows]), ord_full[di], axis=1
        )
        fin2d = fin_sorted[di]
        watts2d = watts_sorted[di]
        starts2d = np.maximum(
            sub2d,
            np.concatenate(
                (np.full((n_cells, 1), _NEG_INF), fin2d[:, :-1]), axis=1
            ),
        )
        if k > 1:
            mono_bad = np.any(np.diff(fin2d, axis=1) < 0, axis=1)
        else:
            mono_bad = np.zeros(n_cells, dtype=bool)
        dur2d = fin2d - starts2d
        zero_bad = np.any(dur2d <= 0.0, axis=1)
        name = members[di].name
        for i in range(n_cells):
            if cell_reason[i] is None and bool(mono_bad[i]):
                cell_reason[i] = f"{name}: non-monotone completion schedule"
            if cell_reason[i] is None and bool(zero_bad[i]):
                cell_reason[i] = f"{name}: zero-length power segment"
        excess2d = watts2d * dur2d - plan.base_watts * dur2d
        cum2d = np.concatenate(
            (
                np.zeros((n_cells, 1), dtype=np.float64),
                np.cumsum(excess2d, axis=1),
            ),
            axis=1,
        )
        batches.append(
            _MemberBatch(
                starts2d=starts2d,
                fin2d=fin2d,
                watts=_EMPTY,
                cum2d=cum2d,
                base_watts=plan.base_watts,
                submit2d=sub2d,
                watts2d=watts2d,
            )
        )
    if all(r is not None for r in cell_reason):
        return None

    fin_ev2d, resp_ev2d, bytes_ev2d = _flight_completions(
        sub_fin2d, exp.flight_offsets, submit2d, nbytes, cell_reason
    )
    return fin_ev2d, resp_ev2d, bytes_ev2d, batches, (
        device.enclosure.non_disk_watts
    )


def _queue_instants(
    batches: List[_MemberBatch], i: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One cell's merged queue-entry/exit instants (interval frames),
    the per-member ``queued`` masks merged and sorted like the event
    path's ``push_all``/``pop_all``."""
    pushes = []
    pops = []
    for b in batches:
        if not b.served:
            continue
        submit_row = b.submit2d[i]
        starts_row = b.starts2d[i]
        queued = starts_row > submit_row
        if bool(np.any(queued)):
            pushes.append(submit_row[queued])
            pops.append(starts_row[queued])
    push = np.sort(np.concatenate(pushes)) if pushes else _EMPTY
    pop = np.sort(np.concatenate(pops)) if pops else _EMPTY
    return push, pop

"""Discrete-event simulation substrate.

The paper replays traces against real hardware in wall-clock time.  A pure
Python reproduction of timing-accurate block replay fights the GIL and
scheduler jitter (the calibration notes call this out), so the default
replay path here runs on a deterministic discrete-event clock: identical
inputs produce identical outputs, and a 30-minute trace replays in
milliseconds of host time.

:class:`~repro.sim.engine.Simulator` is a classic event-calendar engine;
devices schedule completion events, the monitor schedules sampling ticks.
"""

from .engine import Simulator
from .events import Event

__all__ = ["Simulator", "Event"]

"""TCP communicator: the socket channel of §III-A1.

:class:`Communicator` is the client side (the evaluation host dials the
workload generator); :class:`CommunicatorServer` is the accepting side
(a workload-generator node).  Both speak length-prefixed JSON frames
(:mod:`repro.host.protocol`) with blocking request/response semantics —
the host's dialogue is strictly sequential per node.

Robustness: every client operation is bounded.  Sockets carry a timeout,
transport failures surface as typed :class:`~repro.errors.ProtocolError`
(never a hang), and :meth:`Communicator.request` retries over a fresh
connection with exponential backoff under a :class:`RetryPolicy` budget.
Retried requests may reach the server twice — callers that dispatch
side-effectful work attach request ids so the server can deduplicate
(see :class:`~repro.distributed.generator_node.GeneratorNode`).
"""

from __future__ import annotations

import inspect
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import ProtocolError
from ..telemetry.flightrec import autodump, get_flight_recorder
from .protocol import Frame, FrameReader, KIND_ERROR, KIND_PROGRESS, encode_frame

FrameHandler = Callable[[Frame], Frame]

#: Push function handed to push-capable handlers: sends one extra frame
#: on the requesting connection, returning False once the peer is gone.
PushFn = Callable[[Frame], bool]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for client-side requests.

    ``delay(attempt)`` is the sleep after the ``attempt``-th failure
    (0-based): ``min(base_delay * multiplier**attempt, max_delay)``.
    Deliberately jitter-free so retry timing is reproducible in tests.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ProtocolError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ProtocolError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ProtocolError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def delay(self, attempt: int) -> float:
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)


#: Single-attempt policy: fail fast, no backoff.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0)


class Communicator:
    """Client side of the host↔generator channel.

    Parameters
    ----------
    timeout:
        Socket timeout in seconds for connect, send, and receive; a
        stalled peer produces a :class:`ProtocolError`, never a hang.
    retry:
        Attempt budget and backoff for :meth:`request` (and the initial
        dial).  Defaults to 4 attempts with 50 ms exponential backoff.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if timeout <= 0:
            raise ProtocolError(f"timeout must be > 0, got {timeout}")
        self.address = (host, port)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sock: Optional[socket.socket] = None
        self._reader = FrameReader()
        self._pending: List[Frame] = []
        self._connect()

    # -- Connection management ---------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _dial(self) -> socket.socket:
        """One connection attempt; the timeout sticks for all later I/O."""
        sock = socket.create_connection(self.address, timeout=self.timeout)
        sock.settimeout(self.timeout)
        return sock

    def _reconnect(self) -> None:
        self.close()
        self._sock = self._dial()
        # Discard any half-received frame from the dead connection.
        self._reader = FrameReader()
        self._pending.clear()

    def _connect(self) -> None:
        last: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            try:
                self._reconnect()
                return
            except OSError as exc:
                last = exc
                if attempt + 1 < self.retry.max_attempts:
                    time.sleep(self.retry.delay(attempt))
        raise ProtocolError(
            f"cannot connect to {self.address[0]}:{self.address[1]} after "
            f"{self.retry.max_attempts} attempts: {last}"
        ) from last

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "Communicator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- Frame I/O ----------------------------------------------------------

    def send(self, frame: Frame) -> None:
        if self._sock is None:
            raise ProtocolError("communicator is closed")
        try:
            self._sock.sendall(encode_frame(frame))
        except OSError as exc:
            raise ProtocolError(f"send failed: {exc}") from exc

    def receive(self) -> Frame:
        """Block (bounded by the timeout) until one complete frame arrives."""
        if self._pending:
            return self._pending.pop(0)
        if self._sock is None:
            raise ProtocolError("communicator is closed")
        while True:
            try:
                data = self._sock.recv(65536)
            except socket.timeout as exc:
                raise ProtocolError(
                    f"receive timed out after {self.timeout}s"
                ) from exc
            except OSError as exc:
                raise ProtocolError(f"receive failed: {exc}") from exc
            if not data:
                raise ProtocolError("connection closed mid-frame")
            frames = self._reader.feed(data)
            if frames:
                self._pending = frames[1:]
                return frames[0]

    def request(
        self,
        frame: Frame,
        on_progress: Optional[Callable[[Frame], None]] = None,
    ) -> Frame:
        """Send one frame and wait for the terminal reply, retrying on
        failure.

        ``progress`` frames a server pushes mid-request are handed to
        ``on_progress`` (and skipped when none is given — a host that
        did not ask for streaming still tolerates a stream), so the
        returned frame is always the request's terminal reply.  A
        consumer exception never corrupts the dialogue: it is recorded
        to the flight recorder and further progress delivery stops.

        Each attempt uses a fresh connection if the previous one died.
        Connection drops, timeouts, and malformed reply frames all count
        against the retry budget; every failed attempt is flight-
        recorded, and exhausting the budget dumps the recorder (if
        armed) before raising :class:`ProtocolError` with the last
        underlying failure.  A retried request may execute twice
        server-side — pass a ``request_id`` in the frame body when that
        matters.
        """
        last: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            try:
                if self._sock is None:
                    self._reconnect()
                self.send(frame)
                while True:
                    reply = self.receive()
                    if reply.kind != KIND_PROGRESS:
                        return reply
                    if on_progress is not None:
                        try:
                            on_progress(reply)
                        except Exception as exc:
                            get_flight_recorder().record(
                                "comm.progress_consumer_error", 0.0,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            on_progress = None
            except (OSError, ProtocolError) as exc:
                last = exc
                self.close()
                get_flight_recorder().record(
                    "comm.retry", 0.0,
                    kind=frame.kind, attempt=attempt, error=str(exc),
                )
                if attempt + 1 < self.retry.max_attempts:
                    time.sleep(self.retry.delay(attempt))
        get_flight_recorder().record(
            "comm.giveup", 0.0,
            kind=frame.kind, attempts=self.retry.max_attempts,
            error=str(last),
        )
        autodump("protocol_error")
        raise ProtocolError(
            f"request {frame.kind!r} to {self.address[0]}:{self.address[1]} "
            f"failed after {self.retry.max_attempts} attempts: {last}"
        ) from last


class CommunicatorServer:
    """Accepting side: serves one handler over TCP on a daemon thread.

    Per-connection threads make the server usable by the multichannel
    evaluation (several hosts talking to several generator nodes).
    A client that sends a malformed frame gets one ``error`` frame back
    (best effort) and its connection closed; ``idle_timeout`` bounds how
    long a silent connection may pin its thread.
    """

    def __init__(
        self,
        handler: FrameHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: Optional[float] = None,
    ):
        self.handler = handler
        self._push_capable = self._accepts_push(handler)
        self.idle_timeout = idle_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)

    @staticmethod
    def _accepts_push(handler: Callable) -> bool:
        """Whether ``handler`` takes a second (push) argument.

        Handlers keep the one-argument signature unless they stream;
        signature inspection keeps both generations working unchanged.
        """
        try:
            inspect.signature(handler).bind(None, None)
        except TypeError:
            return False
        return True

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "CommunicatorServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            # Unblock accept() by dialing ourselves.
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "CommunicatorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            if self._stop.is_set():
                conn.close()
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = FrameReader()
        if self.idle_timeout is not None:
            conn.settimeout(self.idle_timeout)
        with conn:
            while not self._stop.is_set():
                try:
                    data = conn.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                try:
                    frames = reader.feed(data)
                except ProtocolError as exc:
                    # Tell the peer why before hanging up.
                    try:
                        conn.sendall(
                            encode_frame(
                                Frame(KIND_ERROR, {"message": str(exc)})
                            )
                        )
                    except OSError:
                        pass
                    break
                for frame in frames:
                    try:
                        if self._push_capable:
                            reply = self.handler(frame, self._pusher(conn))
                        else:
                            reply = self.handler(frame)
                    except Exception as exc:  # surface handler bugs to peer
                        reply = Frame(KIND_ERROR, {"message": repr(exc)})
                    try:
                        conn.sendall(encode_frame(reply))
                    except OSError:
                        return

    @staticmethod
    def _pusher(conn: socket.socket) -> PushFn:
        """A push function bound to one connection.

        Returns False once the peer is unreachable — the handler then
        stops pushing but keeps executing; its terminal reply is still
        attempted (and a retried request is served from cache).
        """

        def push(frame: Frame) -> bool:
            try:
                conn.sendall(encode_frame(frame))
            except OSError:
                return False
            return True

        return push

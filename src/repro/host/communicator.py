"""TCP communicator: the socket channel of §III-A1.

:class:`Communicator` is the client side (the evaluation host dials the
workload generator); :class:`CommunicatorServer` is the accepting side
(a workload-generator node).  Both speak length-prefixed JSON frames
(:mod:`repro.host.protocol`) with blocking request/response semantics —
the host's dialogue is strictly sequential per node.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Optional, Tuple

from ..errors import ProtocolError
from .protocol import Frame, FrameReader, encode_frame

FrameHandler = Callable[[Frame], Frame]


class Communicator:
    """Client side of the host↔generator channel."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.address = (host, port)
        self._sock = socket.create_connection(self.address, timeout=timeout)
        self._reader = FrameReader()
        self._pending: list = []

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Communicator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def send(self, frame: Frame) -> None:
        self._sock.sendall(encode_frame(frame))

    def receive(self) -> Frame:
        """Block until one complete frame arrives (FIFO across recvs)."""
        if self._pending:
            return self._pending.pop(0)
        while True:
            data = self._sock.recv(65536)
            if not data:
                raise ProtocolError("connection closed mid-frame")
            frames = self._reader.feed(data)
            if frames:
                self._pending = frames[1:]
                return frames[0]

    def request(self, frame: Frame) -> Frame:
        """Send one frame and wait for the reply."""
        self.send(frame)
        return self.receive()


class CommunicatorServer:
    """Accepting side: serves one handler over TCP on a daemon thread.

    Per-connection threads make the server usable by the multichannel
    evaluation (several hosts talking to several generator nodes).
    """

    def __init__(self, handler: FrameHandler, host: str = "127.0.0.1", port: int = 0):
        self.handler = handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "CommunicatorServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            # Unblock accept() by dialing ourselves.
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "CommunicatorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            if self._stop.is_set():
                conn.close()
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = FrameReader()
        with conn:
            while not self._stop.is_set():
                try:
                    data = conn.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                try:
                    frames = reader.feed(data)
                except ProtocolError:
                    break
                for frame in frames:
                    try:
                        reply = self.handler(frame)
                    except Exception as exc:  # surface handler bugs to peer
                        reply = Frame("error", {"message": repr(exc)})
                    try:
                        conn.sendall(encode_frame(reply))
                    except OSError:
                        return

"""The parser module: protocol bridge (paper §III-A1).

"The parser is a middle layer sitting between GUI and the messenger
module.  Since data protocols used in GUI and the messenger module are
different, the parser has to maintain the consistency between the two
protocols and avoid unnecessary conflicts."

Our user-facing surface is textual commands (the CLI and examples use
it); the messenger and communicator consume structured frames.  The
parser translates a small command grammar into protocol frames and
messenger calls, validating as it goes::

    run device=hdd-raid5 rs=4096 rnd=50 rd=0 load=40 [cycle=1.0]
    list device=hdd-raid5
    shutdown
"""

from __future__ import annotations

import shlex
from typing import Any, Dict

from ..config import ReplayConfig, TestRequest, WorkloadMode
from ..errors import ProtocolError, WorkloadError
from .protocol import (
    Frame,
    KIND_LIST_TRACES,
    KIND_RUN_TEST,
    KIND_SHUTDOWN,
)


class CommandParser:
    """Translate command strings into protocol frames."""

    def parse(self, command: str) -> Frame:
        """Parse one command line into a frame; raises on bad grammar."""
        tokens = shlex.split(command)
        if not tokens:
            raise ProtocolError("empty command")
        verb, args = tokens[0].lower(), tokens[1:]
        kv = self._keyvalues(args)
        if verb == "run":
            return self._parse_run(kv)
        if verb == "list":
            return Frame(KIND_LIST_TRACES, {"device": kv.get("device", "")})
        if verb == "shutdown":
            if kv:
                raise ProtocolError("shutdown takes no arguments")
            return Frame(KIND_SHUTDOWN, {})
        raise ProtocolError(f"unknown command {verb!r}")

    @staticmethod
    def _keyvalues(args) -> Dict[str, str]:
        kv = {}
        for arg in args:
            if "=" not in arg:
                raise ProtocolError(f"expected key=value, got {arg!r}")
            key, value = arg.split("=", 1)
            if key in kv:
                raise ProtocolError(f"duplicate key {key!r}")
            kv[key] = value
        return kv

    def _parse_run(self, kv: Dict[str, str]) -> Frame:
        required = {"device", "rs", "rnd", "rd", "load"}
        missing = required - kv.keys()
        if missing:
            raise ProtocolError(f"run: missing {sorted(missing)}")
        unknown = kv.keys() - required - {"cycle", "scale", "label"}
        if unknown:
            raise ProtocolError(f"run: unknown keys {sorted(unknown)}")
        try:
            mode = WorkloadMode(
                request_size=int(kv["rs"]),
                random_ratio=float(kv["rnd"]) / 100.0,
                read_ratio=float(kv["rd"]) / 100.0,
                load_proportion=float(kv["load"]) / 100.0,
            )
            replay = ReplayConfig(
                sampling_cycle=float(kv.get("cycle", "1.0")),
                time_scale=float(kv.get("scale", "1.0")),
            )
        except (ValueError, WorkloadError) as exc:
            raise ProtocolError(f"run: invalid parameter: {exc}") from exc
        request = TestRequest(mode=mode, replay=replay, label=kv.get("label", ""))
        return Frame(
            KIND_RUN_TEST, {"device": kv["device"], "request": request.to_dict()}
        )

    def format_result(self, body: Dict[str, Any]) -> str:
        """Render a test_result frame body for the textual surface."""
        try:
            return (
                f"{body['trace_label']}: load={body['load_proportion'] * 100:.0f}% "
                f"IOPS={body['iops']:.1f} MBPS={body['mbps']:.2f} "
                f"W={body['mean_watts']:.2f} "
                f"IOPS/W={body['iops_per_watt']:.2f} "
                f"MBPS/kW={body['mbps_per_kilowatt']:.1f}"
            )
        except KeyError as exc:
            raise ProtocolError(f"result body missing field {exc}") from exc

"""Test records (paper §III-A1).

"Each record in the database contains information on energy efficiency
and performance (e.g., time of the test, workload modes, energy
dissipation data (or power data), performance result, and
energy-efficiency result).  Each workload mode is a vector that consists
of request size, random rate, read rate, and load proportion value."
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..config import WorkloadMode
from ..errors import DatabaseError
from ..replay.results import ReplayResult


@dataclass(frozen=True)
class TestRecord:
    """One completed test, as stored by the evaluation host."""

    #: Tell pytest not to collect this class despite the Test* name.
    __test__ = False

    test_time: float
    """Wall-clock epoch seconds when the test was recorded."""
    device_label: str
    mode: WorkloadMode
    # Energy dissipation data.
    mean_amperes: float
    mean_volts: float
    mean_watts: float
    energy_joules: float
    # Performance results.
    iops: float
    mbps: float
    mean_response: float
    duration: float
    # Energy-efficiency results.
    iops_per_watt: float
    mbps_per_kilowatt: float
    label: str = ""
    record_id: Optional[int] = None

    @classmethod
    def from_result(
        cls,
        result: ReplayResult,
        mode: WorkloadMode,
        device_label: str,
        test_time: float,
        label: str = "",
    ) -> "TestRecord":
        """Build a record from a replay result."""
        samples = result.power_samples
        total_t = sum(s.duration for s in samples)
        if total_t > 0:
            amps = sum(s.amperes * s.duration for s in samples) / total_t
            volts = sum(s.volts * s.duration for s in samples) / total_t
        else:
            amps = 0.0
            volts = 0.0
        return cls(
            test_time=test_time,
            device_label=device_label,
            mode=mode,
            mean_amperes=amps,
            mean_volts=volts,
            mean_watts=result.mean_watts,
            energy_joules=result.energy_joules,
            iops=result.iops,
            mbps=result.mbps,
            mean_response=result.mean_response,
            duration=result.duration,
            iops_per_watt=result.iops_per_watt,
            mbps_per_kilowatt=result.mbps_per_kilowatt,
            label=label,
        )

    def to_row(self) -> Dict[str, Any]:
        """Flatten for SQL storage."""
        return {
            "test_time": self.test_time,
            "device_label": self.device_label,
            "mode_json": json.dumps(self.mode.to_dict(), sort_keys=True),
            "request_size": self.mode.request_size,
            "random_ratio": self.mode.random_ratio,
            "read_ratio": self.mode.read_ratio,
            "load_proportion": self.mode.load_proportion,
            "mean_amperes": self.mean_amperes,
            "mean_volts": self.mean_volts,
            "mean_watts": self.mean_watts,
            "energy_joules": self.energy_joules,
            "iops": self.iops,
            "mbps": self.mbps,
            "mean_response": self.mean_response,
            "duration": self.duration,
            "iops_per_watt": self.iops_per_watt,
            "mbps_per_kilowatt": self.mbps_per_kilowatt,
            "label": self.label,
        }

    @classmethod
    def from_row(cls, row: Dict[str, Any]) -> "TestRecord":
        """Inverse of :meth:`to_row` (plus the DB-assigned id)."""
        try:
            mode = WorkloadMode.from_dict(json.loads(row["mode_json"]))
        except (KeyError, json.JSONDecodeError) as exc:
            raise DatabaseError(f"corrupt mode_json in record: {exc}") from exc
        return cls(
            test_time=row["test_time"],
            device_label=row["device_label"],
            mode=mode,
            mean_amperes=row["mean_amperes"],
            mean_volts=row["mean_volts"],
            mean_watts=row["mean_watts"],
            energy_joules=row["energy_joules"],
            iops=row["iops"],
            mbps=row["mbps"],
            mean_response=row["mean_response"],
            duration=row["duration"],
            iops_per_watt=row["iops_per_watt"],
            mbps_per_kilowatt=row["mbps_per_kilowatt"],
            label=row.get("label", ""),
            record_id=row.get("id"),
        )

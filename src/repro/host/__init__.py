"""Evaluation host: the control plane of TRACER (paper §III-A1).

The paper's evaluation host is a Windows GUI application with five
modules — GUI, communicator, database, parser, messenger.  Everything
but the GUI exists here, headless:

* :mod:`~repro.host.records` / :mod:`~repro.host.database` — per-test
  result records and the sqlite-backed store users query after runs;
* :mod:`~repro.host.protocol` — JSON wire frames;
* :mod:`~repro.host.communicator` — TCP socket channel between the
  evaluation host and workload-generator nodes;
* :mod:`~repro.host.parser` — the protocol bridge between the user-facing
  command surface and the messenger (the paper's GUI↔messenger layer);
* :mod:`~repro.host.messenger` — power-analyzer control;
* :mod:`~repro.host.evaluation` — the full §III-B test procedure.
"""

from .records import TestRecord
from .database import ResultsDatabase
from .protocol import Frame, encode_frame, decode_frame, FrameReader
from .communicator import Communicator, CommunicatorServer
from .parser import CommandParser
from .messenger import Messenger
from .evaluation import EvaluationHost

__all__ = [
    "TestRecord",
    "ResultsDatabase",
    "Frame",
    "encode_frame",
    "decode_frame",
    "FrameReader",
    "Communicator",
    "CommunicatorServer",
    "CommandParser",
    "Messenger",
    "EvaluationHost",
]

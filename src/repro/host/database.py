"""The evaluation host's results database.

"After each test, energy efficiency and performance results are stored
as records in the database for future retrievals" and "users are able to
send queries to the database to access results after the testing
processes are done" (§III-A1).  Backed by sqlite3 (stdlib), file-based
or in-memory.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import List, Optional, Union

from ..errors import DatabaseError
from .ledger import RunLedger
from .records import TestRecord

PathLike = Union[str, Path]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS test_records (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    test_time REAL NOT NULL,
    device_label TEXT NOT NULL,
    mode_json TEXT NOT NULL,
    request_size INTEGER NOT NULL,
    random_ratio REAL NOT NULL,
    read_ratio REAL NOT NULL,
    load_proportion REAL NOT NULL,
    mean_amperes REAL NOT NULL,
    mean_volts REAL NOT NULL,
    mean_watts REAL NOT NULL,
    energy_joules REAL NOT NULL,
    iops REAL NOT NULL,
    mbps REAL NOT NULL,
    mean_response REAL NOT NULL,
    duration REAL NOT NULL,
    iops_per_watt REAL NOT NULL,
    mbps_per_kilowatt REAL NOT NULL,
    label TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_records_device
    ON test_records (device_label);
CREATE INDEX IF NOT EXISTS idx_records_mode
    ON test_records (request_size, random_ratio, read_ratio, load_proportion);
CREATE TABLE IF NOT EXISTS test_cycles (
    record_id INTEGER NOT NULL REFERENCES test_records(id) ON DELETE CASCADE,
    cycle_index INTEGER NOT NULL,
    start REAL NOT NULL,
    end REAL NOT NULL,
    iops REAL NOT NULL,
    mbps REAL NOT NULL,
    mean_response REAL NOT NULL,
    watts REAL NOT NULL,
    PRIMARY KEY (record_id, cycle_index)
);
CREATE TABLE IF NOT EXISTS test_telemetry (
    record_id INTEGER PRIMARY KEY REFERENCES test_records(id) ON DELETE CASCADE,
    snapshot_json TEXT NOT NULL
);
"""


class ResultsDatabase:
    """sqlite-backed store of :class:`~repro.host.records.TestRecord`."""

    def __init__(self, path: PathLike = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        with self._conn:
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def insert(self, record: TestRecord) -> int:
        """Store one record; returns its database id."""
        row = record.to_row()
        columns = ", ".join(row)
        placeholders = ", ".join(f":{k}" for k in row)
        try:
            with self._conn:
                cur = self._conn.execute(
                    f"INSERT INTO test_records ({columns}) VALUES ({placeholders})",
                    row,
                )
        except sqlite3.Error as exc:
            raise DatabaseError(f"insert failed: {exc}") from exc
        return int(cur.lastrowid)

    def get(self, record_id: int) -> TestRecord:
        cur = self._conn.execute(
            "SELECT * FROM test_records WHERE id = ?", (record_id,)
        )
        row = cur.fetchone()
        if row is None:
            raise DatabaseError(f"no record with id {record_id}")
        return TestRecord.from_row(dict(row))

    def query(
        self,
        device_label: Optional[str] = None,
        request_size: Optional[int] = None,
        random_ratio: Optional[float] = None,
        read_ratio: Optional[float] = None,
        load_proportion: Optional[float] = None,
        label: Optional[str] = None,
        order_by: str = "test_time",
    ) -> List[TestRecord]:
        """Filtered retrieval; any combination of workload-mode fields."""
        if order_by not in (
            "test_time",
            "load_proportion",
            "iops",
            "mbps",
            "mean_watts",
            "id",
        ):
            raise DatabaseError(f"cannot order by {order_by!r}")
        clauses = []
        params: list = []
        for column, value in (
            ("device_label", device_label),
            ("request_size", request_size),
            ("label", label),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        for column, value in (
            ("random_ratio", random_ratio),
            ("read_ratio", read_ratio),
            ("load_proportion", load_proportion),
        ):
            if value is not None:
                clauses.append(f"ABS({column} - ?) < 1e-9")
                params.append(value)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        cur = self._conn.execute(
            f"SELECT * FROM test_records {where} ORDER BY {order_by}, id", params
        )
        return [TestRecord.from_row(dict(row)) for row in cur.fetchall()]

    def insert_cycles(self, record_id: int, cycles) -> int:
        """Persist a record's per-cycle series (§III-A1: the database
        keeps results "for future retrievals" — including the real-time
        curves the GUI displayed).

        ``cycles`` is the list from
        :meth:`repro.replay.results.ReplayResult.cycles`.
        """
        rows = [
            (
                record_id,
                i,
                c.start,
                c.end,
                c.iops,
                c.mbps,
                c.mean_response,
                c.watts,
            )
            for i, c in enumerate(cycles)
        ]
        try:
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO test_cycles "
                    "(record_id, cycle_index, start, end, iops, mbps, "
                    " mean_response, watts) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
        except sqlite3.Error as exc:
            raise DatabaseError(f"cycle insert failed: {exc}") from exc
        return len(rows)

    def cycles(self, record_id: int) -> List[dict]:
        """Per-cycle rows for one record, in cycle order."""
        cur = self._conn.execute(
            "SELECT * FROM test_cycles WHERE record_id = ? ORDER BY cycle_index",
            (record_id,),
        )
        return [dict(row) for row in cur.fetchall()]

    def insert_telemetry(self, record_id: int, snapshot: dict) -> None:
        """Persist a record's metrics snapshot (one JSON blob per test).

        Snapshots arrive through the wire protocol inside the result
        metadata when the generator node ran with telemetry enabled;
        they are stored verbatim so the exact remote numbers can be
        re-examined later.
        """
        import json

        try:
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO test_telemetry "
                    "(record_id, snapshot_json) VALUES (?, ?)",
                    (record_id, json.dumps(snapshot, sort_keys=True)),
                )
        except sqlite3.Error as exc:
            raise DatabaseError(f"telemetry insert failed: {exc}") from exc

    def telemetry(self, record_id: int) -> Optional[dict]:
        """The stored metrics snapshot for one record, or None."""
        import json

        cur = self._conn.execute(
            "SELECT snapshot_json FROM test_telemetry WHERE record_id = ?",
            (record_id,),
        )
        row = cur.fetchone()
        return json.loads(row["snapshot_json"]) if row is not None else None

    def run_ledger(self) -> RunLedger:
        """A :class:`~repro.host.ledger.RunLedger` sharing this database.

        The ledger's ``run_ledger`` table lives in the same sqlite file
        (or in-memory connection), so one database path carries both
        metric records and run provenance.
        """
        return RunLedger(_conn=self._conn)

    def count(self) -> int:
        cur = self._conn.execute("SELECT COUNT(*) AS n FROM test_records")
        return int(cur.fetchone()["n"])

    def devices(self) -> List[str]:
        """Distinct device labels present in the store."""
        cur = self._conn.execute(
            "SELECT DISTINCT device_label FROM test_records ORDER BY device_label"
        )
        return [row["device_label"] for row in cur.fetchall()]
